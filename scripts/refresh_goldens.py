"""Regenerate the golden-replay fixtures under ``tests/fixtures/``.

The goldens pin three tiny seeded scenario workloads byte-for-byte — the
SPCAP1 trace files plus SHA-256 digests of the traces, the label columns,
and the reference decision streams of both runtime kinds. The ``golden``
-marked tests (``tests/test_golden_replay.py``) regenerate each workload
and fail on any drift in the generators *or* the serving stack.

Run this only when a change is **meant** to move the goldens (a generator
change, a new reference model), then commit the refreshed fixtures together
with the change::

    PYTHONPATH=src python scripts/refresh_goldens.py

The fixture set is defined here, in one place; the test reads the manifest.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.differential import (labels_digest, replay_digests,  # noqa: E402
                                     trace_digest)
from repro.net import build_scenario, write_trace  # noqa: E402

FIXTURES = Path(__file__).resolve().parent.parent / "tests" / "fixtures"
MANIFEST = FIXTURES / "scenario_goldens.json"

# (scenario family, generation seed, flows_scale): tiny but phase-complete.
GOLDEN_SET = [
    ("diurnal", 0, 0.15),
    ("attack_flood", 1, 0.15),
    ("heavy_hitters", 2, 0.2),
]


def main() -> int:
    FIXTURES.mkdir(parents=True, exist_ok=True)
    goldens: dict[str, dict] = {}
    for name, seed, scale in GOLDEN_SET:
        workload = build_scenario(name).generate(seed=seed, flows_scale=scale)
        trace_file = f"scenario_{name}_s{seed}.spcap"
        write_trace(workload.trace, FIXTURES / trace_file)
        goldens[f"{name}-s{seed}"] = {
            "scenario": name,
            "seed": seed,
            "flows_scale": scale,
            "trace": trace_file,
            "n_packets": workload.n_packets,
            "phases": [s.name for s in workload.phases],
            "trace_sha256": trace_digest(workload.trace),
            "labels_sha256": labels_digest(workload.labels),
            "decisions": replay_digests(workload),
        }
        print(f"{name:>14s} seed={seed} packets={workload.n_packets:5d} "
              f"-> {trace_file}")
    MANIFEST.write_text(json.dumps({
        "_note": [
            "Golden-replay regression fixtures. Regenerate intentionally with",
            "PYTHONPATH=src python scripts/refresh_goldens.py and commit the",
            "result; tests/test_golden_replay.py fails on any unintended",
            "drift in the scenario generators or the serving stack.",
            "Decision digests use repro.eval.differential.default_sources(0).",
        ],
        "goldens": goldens,
    }, indent=2, sort_keys=True) + "\n")
    print(f"manifest -> {MANIFEST}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
