"""Emit deployable artifacts: P4_16 source + control-plane entries + eBPF-C.

Compiles a small model, generates both backends, and cross-validates the
P4 entry list against the compiled pipeline with the reference TCAM
interpreter (the role BMv2 plays in the paper's toolchain).

Run:  python examples/p4_codegen.py [output_dir]
"""

import json
import sys
from pathlib import Path

import numpy as np

from repro.backends import emit_p4, emit_ebpf
from repro.backends.p4 import interpret_entries
from repro.core import PegasusCompiler, CompilerConfig
from repro.models import build_model
from repro.net import make_dataset
from repro.net.features import dataset_views


def main(out_dir: str = "build"):
    out = Path(out_dir)
    out.mkdir(exist_ok=True)

    dataset = make_dataset("ciciot", flows_per_class=60, seed=0)
    train_flows, _val, _test = dataset.split(rng=0)
    views = dataset_views(train_flows)
    model = build_model("MLP-B", dataset.n_classes, seed=0)
    model.train(views)
    calib = views["stats"].astype(np.int64)
    result = PegasusCompiler(CompilerConfig(fuzzy_leaves=64)).compile_sequential(
        model.net, calib, name="mlp-ciciot")
    compiled = result.compiled

    program = emit_p4(compiled)
    p4_path = out / "pegasus_mlp.p4"
    p4_path.write_text(program.source)
    entries_path = out / "pegasus_mlp_entries.json"
    entries_path.write_text(json.dumps([
        {"table": e.table, "match": e.match_kind, "values": list(e.key_values),
         "masks": list(e.key_masks), "action": e.action,
         "params": list(e.action_params), "priority": e.priority}
        for e in program.entries], indent=1))
    ebpf_path = out / "pegasus_mlp.bpf.c"
    ebpf_path.write_text(emit_ebpf(compiled))

    print(f"P4 program:      {p4_path} ({len(program.source.splitlines())} lines, "
          f"{program.n_tables} tables)")
    print(f"table entries:   {entries_path} ({len(program.entries)} entries)")
    print(f"eBPF program:    {ebpf_path}")

    probe = calib[:32]
    assert (interpret_entries(program, compiled, probe)
            == compiled.forward_int(probe)).all()
    print("\nverification: interpreting the emitted entries reproduces the "
          "compiled pipeline bit-exactly on 32 probe inputs")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "build")
