"""The PegasusEngine facade: one config, one build path, zero drift.

The headline contract: for **every** supported ``EngineConfig`` —
topology x cache x lookup_backend x runtime kind — the engine's decisions
are bit-identical to the equivalent hand-wired dispatcher/runtime stack.
Plus: typed config validation, registry round-trips, lifecycle semantics,
the merged ServingReport, and the deprecation shims over the old entry
points.
"""

import warnings
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro.core.fuzzy import FuzzyTree
from repro.dataplane.runtime import (TwoStageRuntime,
                                     WindowedClassifierRuntime,
                                     flows_to_trace)
from repro.errors import ConfigError, PegasusError
from repro.net.traces import Trace
from repro.serving import EngineConfig, PegasusEngine, ServingReport
from repro.serving import engine as engine_mod
from repro.serving.cache import FlowDecisionCache
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.parallel import ParallelDispatcher
from repro.serving.scheduler import BatchScheduler

TOPOLOGIES = ("local", "sharded", "parallel")
BACKENDS = ("index", "tcam")
BATCH = 32
CACHE_CAP = 4096


@pytest.fixture(scope="module")
def two_stage_spec():
    """Extractor tree + slot tables for a window-8 two-stage runtime."""
    rng = np.random.default_rng(2)
    tree = FuzzyTree.fit(rng.uniform(0, 255, size=(300, 60)), n_leaves=16)
    slot_values = [rng.integers(-50, 50, size=(16, 3)) for _ in range(8)]
    return {"extractor_tree": tree, "slot_values": slot_values,
            "n_classes": 3, "idx_bits": 4}


class _TwoStageModel:
    """A minimal make_runtime model — module-level, so it pickles (spawn)."""

    def __init__(self, spec):
        self.spec = spec
        self.compiled = spec

    def make_runtime(self, capacity):
        return TwoStageRuntime(capacity=capacity, **self.spec)


def _config(topology, cached, backend, **kw):
    return EngineConfig(
        feature_mode="stats", batch_size=BATCH, lookup_backend=backend,
        decision_cache=cached, cache_capacity=CACHE_CAP,
        topology=topology, n_workers=1 if topology == "local" else 2, **kw)


def _windowed_factory(compiled16, cached, backend):
    def build():
        cache = FlowDecisionCache(CACHE_CAP) if cached else None
        rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=BATCH,
            decision_cache=cache)
        rt.set_lookup_backend(backend)
        return rt
    return build


def _two_stage_factory(spec, cached, backend):
    def build():
        cache = FlowDecisionCache(CACHE_CAP) if cached else None
        rt = TwoStageRuntime(batch_size=BATCH, decision_cache=cache, **spec)
        rt.set_lookup_backend(backend)
        return rt
    return build


def _hand_wired(factory, topology, flows, payload_bytes=None):
    """The pre-engine stack for one topology, directly wired."""
    scheduler = BatchScheduler(batch_size=BATCH)
    if topology == "local":
        trace, keys, labels = flows_to_trace(flows)
        ts = np.asarray([p.ts for p in trace.packets])
        return factory().process_trace(trace, labels=labels, keys=keys,
                                       spans=scheduler.iter_spans(ts))
    if topology == "sharded":
        return ShardedDispatcher(runtime_factory=factory, n_shards=2,
                                 scheduler=scheduler).serve_flows(flows)
    with ParallelDispatcher(runtime_factory=factory, n_workers=2,
                            scheduler=scheduler,
                            payload_bytes=payload_bytes) as dispatcher:
        return dispatcher.serve_flows(flows)


class TestConfigMatrixEquivalence:
    """Engine == hand-wired stack, bit for bit, across the full matrix."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("cached", [False, True])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_windowed(self, compiled16, replay_flows, topology, cached,
                      backend):
        ref = _hand_wired(_windowed_factory(compiled16, cached, backend),
                          topology, replay_flows)
        assert ref
        with PegasusEngine.from_compiled(
                compiled16, _config(topology, cached, backend)) as engine:
            report = engine.serve(replay_flows)
        assert report.decisions == ref
        if cached:
            assert report.cache_stats.lookups == len(ref)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("cached", [False, True])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_two_stage(self, two_stage_spec, replay_flows, topology, cached,
                       backend):
        ref = _hand_wired(_two_stage_factory(two_stage_spec, cached, backend),
                          topology, replay_flows, payload_bytes=60)
        assert ref
        config = _config(topology, cached, backend, runtime="two_stage")
        with PegasusEngine(source=two_stage_spec, config=config) as engine:
            report = engine.serve(replay_flows)
        assert report.decisions == ref

    def test_parallel_spawn_start_method(self, compiled16, replay_flows):
        """Engine-built replica factories stay picklable: the parallel
        topology must work under the spawn start method too."""
        ref = _hand_wired(_windowed_factory(compiled16, False, "index"),
                          "local", replay_flows)
        config = _config("parallel", False, "index", start_method="spawn")
        with PegasusEngine.from_compiled(compiled16, config) as engine:
            report = engine.serve(replay_flows)
        assert report.decisions == ref

    def test_serve_dispatches_trace_and_columns(self, compiled16,
                                                replay_flows):
        """serve() routes flows, Trace, and column dicts to one answer."""
        trace, _keys, labels = flows_to_trace(replay_flows)
        cols = trace.to_columns()
        for topology in ("local", "sharded"):
            config = _config(topology, False, "index")
            ref = PegasusEngine.from_compiled(compiled16, config) \
                .serve(replay_flows).decisions
            via_trace = PegasusEngine.from_compiled(compiled16, config) \
                .serve(trace, labels=labels).decisions
            via_cols = PegasusEngine.from_compiled(compiled16, config) \
                .serve(cols, labels=labels).decisions
            assert via_trace == ref
            assert via_cols == ref

    def test_serve_columns_requires_key_columns(self, compiled16,
                                                replay_flows):
        cols = Trace.from_flows(replay_flows).to_columns()
        del cols["proto"]
        engine = PegasusEngine.from_compiled(compiled16, _config("local",
                                                                 False,
                                                                 "index"))
        with pytest.raises(ValueError, match="missing serve columns"):
            engine.serve(cols)


class TestEngineConfig:
    @pytest.mark.parametrize("kwargs,field", [
        (dict(runtime="nope"), "runtime"),
        (dict(topology="nope"), "topology"),
        (dict(lookup_backend="nope"), "lookup_backend"),
        (dict(feature_mode="nope"), "feature_mode"),
        (dict(topology="local", n_workers=2), "n_workers"),
        (dict(n_workers=0, topology="sharded"), "n_workers"),
        (dict(window=1), "window"),
        (dict(capacity=0), "capacity"),
        (dict(cache_capacity=0), "cache_capacity"),
        (dict(batch_size=0), "batch_size"),
        (dict(min_batch_size=9, batch_size=4), "min_batch_size"),
        (dict(payload_bytes=0), "payload_bytes"),
        (dict(timeout=-1.0), "timeout"),
        (dict(latency_target=-1.0), "latency_target"),
        (dict(batch_size=4, max_batch_size=1), "max_batch_size"),
        (dict(decision_cache="l3"), "decision_cache"),
        (dict(l2_capacity=0), "l2_capacity"),
        (dict(l2_quantize_shift=-1), "l2_quantize_shift"),
        (dict(start_method="thread"), "start_method"),
        (dict(ring_depth=0), "ring_depth"),
        (dict(ring_chunk=0), "ring_chunk"),
        (dict(admission="nope"), "admission"),
        (dict(queue_capacity=0), "queue_capacity"),
        (dict(p99_target_ms=0.0), "p99_target_ms"),
        (dict(time_scale=-1.0), "time_scale"),
    ])
    def test_typed_validation(self, kwargs, field):
        with pytest.raises(ConfigError) as exc:
            EngineConfig(**kwargs)
        assert exc.value.field == field
        assert isinstance(exc.value, PegasusError)
        assert isinstance(exc.value, ValueError)    # old callers still catch

    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(Exception):
            config.batch_size = 1

    def test_overrides_revalidate(self, compiled16):
        config = EngineConfig(batch_size=64)
        with pytest.raises(ConfigError):
            PegasusEngine.from_compiled(compiled16, config, topology="nope")
        engine = PegasusEngine.from_compiled(compiled16, config,
                                             topology="sharded", n_workers=3)
        assert engine.config.batch_size == 64
        assert engine.config.n_workers == 3

    def test_bad_config_type(self, compiled16):
        with pytest.raises(ConfigError, match="config"):
            PegasusEngine.from_compiled(compiled16, config={"batch_size": 4})

    def test_source_xor_factory(self, compiled16):
        with pytest.raises(ConfigError, match="source"):
            PegasusEngine()
        with pytest.raises(ConfigError, match="source"):
            PegasusEngine(source=compiled16,
                          runtime_factory=lambda: None)


class TestBuilders:
    def test_from_model_windowed(self, compiled16, replay_flows):
        model = SimpleNamespace(compiled=compiled16)
        ref = PegasusEngine.from_compiled(
            compiled16, batch_size=BATCH).serve(replay_flows).decisions
        got = PegasusEngine.from_model(
            model, batch_size=BATCH).serve(replay_flows).decisions
        assert got == ref

    def test_from_model_requires_compiled(self):
        with pytest.raises(ConfigError, match="compiled"):
            PegasusEngine.from_model(SimpleNamespace(compiled=None))

    def test_from_model_two_stage_needs_make_runtime(self, compiled16):
        with pytest.raises(ConfigError, match="make_runtime"):
            PegasusEngine.from_model(SimpleNamespace(compiled=compiled16),
                                     runtime="two_stage")

    def test_from_model_two_stage(self, two_stage_spec, replay_flows):
        model = _TwoStageModel(two_stage_spec)
        ref = TwoStageRuntime(batch_size=BATCH, **two_stage_spec) \
            .process_flows(replay_flows)
        report = PegasusEngine.from_model(
            model, runtime="two_stage", batch_size=BATCH,
            decision_cache=True).serve(replay_flows)
        assert report.decisions == ref
        assert report.cache_stats.lookups == len(ref)

    def test_from_model_two_stage_spawn_parallel(self, two_stage_spec,
                                                 replay_flows):
        """The from_model factory must also survive a spawn boundary."""
        model = _TwoStageModel(two_stage_spec)
        ref = TwoStageRuntime(batch_size=BATCH, **two_stage_spec) \
            .process_flows(replay_flows)
        with PegasusEngine.from_model(
                model, runtime="two_stage", batch_size=BATCH,
                topology="parallel", n_workers=2,
                start_method="spawn") as engine:
            report = engine.serve(replay_flows)
        assert report.decisions == ref

    def test_from_factory_applies_backend(self, compiled16, replay_flows):
        factory = _windowed_factory(compiled16, False, "index")
        report = PegasusEngine.from_factory(
            factory, batch_size=BATCH, lookup_backend="tcam") \
            .serve(replay_flows)
        ref = _hand_wired(_windowed_factory(compiled16, False, "tcam"),
                          "local", replay_flows)
        assert report.decisions == ref
        assert report.lookup_backend == "tcam"

    def test_two_stage_source_must_be_mapping(self, compiled16):
        with pytest.raises(ConfigError, match="two_stage"):
            PegasusEngine(source=compiled16,
                          config=EngineConfig(runtime="two_stage"))

    def test_two_stage_source_rejects_engine_owned_fields(self,
                                                          two_stage_spec):
        spec = dict(two_stage_spec, window=8)
        with pytest.raises(ConfigError, match="window.*EngineConfig knobs"):
            PegasusEngine(source=spec,
                          config=EngineConfig(runtime="two_stage"))

    def test_from_model_window_must_match(self, two_stage_spec):
        model = _TwoStageModel(two_stage_spec)     # builds window-8 replicas
        with pytest.raises(ConfigError, match="window-8"):
            PegasusEngine.from_model(model, runtime="two_stage", window=4)

    def test_from_model_infers_payload_bytes(self, two_stage_spec):
        engine = PegasusEngine.from_model(_TwoStageModel(two_stage_spec),
                                          runtime="two_stage")
        assert engine.payload_bytes == 60          # TwoStageRuntime default
        narrow = PegasusEngine.from_model(
            _TwoStageModel(dict(two_stage_spec, raw_bytes=32)),
            runtime="two_stage")
        assert narrow.payload_bytes == 32


class TestLifecycleAndReport:
    def test_close_discards_state_any_topology(self, compiled16,
                                               replay_flows):
        for topology in TOPOLOGIES:
            engine = PegasusEngine.from_compiled(
                compiled16, _config(topology, False, "index"))
            first = engine.serve(replay_flows).decisions
            warm = engine.serve(replay_flows).decisions
            assert len(warm) > len(first)   # replica state persisted
            engine.close()
            assert engine.serve(replay_flows).decisions == first
            engine.close()
            engine.close()                  # idempotent
        assert first

    def test_report_fields(self, compiled16, replay_flows):
        config = _config("sharded", True, "index")
        with PegasusEngine.from_compiled(compiled16, config) as engine:
            report = engine.serve(replay_flows)
        assert isinstance(report, ServingReport)
        assert report.n_decisions == len(report.decisions) > 0
        assert report.n_packets >= report.n_decisions
        assert report.wall_seconds > 0 and report.pps > 0
        assert len(report.shard_seconds) == 2
        assert report.critical_seconds <= sum(report.shard_seconds) + 1e-9
        assert report.pps_parallel >= report.pps
        assert 0.0 <= report.accuracy <= 1.0
        assert report.flush_stats.total > 0
        assert report.cache_stats.lookups == report.n_decisions
        summary = report.summary()
        assert summary["topology"] == "sharded"
        assert summary["n_workers"] == 2
        assert summary["pps"] == report.pps

    def test_report_cache_stats_are_a_snapshot(self, compiled16,
                                               replay_flows):
        """A report must not mutate retroactively on later serves."""
        engine = PegasusEngine.from_compiled(
            compiled16, _config("local", True, "index"))
        first = engine.serve(replay_flows)
        lookups_then = first.cache_stats.lookups
        second = engine.serve(replay_flows)
        assert second.cache_stats.lookups > lookups_then   # lifetime grows
        assert first.cache_stats.lookups == lookups_then   # snapshot holds

    def test_unlabelled_trace_has_no_accuracy(self, compiled16,
                                              replay_flows):
        trace = Trace.from_flows(replay_flows)
        report = PegasusEngine.from_compiled(
            compiled16, batch_size=BATCH).serve(trace)
        assert report.decisions
        assert all(d.flow_label == -1 for d in report.decisions)
        assert report.accuracy is None
        assert report.summary()["accuracy"] is None


class TestRegistries:
    def test_runtime_kind_round_trip(self, compiled16, replay_flows):
        from repro.serving.engine import _build_windowed
        engine_mod.register_runtime_kind("windowed-2", _build_windowed)
        try:
            got = PegasusEngine.from_compiled(
                compiled16, runtime="windowed-2",
                batch_size=BATCH).serve(replay_flows).decisions
            ref = PegasusEngine.from_compiled(
                compiled16, batch_size=BATCH).serve(replay_flows) \
                .decisions
            assert got == ref
        finally:
            engine_mod.runtime_kinds.unregister("windowed-2")
        with pytest.raises(ConfigError, match="runtime"):
            EngineConfig(runtime="windowed-2")

    def test_lookup_backend_round_trip(self, compiled16, replay_flows):
        engine_mod.register_lookup_backend(
            "index-alias", apply=lambda rt: rt.set_lookup_backend("index"))
        try:
            got = PegasusEngine.from_compiled(
                compiled16, lookup_backend="index-alias",
                batch_size=BATCH).serve(replay_flows).decisions
            ref = PegasusEngine.from_compiled(
                compiled16, batch_size=BATCH).serve(replay_flows) \
                .decisions
            assert got == ref
        finally:
            engine_mod.lookup_backends.unregister("index-alias")
        with pytest.raises(ConfigError, match="lookup_backend"):
            EngineConfig(lookup_backend="index-alias")

    def test_topology_round_trip(self, compiled16, replay_flows):
        from repro.serving.engine import _ShardedDriver
        engine_mod.register_topology("modeled", _ShardedDriver)
        try:
            got = PegasusEngine.from_compiled(
                compiled16, topology="modeled", n_workers=2,
                batch_size=BATCH).serve(replay_flows).decisions
            ref = PegasusEngine.from_compiled(
                compiled16, topology="sharded", n_workers=2,
                batch_size=BATCH).serve(replay_flows).decisions
            assert got == ref
        finally:
            engine_mod.topologies.unregister("modeled")
        with pytest.raises(ConfigError, match="topology"):
            EngineConfig(topology="modeled")

    def test_duplicate_registration_needs_overwrite(self):
        with pytest.raises(ConfigError, match="already registered"):
            engine_mod.register_topology(
                "local", engine_mod.topologies.get("local"))
        # Re-registering with overwrite keeps the registry serviceable.
        engine_mod.register_topology(
            "local", engine_mod.topologies.get("local"), overwrite=True)
        assert "local" in engine_mod.topologies


class TestDeprecationShims:
    def test_sharded_dispatcher_warns(self, compiled16):
        with pytest.warns(DeprecationWarning, match="PegasusEngine"):
            repro.ShardedDispatcher(
                runtime_factory=_windowed_factory(compiled16, False, "index"),
                n_shards=1)

    def test_parallel_dispatcher_warns(self, compiled16):
        with pytest.warns(DeprecationWarning, match="PegasusEngine"):
            dispatcher = repro.ParallelDispatcher(
                runtime_factory=_windowed_factory(compiled16, False, "index"),
                n_workers=1)
        dispatcher.close()      # never started: a safe no-op

    def test_runtime_shims_warn(self, compiled16, two_stage_spec):
        with pytest.warns(DeprecationWarning, match="PegasusEngine"):
            repro.WindowedClassifierRuntime(compiled16, feature_mode="stats")
        with pytest.warns(DeprecationWarning, match="PegasusEngine"):
            repro.TwoStageRuntime(**two_stage_spec)

    def test_shims_still_serve(self, compiled16, replay_flows):
        """Old entry points keep producing the exact old decisions."""
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=BATCH).process_flows(replay_flows)
        with pytest.warns(DeprecationWarning):
            shim = repro.WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=BATCH)
        assert shim.process_flows(replay_flows) == ref
        with pytest.warns(DeprecationWarning):
            dispatcher = repro.ShardedDispatcher(
                runtime_factory=_windowed_factory(compiled16, False, "index"),
                n_shards=2, scheduler=BatchScheduler(batch_size=BATCH))
        assert dispatcher.serve_flows(replay_flows) == ref

    def test_old_serve_entry_points_warn_but_still_serve(self, compiled16,
                                                         replay_flows):
        """serve_flows/serve_trace/serve_columns are shims over serve()."""
        trace, _keys, labels = flows_to_trace(replay_flows)
        engine = PegasusEngine.from_compiled(compiled16, batch_size=BATCH)
        ref = engine.serve(replay_flows).decisions
        engine.close()
        with pytest.warns(DeprecationWarning, match="serve"):
            via_flows = engine.serve_flows(replay_flows).decisions
        engine.close()
        with pytest.warns(DeprecationWarning, match="serve"):
            via_trace = engine.serve_trace(trace, labels=labels).decisions
        engine.close()
        with pytest.warns(DeprecationWarning, match="serve"):
            via_cols = engine.serve_columns(trace.to_columns(),
                                            labels=labels).decisions
        assert via_flows == via_trace == via_cols == ref

    def test_engine_never_warns(self, compiled16, replay_flows):
        """The engine builds the un-deprecated internals: no warnings."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for topology in TOPOLOGIES:
                with PegasusEngine.from_compiled(
                        compiled16,
                        _config(topology, True, "index")) as engine:
                    assert engine.serve(replay_flows).decisions
