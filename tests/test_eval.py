"""Tests for metrics, the runtimes, and the experiment runner (quick mode)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.eval.metrics import (
    confusion_matrix, macro_f1, macro_precision_recall_f1, roc_curve, auc_score,
)
from repro.eval.reporting import render_table
from repro.eval.runner import run_table2, run_table5
from repro.dataplane.runtime import WindowedClassifierRuntime
from repro.models import build_model
from repro.net import make_dataset
from repro.net.features import dataset_views


class TestConfusion:
    def test_perfect(self):
        cm = confusion_matrix([0, 1, 2], [0, 1, 2])
        np.testing.assert_array_equal(cm, np.eye(3, dtype=int))

    def test_off_diagonal(self):
        cm = confusion_matrix([0, 0, 1], [0, 1, 1])
        assert cm[0, 1] == 1
        assert cm[1, 1] == 1

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            confusion_matrix([0, 1], [0])


class TestMacroF1:
    def test_perfect_is_one(self):
        assert macro_f1([0, 1, 2, 0], [0, 1, 2, 0]) == 1.0

    def test_all_wrong_is_zero(self):
        assert macro_f1([0, 0, 1, 1], [1, 1, 0, 0]) == 0.0

    def test_macro_weights_classes_equally(self):
        # 90 correct of class 0, 0 of 10 class-1 samples.
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100
        _, rc, f1 = macro_precision_recall_f1(y_true, y_pred)
        assert rc == pytest.approx(0.5)  # (1.0 + 0.0) / 2
        assert f1 < 0.6

    def test_absent_class_ignored(self):
        f1 = macro_f1([0, 0], [0, 0], n_classes=3)
        assert f1 == 1.0


class TestROC:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(labels, scores) == 1.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert abs(auc_score(labels, scores) - 0.5) < 0.05

    def test_inverted_scores(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 0.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=100)
        scores = rng.random(100)
        fpr, tpr = roc_curve(labels, scores)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_single_class_raises(self):
        with pytest.raises(ShapeError):
            roc_curve(np.zeros(5), np.random.default_rng(0).random(5))


class TestRendering:
    def test_render_table(self):
        out = render_table(["a", "bb"], [[1, 0.5], [22, 0.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "0.5000" in out
        assert "22" in out

    def test_update_bench_json_merges_sections(self, tmp_path):
        import json

        from repro.eval.reporting import update_bench_json

        path = tmp_path / "BENCH_serving.json"
        update_bench_json("batched", {"pps": {256: np.float64(123.5)}},
                          path=path)
        update_bench_json("parallel",
                          {"speedup": np.float64(2.5), "ok": True,
                           "counts": np.array([1, 2])}, path=path)
        data = json.loads(path.read_text())
        assert data["batched"]["pps"]["256"] == 123.5     # str keys, py floats
        assert data["parallel"] == {"speedup": 2.5, "ok": True,
                                    "counts": [1, 2]}
        update_bench_json("batched", {"pps": {}}, path=path)  # overwrite
        data = json.loads(path.read_text())
        assert data["batched"] == {"pps": {}}
        assert data["parallel"]["speedup"] == 2.5         # other section kept


class TestWindowedRuntime:
    def test_end_to_end_accuracy(self):
        ds = make_dataset("peerrush", flows_per_class=40, seed=0)
        train, _val, test = ds.split(rng=0)
        views = dataset_views(train)
        model = build_model("MLP-B", ds.n_classes, seed=0)
        model.train(views)
        model.compile_dataplane(views)
        runtime = WindowedClassifierRuntime(model.compiled, feature_mode="stats")
        decisions = runtime.process_flows(test)
        assert decisions
        acc = np.mean([d.predicted == d.flow_label for d in decisions])
        assert acc > 0.5

    def test_no_decision_before_window(self):
        ds = make_dataset("peerrush", flows_per_class=2, seed=0)
        flow = ds.flows[0]
        views = dataset_views(ds.flows)
        model = build_model("MLP-B", ds.n_classes, seed=0)
        model.train(views)
        model.compile_dataplane(views)
        runtime = WindowedClassifierRuntime(model.compiled, feature_mode="stats")
        for pkt in flow.packets[:7]:
            assert runtime.process_packet(pkt, flow.label) is None
        assert runtime.process_packet(flow.packets[7], flow.label) is not None

    def test_bits_per_flow(self):
        ds = make_dataset("peerrush", flows_per_class=2, seed=0)
        views = dataset_views(ds.flows)
        model = build_model("MLP-B", ds.n_classes, seed=0)
        model.train(views)
        model.compile_dataplane(views)
        runtime = WindowedClassifierRuntime(model.compiled, window=8)
        assert runtime.bits_per_flow == 16 + 8 + 7 * 8 + 7 * 8


class TestRunnerQuick:
    def test_table5_and_table2_quick(self):
        table5 = run_table5(flows_per_class=25, seed=0,
                            models=("Leo", "N3IC", "CNN-L"),
                            datasets=("peerrush",))
        assert set(table5) == {"Leo", "N3IC", "CNN-L"}
        for entry in table5.values():
            f1 = entry["rows"]["peerrush"]["F1"]
            assert 0.0 <= f1 <= 1.0
        table2 = run_table2(table5)
        assert "N3IC" in table2
        assert table2["N3IC"]["input_scale_ratio"] == pytest.approx(3840 / 128)
        # CNN-L (full precision, raw bytes) beats the binary MLP.
        assert table2["N3IC"]["accuracy_gain"] > 0

    def test_tcam_equivalence_quick(self):
        from repro.eval.runner import run_tcam_equivalence
        report = run_tcam_equivalence(flows_per_class=12, seed=0,
                                      worker_counts=(1, 2, 4), attack_flows=4,
                                      elephant_flows=2, batch_size=64,
                                      sample_keys=64)
        assert set(report["matrix"]) == {1, 2, 4}
        assert report["all_match"]
        assert report["entry_match"] and report["table_match"] \
            and report["serving_match"]
        assert report["tables"] and report["tcam_entries_total"] > 0
        for entry in report["matrix"].values():
            assert entry["decisions"] > 0
            for cached in ("cache_off", "cache_l1", "cache_l1+l2"):
                assert entry[cached]["sharded_match"]
                assert entry[cached]["parallel_match"]
            # the two-level config serves through the pruned kernel
            assert entry["cache_l1+l2"]["lookup_backend"] == "tcam-pruned"


class TestBenchRegressionSentinel:
    """The taildrop-zero ratio sentinel flows through the gate unharmed."""

    def _gate(self, tmp_path, baseline_val, current_val, extra_current=None):
        import json
        import sys
        sys.path.insert(0, "scripts")
        try:
            from check_bench_regression import main as gate_main
        finally:
            sys.path.pop(0)
        baseline = {"gate_metrics": ["openloop.aimd_over_taildrop_min"],
                    "openloop": {"aimd_over_taildrop_min": baseline_val}}
        current = {"openloop": {"aimd_over_taildrop_min": current_val}}
        current.update(extra_current or {})
        bp = tmp_path / "baseline.json"
        cp = tmp_path / "current.json"
        bp.write_text(json.dumps(baseline))
        cp.write_text(json.dumps(current))
        return gate_main([str(cp), str(bp)])

    def test_sentinel_on_either_side_reports_not_gates(self, tmp_path,
                                                       capsys):
        from repro.eval.runner import TAILDROP_ZERO
        assert self._gate(tmp_path, TAILDROP_ZERO, 2.0) == 0
        assert "not gated: sentinel" in capsys.readouterr().out
        assert self._gate(tmp_path, 2.0, TAILDROP_ZERO) == 0
        assert "not gated: sentinel" in capsys.readouterr().out

    def test_numeric_pair_still_gates(self, tmp_path, capsys):
        assert self._gate(tmp_path, 2.0, 0.5) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert self._gate(tmp_path, 2.0, 2.1) == 0

    def test_missing_metric_still_fails(self, tmp_path, capsys):
        import json
        baseline = {"gate_metrics": ["openloop.aimd_over_taildrop_min"],
                    "openloop": {"aimd_over_taildrop_min": 2.0}}
        bp = tmp_path / "baseline.json"
        cp = tmp_path / "current.json"
        bp.write_text(json.dumps(baseline))
        cp.write_text(json.dumps({"openloop": {}}))
        import sys
        sys.path.insert(0, "scripts")
        try:
            from check_bench_regression import main as gate_main
        finally:
            sys.path.pop(0)
        assert gate_main([str(cp), str(bp)]) == 1

    def test_openloop_study_records_sentinel_and_raw_pair(self):
        from repro.eval.runner import TAILDROP_ZERO, run_openloop_study
        res = run_openloop_study(flows_per_class=6, seed=0, flows_scale=0.2,
                                 p99_target_ms=50.0,
                                 load_multipliers=(0.5, 2.0))
        for entry in res["scenarios"].values():
            raw = entry["sustained_raw"]
            assert set(raw) == {"aimd", "tail_drop"}
            ratio = entry["aimd_over_taildrop"]
            if raw["tail_drop"] == 0:
                assert ratio == TAILDROP_ZERO
            else:
                assert ratio == pytest.approx(
                    raw["aimd"] / raw["tail_drop"])
        ratio_min = res["aimd_over_taildrop_min"]
        assert isinstance(ratio_min, (int, float)) \
            or ratio_min == TAILDROP_ZERO


class TestBenchRegressionNullsAndCores:
    """Bare JSON nulls fail the gate; sub-4-core speedups skip loudly."""

    BASELINE = {"gate_metrics": ["parallel.speedup_4_vs_1"],
                "parallel": {"speedup_4_vs_1": 2.5}}

    def _gate(self, tmp_path, current):
        import json
        import sys
        sys.path.insert(0, "scripts")
        try:
            from check_bench_regression import main as gate_main
        finally:
            sys.path.pop(0)
        bp = tmp_path / "baseline.json"
        cp = tmp_path / "current.json"
        bp.write_text(json.dumps(self.BASELINE))
        cp.write_text(json.dumps(current))
        return gate_main([str(cp), str(bp)])

    def test_bare_null_anywhere_fails(self, tmp_path, capsys):
        current = {"parallel": {"speedup_4_vs_1": 2.6, "cores": 8},
                   "scenarios": {"per_scenario": {"flow_churn": {
                       "phase_accuracy": {"mice-storm-1": None}}}}}
        assert self._gate(tmp_path, current) == 1
        err = capsys.readouterr().err
        assert "bare JSON null" in err and "mice-storm-1" in err

    def test_named_sentinel_instead_of_null_passes(self, tmp_path):
        current = {"parallel": {"speedup_4_vs_1": 2.6, "cores": 8},
                   "scenarios": {"per_scenario": {"flow_churn": {
                       "phase_accuracy": {"mice-storm-1":
                                          "no_labeled_packets"}}}}}
        assert self._gate(tmp_path, current) == 0

    def test_few_cores_skips_loudly(self, tmp_path, capsys):
        current = {"parallel": {"speedup_4_vs_1": "single_core",
                                "speedup_4_vs_1_raw": 0.84,
                                "cores": 1}}
        assert self._gate(tmp_path, current) == 0
        out = capsys.readouterr().out
        assert "SKIPPED" in out and "1 core" in out and ">= 4" in out

    def test_multicore_numeric_value_still_gates(self, tmp_path, capsys):
        current = {"parallel": {"speedup_4_vs_1": 1.0, "cores": 8}}
        assert self._gate(tmp_path, current) == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestMetricOrSentinel:
    def test_values_pass_through_including_falsy(self):
        from repro.eval.reporting import metric_or_sentinel
        assert metric_or_sentinel(0.5) == 0.5
        assert metric_or_sentinel(0.0) == 0.0          # falsy but defined
        assert metric_or_sentinel(None) == "no_labeled_packets"
        assert metric_or_sentinel(None, "single_core") == "single_core"
