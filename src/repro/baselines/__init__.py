"""Baselines the paper compares against: Leo, N3IC, and BoS.

- :mod:`repro.baselines.tree` — a from-scratch CART classifier.
- :mod:`repro.baselines.leo` — Leo: the decision tree encoded as dataplane
  MAT rules (range expansion into TCAM).
- :mod:`repro.baselines.n3ic` — N3IC: a fully binarized MLP whose MatMuls
  run as XNOR + popcount.
- :mod:`repro.baselines.bos` — BoS: a binary RNN realized as enumerated
  input->output mapping tables per time step.
"""

from repro.baselines.tree import DecisionTree
from repro.baselines.leo import LeoModel
from repro.baselines.n3ic import N3ICModel
from repro.baselines.bos import BoSModel

BASELINE_NAMES = ("Leo", "N3IC", "BoS")


def build_baseline(name: str, n_classes: int, seed: int = 0):
    registry = {"Leo": LeoModel, "N3IC": N3ICModel, "BoS": BoSModel}
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown baseline {name!r}; choose from {BASELINE_NAMES}") from None
    return cls(n_classes=n_classes, seed=seed)


__all__ = ["DecisionTree", "LeoModel", "N3ICModel", "BoSModel",
           "BASELINE_NAMES", "build_baseline"]
