"""Tests for the six paper models: training, compilation, accounting."""

import numpy as np
import pytest

from repro.eval.metrics import macro_f1
from repro.eval.runner import prepare_dataset
from repro.models import build_model, MODEL_NAMES
from repro.models.cnn import CNNL
from repro.models.rnn import RNNB


FLOWS = 40  # quick-mode dataset size for unit tests


@pytest.fixture(scope="module")
def peerrush():
    return prepare_dataset("peerrush", FLOWS, 0)


class TestBuildModel:
    def test_all_names_construct(self):
        for name in MODEL_NAMES:
            model = build_model(name, n_classes=3, seed=0)
            assert model.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_model("GPT-5", n_classes=3)


@pytest.mark.parametrize("name", ["MLP-B", "CNN-B", "CNN-M"])
class TestClassifierContracts:
    def test_train_compile_predict(self, name, peerrush):
        train_v, _v, test_v, n_classes = peerrush
        model = build_model(name, n_classes, seed=0)
        model.train(train_v)
        model.compile_dataplane(train_v)
        pred = model.predict_dataplane(test_v)
        assert pred.shape == test_v["y"].shape
        assert set(np.unique(pred)).issubset(set(range(n_classes)))
        # Better than chance on a learnable dataset.
        assert macro_f1(test_v["y"], pred, n_classes) > 1.5 / n_classes

    def test_requires_training_first(self, name, peerrush):
        from repro.errors import TrainingError
        _t, _v, test_v, n_classes = peerrush
        model = build_model(name, n_classes, seed=0)
        with pytest.raises(TrainingError):
            model.predict_float(test_v)

    def test_accounting_positive(self, name, peerrush):
        _t, _v, _test, n_classes = peerrush
        model = build_model(name, n_classes, seed=0)
        assert model.model_size_kbits() > 0
        assert model.input_scale_bits() == 128
        assert model.flow_layout().bits_per_flow > 0


class TestRNNB:
    def test_discrete_chain_tracks_float(self, peerrush):
        train_v, _v, test_v, n_classes = peerrush
        model = RNNB(n_classes, seed=0, epochs=30)
        model.train(train_v)
        model.compile_dataplane(train_v, n_hidden_clusters=128, n_token_leaves=32)
        f1_float = macro_f1(test_v["y"], model.predict_float(test_v), n_classes)
        f1_dp = macro_f1(test_v["y"], model.predict_dataplane(test_v), n_classes)
        assert f1_dp > 1.0 / n_classes
        assert f1_dp <= f1_float + 0.15  # dataplane approximates float

    def test_table_accounting(self, peerrush):
        train_v, _v, _t, n_classes = peerrush
        model = RNNB(n_classes, seed=0, epochs=5)
        model.train(train_v)
        model.compile_dataplane(train_v, n_hidden_clusters=64, n_token_leaves=16)
        compiled = model.compiled
        assert compiled.num_tables == 2 * 8 + 1
        assert compiled.sram_bits() > 0
        assert compiled.tcam_bits() > 0

    def test_hidden_index_width(self, peerrush):
        train_v, _v, _t, n_classes = peerrush
        model = RNNB(n_classes, seed=0, epochs=5)
        model.train(train_v)
        model.compile_dataplane(train_v, n_hidden_clusters=64, n_token_leaves=16)
        for t in model.compiled.transitions:
            assert t.max() < 64


class TestCNNL:
    def test_input_scale_is_3840_bits(self):
        assert CNNL(n_classes=3).input_scale_bits() == 3840

    def test_flow_layout_variants(self):
        assert CNNL(3, idx_bits=4, use_ipd=False).flow_layout().bits_per_flow == 28
        assert CNNL(3, idx_bits=4, use_ipd=True).flow_layout().bits_per_flow == 44
        assert CNNL(3, idx_bits=8, use_ipd=True).flow_layout().bits_per_flow == 72

    def test_high_accuracy_on_raw_bytes(self, peerrush):
        train_v, _v, test_v, n_classes = peerrush
        model = CNNL(n_classes, seed=0, epochs=10)
        model.train(train_v)
        model.compile_dataplane(train_v)
        f1 = macro_f1(test_v["y"], model.predict_dataplane(test_v), n_classes)
        assert f1 > 0.9  # payload headers separate PeerRush classes

    def test_runtime_matches_views_path(self, peerrush):
        """The packet-level TwoStageRuntime agrees with the vectorized path."""
        from repro.net import make_dataset
        ds = make_dataset("peerrush", flows_per_class=FLOWS, seed=0)
        train, _val, test = ds.split(rng=0)
        from repro.net.features import dataset_views
        train_v = dataset_views(train)
        model = CNNL(ds.n_classes, seed=0, epochs=10, use_ipd=False)
        model.train(train_v)
        model.compile_dataplane(train_v)
        runtime = model.make_runtime()
        decisions = runtime.process_flows(test[:20])
        assert decisions, "runtime produced no classifications"
        correct = sum(d.predicted == d.flow_label for d in decisions)
        assert correct / len(decisions) > 0.6

    def test_extractor_index_fits_bits(self, peerrush):
        train_v, _v, _t, n_classes = peerrush
        model = CNNL(n_classes, seed=0, epochs=5, idx_bits=4)
        model.train(train_v)
        model.compile_dataplane(train_v)
        assert model.extractor_tree.n_leaves <= 16


class TestAutoEncoder:
    def test_scores_higher_on_noise(self, peerrush):
        train_v, _v, test_v, _n = peerrush
        model = build_model("AutoEncoder", 0, seed=0)
        model.train(train_v)
        benign = model.score_float(test_v)
        rng = np.random.default_rng(1)
        noise_v = {"seq": rng.integers(0, 256, size=test_v["seq"].shape)}
        anomalous = model.score_float(noise_v)
        assert anomalous.mean() > benign.mean()

    def test_dataplane_scores_correlate_with_float(self, peerrush):
        train_v, _v, test_v, _n = peerrush
        model = build_model("AutoEncoder", 0, seed=0)
        model.train(train_v)
        model.compile_dataplane(train_v)
        rng = np.random.default_rng(2)
        mixed = {"seq": np.concatenate([
            test_v["seq"], rng.integers(0, 256, size=(50, 16))]).astype(np.uint8)}
        float_scores = model.score_float(mixed)
        dp_scores = model.score_dataplane(mixed)
        corr = np.corrcoef(float_scores, dp_scores)[0, 1]
        assert corr > 0.5
