"""Stateful per-flow registers.

Programmable switches keep per-flow features in stateful SRAM register
arrays; the bits consumed per flow bound the number of concurrent flows
(paper §7.3 / Figure 7). A :class:`FlowStateLayout` declares the fields one
model needs per flow (e.g. CNN-L: a 16-bit previous-packet timestamp plus a
4-bit fuzzy index for each of 7 stored packets = 44 bits); the
:class:`FlowStateTable` enforces field widths and accounts for SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PipelineError
from repro.net.packet import FlowKey


@dataclass(frozen=True)
class RegisterField:
    """One named per-flow field of ``bits`` width, possibly an array."""

    name: str
    bits: int
    count: int = 1

    @property
    def total_bits(self) -> int:
        return self.bits * self.count


@dataclass
class FlowStateLayout:
    """The per-flow record a model keeps on the switch."""

    fields: list[RegisterField]

    @property
    def bits_per_flow(self) -> int:
        return sum(f.total_bits for f in self.fields)

    def sram_bits(self, n_flows: int) -> int:
        return self.bits_per_flow * n_flows

    def sram_fraction(self, n_flows: int, total_sram_bits: int) -> float:
        return self.sram_bits(n_flows) / total_sram_bits

    def field(self, name: str) -> RegisterField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"no register field named {name!r}")


class FlowStateTable:
    """Per-flow register storage with width enforcement.

    A real switch indexes registers by a hash of the flow key; collisions
    evict state. We model an exact-match table of bounded capacity with
    FIFO eviction, which preserves the capacity-vs-flows trade-off without
    modelling a specific hash scheme.
    """

    def __init__(self, layout: FlowStateLayout, capacity: int = 1_000_000):
        self.layout = layout
        self.capacity = capacity
        self._store: dict[FlowKey, dict[str, list[int]]] = {}
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._store)

    def _fresh_record(self) -> dict[str, list[int]]:
        return {f.name: [0] * f.count for f in self.layout.fields}

    def get(self, key: FlowKey) -> dict[str, list[int]]:
        """Fetch (creating if absent) the record for a flow."""
        record = self._store.get(key)
        if record is None:
            if len(self._store) >= self.capacity:
                oldest = next(iter(self._store))
                del self._store[oldest]
                self.evictions += 1
            record = self._fresh_record()
            self._store[key] = record
        return record

    def write(self, key: FlowKey, name: str, value: int, index: int = 0) -> None:
        """Write one field element, enforcing its register width."""
        reg = self.layout.field(name)
        if not 0 <= value < (1 << reg.bits):
            raise PipelineError(
                f"value {value} does not fit register {name!r} ({reg.bits} bits)")
        if not 0 <= index < reg.count:
            raise PipelineError(f"register {name!r} index {index} out of range")
        self.get(key)[name][index] = value

    def read(self, key: FlowKey, name: str, index: int = 0) -> int:
        return self.get(key)[name][index]

    def shift_in(self, key: FlowKey, name: str, value: int) -> None:
        """Append to a register array, shifting older entries out (window state)."""
        reg = self.layout.field(name)
        if not 0 <= value < (1 << reg.bits):
            raise PipelineError(
                f"value {value} does not fit register {name!r} ({reg.bits} bits)")
        arr = self.get(key)[name]
        arr.pop(0)
        arr.append(value)


def register_dtype(bits: int) -> np.dtype:
    """Narrowest unsigned NumPy dtype that holds a ``bits``-wide register."""
    if bits <= 8:
        return np.dtype(np.uint8)
    if bits <= 16:
        return np.dtype(np.uint16)
    if bits <= 32:
        return np.dtype(np.uint32)
    return np.dtype(np.uint64)


class VectorFlowState:
    """Columnar per-flow register storage for the batched runtimes.

    Semantically identical to :class:`FlowStateTable` (same fields, same
    widths, same FIFO eviction at capacity) but laid out for vectorized
    access: each :class:`RegisterField` becomes one preallocated 2-D NumPy
    array of shape ``(capacity, field.count)`` in the narrowest unsigned
    dtype that holds the field width. Flow keys map to *slots* (row indices)
    through an insertion-ordered dict, so a whole batch of packets can
    gather/scatter its per-flow state with fancy indexing instead of one
    dict write per packet.

    Eviction model: like the scalar table, this is an exact-match store of
    bounded ``capacity`` with FIFO eviction — when a new flow arrives at
    capacity, the *oldest inserted* flow is evicted, its slot's register
    rows are zeroed, and the slot is reused. ``evictions`` counts these
    events. A batched caller that still has unprocessed packets referring
    to the victim's slot must flush before the eviction happens; pass those
    slots as ``blocked`` to :meth:`acquire` and it refuses (returns None)
    instead of corrupting in-flight state.
    """

    def __init__(self, layout: FlowStateLayout, capacity: int = 1_000_000):
        if capacity < 1:
            raise PipelineError("VectorFlowState capacity must be >= 1")
        self.layout = layout
        self.capacity = capacity
        self.evictions = 0
        self._slot_of: dict[FlowKey, int] = {}   # insertion order = FIFO order
        self._next_slot = 0                      # high-water mark of used rows
        self.columns: dict[str, np.ndarray] = {
            f.name: np.zeros((capacity, f.count), dtype=register_dtype(f.bits))
            for f in layout.fields}

    def __len__(self) -> int:
        return len(self._slot_of)

    def slot_of(self, key: FlowKey) -> int | None:
        """The slot currently assigned to ``key``, or None if untracked."""
        return self._slot_of.get(key)

    def acquire(self, key: FlowKey, blocked: set[int] = frozenset()) -> int | None:
        """Slot for ``key``, allocating (with FIFO eviction) when absent.

        Returns None — without mutating anything — when allocation would
        evict a slot in ``blocked`` (a slot with unflushed in-batch state).
        """
        slot = self._slot_of.get(key)
        if slot is not None:
            return slot
        if self._next_slot < self.capacity:
            slot = self._next_slot
            self._next_slot += 1
        else:
            victim_key = next(iter(self._slot_of))
            slot = self._slot_of[victim_key]
            if slot in blocked:
                return None
            del self._slot_of[victim_key]
            self.evictions += 1
            for col in self.columns.values():
                col[slot] = 0
        self._slot_of[key] = slot
        return slot

    # -- scalar element access (reference path / tests) ----------------------

    def read(self, key: FlowKey, name: str, index: int = 0) -> int:
        return int(self.columns[name][self.acquire(key), index])

    def write(self, key: FlowKey, name: str, value: int, index: int = 0) -> None:
        """Write one field element, enforcing its register width."""
        reg = self.layout.field(name)
        if not 0 <= value < (1 << reg.bits):
            raise PipelineError(
                f"value {value} does not fit register {name!r} ({reg.bits} bits)")
        if not 0 <= index < reg.count:
            raise PipelineError(f"register {name!r} index {index} out of range")
        self.columns[name][self.acquire(key), index] = value

    def shift_in(self, key: FlowKey, name: str, value: int) -> None:
        """Append to a register array row, shifting older entries out."""
        reg = self.layout.field(name)
        if not 0 <= value < (1 << reg.bits):
            raise PipelineError(
                f"value {value} does not fit register {name!r} ({reg.bits} bits)")
        row = self.columns[name][self.acquire(key)]
        row[:-1] = row[1:]
        row[-1] = value
