"""``--style``: the local approximations of the CI-only style gates.

CI runs ruff; this machine (and any contributor box without third-party
tooling) cannot. Two checks reproduce the ruff failures that have actually
fired on this repo, so ``python -m repro.analysis --style`` is the one
local command that runs the full gate (invariants + style):

- ``line-too-long`` — the ruff ``line-length`` limit, read from
  ``[tool.ruff] line-length`` in ``pyproject.toml`` when parsable
  (``tomllib``, python >= 3.11) and defaulting to the repo's configured
  100 otherwise. URLs in comments and ``# noqa`` lines are *not* exempt —
  ruff does not exempt them either.
- ``syntax-error`` — the ``python -m compileall`` smoke: every file must
  parse. (The lint pass needs the AST anyway, so in practice this check
  exists for ``--style``-only invocations and for non-linted trees.)

Style findings honor the same ``# reprolint: disable=`` comments as the
invariant rules.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.core import (Finding, iter_python_files,
                                 parse_suppressions)

DEFAULT_LINE_LENGTH = 100

_LINE_LENGTH_RE = re.compile(r"^line-length\s*=\s*(\d+)\s*$", re.MULTILINE)


def configured_line_length(start: Path) -> int:
    """The ruff line-length from the nearest pyproject.toml, else 100."""
    for directory in [start] + list(start.parents):
        pyproject = directory / "pyproject.toml"
        if not pyproject.is_file():
            continue
        try:
            import tomllib
            with pyproject.open("rb") as fh:
                data = tomllib.load(fh)
            value = data.get("tool", {}).get("ruff", {}).get("line-length")
            if isinstance(value, int):
                return value
        except Exception:
            # No tomllib (py3.10) or malformed file: a plain-text scan of
            # the one key we need still beats silently using the default.
            match = _LINE_LENGTH_RE.search(
                pyproject.read_text(encoding="utf-8", errors="replace"))
            if match:
                return int(match.group(1))
        return DEFAULT_LINE_LENGTH
    return DEFAULT_LINE_LENGTH


def check_style_source(source: str, display: str, *,
                       line_length: int = DEFAULT_LINE_LENGTH
                       ) -> list[Finding]:
    """Style findings for one source blob (suppressions already honored)."""
    findings: list[Finding] = []
    try:
        ast.parse(source, filename=display)
    except SyntaxError as exc:
        findings.append(Finding("syntax-error", display, exc.lineno or 1,
                                f"file does not compile: {exc.msg}"))
        return findings
    suppressions = parse_suppressions(source)
    for lineno, line in enumerate(source.splitlines(), start=1):
        if len(line.rstrip("\n")) > line_length:
            rules = suppressions.get(lineno, ())
            if "line-too-long" in rules or "all" in rules:
                continue
            findings.append(Finding(
                "line-too-long", display, lineno,
                f"line is {len(line)} characters (limit {line_length})"))
    return findings


def check_style(paths: list[str | Path]) -> list[Finding]:
    """Run the style gate over every .py file under ``paths``."""
    findings: list[Finding] = []
    files = iter_python_files(paths)
    line_length = configured_line_length(
        files[0][0].parent if files else Path.cwd())
    for path, display in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding("unreadable-file", display, 1, str(exc)))
            continue
        findings.extend(check_style_source(source, display,
                                           line_length=line_length))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
