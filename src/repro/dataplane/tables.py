"""Ternary (TCAM) table entries for fuzzy-match trees.

A fuzzy tree's leaves are axis-aligned boxes; each box expands into the
cross product of its per-dimension prefix covers (multi-field range
expansion, §6.1). ``tcam_lookup`` is the reference TCAM semantics used to
cross-validate that the expansion matches the tree bit-for-bit; the fast
path in the pipeline uses the tree directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.core.crc import range_to_prefixes
from repro.core.fuzzy import FuzzyTree


@dataclass(frozen=True)
class TernaryTableEntry:
    """One TCAM entry: per-dimension (value, mask) patterns -> result index."""

    values: tuple[int, ...]
    masks: tuple[int, ...]
    result: int

    def matches(self, key: tuple[int, ...] | np.ndarray) -> bool:
        return all((int(k) & m) == (v & m)
                   for k, v, m in zip(key, self.values, self.masks))


def ternary_entries_for_tree(tree: FuzzyTree, key_bits: int = 8,
                             signed: bool = False) -> list[TernaryTableEntry]:
    """Expand every leaf box of a fuzzy tree into TCAM entries.

    Signed keys use excess-K encoding: the dataplane matches
    ``key + 2^(bits-1)`` so numeric order maps to unsigned order.
    """
    lo = -(1 << (key_bits - 1)) if signed else 0
    hi = lo + (1 << key_bits) - 1
    entries: list[TernaryTableEntry] = []
    for leaf, box in enumerate(tree.leaf_boxes(lo=lo, hi=hi)):
        per_dim = []
        empty = False
        for b_lo, b_hi in box:
            lo_i = int(np.clip(np.ceil(b_lo), lo, hi))
            hi_i = int(np.clip(np.floor(b_hi), lo, hi))
            if lo_i > hi_i:
                empty = True
                break
            per_dim.append(range_to_prefixes(lo_i - lo, hi_i - lo, key_bits))
        if empty:
            continue
        for combo in product(*per_dim):
            entries.append(TernaryTableEntry(
                values=tuple(p.value for p in combo),
                masks=tuple(p.mask for p in combo),
                result=leaf))
    return entries


def encode_key(values, key_bits: int, signed: bool) -> tuple[int, ...]:
    """Excess-K encode a key vector for TCAM matching."""
    bias = (1 << (key_bits - 1)) if signed else 0
    return tuple(int(v) + bias for v in values)


def tcam_lookup(entries: list[TernaryTableEntry], key) -> int:
    """Reference TCAM lookup; leaf boxes are disjoint so any match wins."""
    for entry in entries:
        if entry.matches(key):
            return entry.result
    raise LookupError(f"no TCAM entry matches key {key}")
