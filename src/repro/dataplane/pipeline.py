"""Pipeline placement and execution.

``place_model`` lays a :class:`CompiledModel`'s tables onto MAT stages.
Rules, mirroring how PISA compilers allocate:

- Tables of the same lookup round are independent and may share stages.
- A large logical table may *span* several consecutive stages (its match
  memory is split across them); the lookup result is available after its
  last stage.
- A later round reads metadata written by the previous round's actions, so
  all its tables start in a strictly later stage than the previous round
  finishes — the dependency that makes deep unfused models infeasible on a
  20-stage pipeline and fused Pegasus models feasible.
- Each stage has hard SRAM / TCAM budgets; the action-data bus is charged in
  the stage that delivers a table's result.

``Pipeline.process`` executes packets bit-exactly like
``CompiledModel.forward_int`` (asserted by tests): integer-only lookups and
saturating accumulator adds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PipelineError, ResourceExceededError
from repro.core.mapping import CompiledModel, SegmentTable
from repro.dataplane.phv import PHVAllocator
from repro.dataplane.target import TargetConfig, TOFINO2


@dataclass
class StageBudget:
    """Remaining capacity of one physical stage during placement."""

    index: int
    sram_left: int
    tcam_left: int
    bus_left: int


@dataclass
class TablePlacement:
    """Where one logical segment table landed."""

    table: SegmentTable
    layer_index: int
    name: str
    start_stage: int
    end_stage: int
    allocations: list[tuple[int, int, int]] = field(default_factory=list)  # (stage, sram, tcam)


@dataclass
class Pipeline:
    """A compiled model placed onto a PISA pipeline."""

    target: TargetConfig
    model: CompiledModel
    placements: list[TablePlacement] = field(default_factory=list)
    stage_usage: list[StageBudget] = field(default_factory=list)
    phv: PHVAllocator | None = None

    @property
    def n_stages_used(self) -> int:
        if not self.placements:
            return 0
        return max(p.end_stage for p in self.placements) + 1

    def stage_bus_used(self, stage: int) -> int:
        return sum(p.table.bus_bits() for p in self.placements if p.end_stage == stage)

    @property
    def worst_stage_bus(self) -> int:
        return max((self.stage_bus_used(s) for s in range(self.n_stages_used)), default=0)

    def process(self, x_int: np.ndarray) -> np.ndarray:
        """Execute a batch through the placed pipeline, layer round by round.

        Like :meth:`CompiledModel.forward_int`, results are batch-size
        invariant (integer-only lookups and saturating adds), so the batched
        runtimes can hand a whole trace batch to one placed pipeline call.
        """
        x = np.asarray(x_int, dtype=np.int64)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[0] == 0:
            out_dim = self.model.layers[-1].out_dim if self.model.layers \
                else self.model.input_dim
            return np.zeros((0, out_dim), dtype=np.int64)
        by_layer: dict[int, list[TablePlacement]] = {}
        for p in self.placements:
            by_layer.setdefault(p.layer_index, []).append(p)
        current = x
        for layer_idx, layer in enumerate(self.model.layers):
            placements = by_layer.get(layer_idx, [])
            if len(placements) != len(layer.tables):
                raise PipelineError(
                    f"layer {layer_idx}: {len(placements)} of {len(layer.tables)} "
                    "tables placed")
            results = []
            for p in placements:
                seg = p.table.segment
                results.append(p.table.lookup(current[:, seg[0]:seg[1]]))
            if layer.sum_reduce:
                acc = np.zeros((len(x), layer.out_dim), dtype=np.int64)
                for r in results:
                    acc += r
                current = np.clip(acc, layer.out_format.int_min, layer.out_format.int_max)
            else:
                order = np.argsort([p.table.segment[0] for p in placements])
                current = np.concatenate([results[i] for i in order], axis=1)
        return current

    def predict(self, x_int: np.ndarray) -> np.ndarray:
        return np.argmax(self.process(x_int), axis=1)


def place_model(model: CompiledModel, target: TargetConfig = TOFINO2,
                start_stage: int = 0) -> Pipeline:
    """Greedy spanning placement honoring dependencies and stage budgets."""
    budgets = [StageBudget(index=i,
                           sram_left=target.sram_bits_per_stage,
                           tcam_left=target.tcam_bits_per_stage,
                           bus_left=target.action_bus_bits)
               for i in range(target.n_stages)]
    pipeline = Pipeline(target=target, model=model, stage_usage=budgets)

    # PHV must carry the input plus the widest inter-layer activations.
    phv = PHVAllocator(capacity_bits=target.phv_bits)
    phv.allocate("input", model.input_dim * model.input_bits)
    for i, layer in enumerate(model.layers):
        phv.allocate(f"act{i}", layer.out_dim * layer.out_format.total_bits)
    pipeline.phv = phv

    next_free = start_stage
    for layer_idx, layer in enumerate(model.layers):
        layer_end = next_free - 1
        for t_idx, table in enumerate(layer.tables):
            sram_need = table.sram_bits()
            tcam_need = table.tcam_bits()
            bus_need = table.bus_bits()
            stage_i = next_free
            start = None
            allocations = []
            while (sram_need > 0 or tcam_need > 0) and stage_i < target.n_stages:
                b = budgets[stage_i]
                take_sram = min(sram_need, b.sram_left)
                take_tcam = min(tcam_need, b.tcam_left)
                if take_sram > 0 or take_tcam > 0:
                    if start is None:
                        start = stage_i
                    b.sram_left -= take_sram
                    b.tcam_left -= take_tcam
                    sram_need -= take_sram
                    tcam_need -= take_tcam
                    allocations.append((stage_i, take_sram, take_tcam))
                stage_i += 1
            if sram_need > 0 or tcam_need > 0:
                short = "SRAM" if sram_need > 0 else "TCAM"
                raise ResourceExceededError(
                    f"{short} (pipeline total)", sram_need + tcam_need, 0)
            end = allocations[-1][0] if allocations else next_free
            if start is None:
                start = next_free
            # The result is delivered on the bus of the final spanned stage.
            if budgets[end].bus_left < bus_need:
                # Push delivery to the next stage with bus room.
                while end < target.n_stages and budgets[end].bus_left < bus_need:
                    end += 1
                if end >= target.n_stages:
                    raise ResourceExceededError("action bus", bus_need, 0)
            budgets[end].bus_left -= bus_need
            pipeline.placements.append(TablePlacement(
                table=table, layer_index=layer_idx, name=f"l{layer_idx}_t{t_idx}",
                start_stage=start, end_stage=end, allocations=allocations))
            layer_end = max(layer_end, end)
        next_free = layer_end + 1
        if next_free > target.n_stages and layer_idx < len(model.layers) - 1:
            raise ResourceExceededError("stages", next_free, target.n_stages)
    if pipeline.n_stages_used > target.n_stages:
        raise ResourceExceededError("stages", pipeline.n_stages_used, target.n_stages)
    return pipeline
