"""Batched-vs-scalar bit-exactness of the dataplane runtimes.

The contract under test: for any batch size, the batched vectorized replay
produces the *same decisions in the same order* as the per-packet reference
path (``process_flows_scalar``) — including under register-capacity
eviction churn and when the model is a placed Pipeline instead of a bare
CompiledModel.
"""

import numpy as np
import pytest

from repro.core.fuzzy import FuzzyTree
from repro.dataplane import place_model, TOFINO2, VectorFlowState
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.dataplane.runtime import TwoStageRuntime, WindowedClassifierRuntime

BATCH_SIZES = (1, 7, 256)


class TestWindowedBatched:
    @pytest.mark.parametrize("mode", ["seq", "stats"])
    def test_bit_exact_across_batch_sizes(self, compiled16, replay_flows, mode):
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode=mode).process_flows_scalar(replay_flows)
        assert ref  # the workload must actually produce decisions
        for batch_size in BATCH_SIZES:
            runtime = WindowedClassifierRuntime(
                compiled16, feature_mode=mode, batch_size=batch_size)
            assert runtime.process_flows(replay_flows) == ref

    def test_bit_exact_under_eviction(self, compiled16, replay_flows):
        ref_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", capacity=5)
        ref = ref_rt.process_flows_scalar(replay_flows)
        assert ref_rt.state.evictions > 0
        for batch_size in BATCH_SIZES:
            runtime = WindowedClassifierRuntime(
                compiled16, feature_mode="stats", capacity=5,
                batch_size=batch_size)
            assert runtime.process_flows(replay_flows) == ref
            assert runtime.state.evictions == ref_rt.state.evictions

    def test_pipeline_model_matches_compiled(self, compiled16, replay_flows):
        """A placed Pipeline behind the runtime decides like the raw model."""
        pipeline = place_model(compiled16, TOFINO2)
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="seq").process_flows_scalar(replay_flows)
        runtime = WindowedClassifierRuntime(
            pipeline, feature_mode="seq", batch_size=64)
        assert runtime.process_flows(replay_flows) == ref

    def test_decisions_carry_trace_order(self, compiled16, replay_flows):
        decisions = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows(replay_flows)
        seqs = [d.seq for d in decisions]
        assert seqs == sorted(seqs)
        assert all(s >= 0 for s in seqs)


class TestTwoStageBatched:
    @pytest.fixture(scope="class")
    def slot_values(self):
        rng = np.random.default_rng(1)
        return [rng.integers(-50, 50, size=(16, 3)) for _ in range(8)]

    def test_raw_bytes_bit_exact(self, replay_flows, slot_values):
        rng = np.random.default_rng(2)
        tree = FuzzyTree.fit(rng.uniform(0, 255, size=(300, 60)), n_leaves=16)
        ref = TwoStageRuntime(
            tree, slot_values, n_classes=3, idx_bits=4
        ).process_flows_scalar(replay_flows)
        assert ref
        for batch_size in BATCH_SIZES:
            runtime = TwoStageRuntime(tree, slot_values, n_classes=3,
                                      idx_bits=4, batch_size=batch_size)
            assert runtime.process_flows(replay_flows) == ref

    def test_feature_fn_and_ipd_bit_exact(self, replay_flows, slot_values):
        """The refined-feature + IPD path (CNN-L 44-bit variant) stays exact."""
        rng = np.random.default_rng(3)
        proj = rng.normal(size=(60, 5))

        def feature_fn(rows, ipd_bucket=None):
            feats = np.asarray(rows, dtype=np.float64) @ proj
            if ipd_bucket is not None:
                feats = feats + np.atleast_1d(ipd_bucket)[:, None]
            return feats

        tree = FuzzyTree.fit(rng.uniform(-100, 100, size=(300, 5)), n_leaves=16)
        ref_rt = TwoStageRuntime(tree, slot_values, n_classes=3, idx_bits=4,
                                 needs_ipd=True, feature_fn=feature_fn)
        assert ref_rt.bits_per_flow == 16 + 8 + 4 * 7
        ref = ref_rt.process_flows_scalar(replay_flows)
        assert ref
        for batch_size in BATCH_SIZES:
            runtime = TwoStageRuntime(tree, slot_values, n_classes=3,
                                      idx_bits=4, needs_ipd=True,
                                      feature_fn=feature_fn,
                                      batch_size=batch_size)
            assert runtime.process_flows(replay_flows) == ref


class TestVectorFlowState:
    def _layout(self):
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("idx_hist", 4, count=7),
        ])

    def test_columns_preallocated_with_narrow_dtypes(self):
        state = VectorFlowState(self._layout(), capacity=10)
        assert state.columns["prev_ts"].shape == (10, 1)
        assert state.columns["prev_ts"].dtype == np.uint16
        assert state.columns["idx_hist"].shape == (10, 7)
        assert state.columns["idx_hist"].dtype == np.uint8

    def test_fifo_eviction_zeroes_reused_slot(self):
        from repro.net.packet import FlowKey
        state = VectorFlowState(self._layout(), capacity=2)
        k1, k2, k3 = (FlowKey(1, 2, p, 80, 6) for p in (1000, 1001, 1002))
        state.write(k1, "prev_ts", 1234)
        state.acquire(k2)
        slot1 = state.slot_of(k1)
        assert state.acquire(k3) == slot1       # FIFO: k1 was oldest
        assert state.evictions == 1
        assert state.read(k3, "prev_ts") == 0   # reused slot starts zeroed
        assert state.slot_of(k1) is None

    def test_acquire_refuses_blocked_victim(self):
        from repro.net.packet import FlowKey
        state = VectorFlowState(self._layout(), capacity=1)
        k1, k2 = FlowKey(1, 2, 1000, 80, 6), FlowKey(1, 2, 1001, 80, 6)
        slot1 = state.acquire(k1)
        assert state.acquire(k2, blocked={slot1}) is None
        assert state.evictions == 0             # refusal must not mutate
        assert state.slot_of(k1) == slot1
