"""Batched serving layer: schedule, shard, cache, and replay traces at scale.

The dataplane runtimes in :mod:`repro.dataplane.runtime` decide one packet
at a time when driven through ``process_packet``; this package is the
throughput path that drives them in **NumPy batches** across **multiple
pipeline replicas** — serially simulated or genuinely concurrent.

The front door is :class:`PegasusEngine` (:mod:`repro.serving.engine`): one
frozen :class:`EngineConfig` names the runtime kind, lookup backend,
scheduler, cache, admission policy, and topology; the engine builds and
owns the whole stack and the polymorphic ``serve(workload, mode=...)``
entry point returns one merged :class:`ServingReport` (closed loop) or
:class:`OpenLoopReport` (open loop). The pieces it assembles (all still
importable for reference stacks and tests):

- :class:`BatchScheduler` — immutable batch-cutting config: flush when full
  (``batch_size``) or when the oldest buffered packet has waited ``timeout``
  seconds of trace time, mirroring the full-or-timeout batching of inference
  servers and NIC drivers; with ``latency_target`` set, lazily consumed
  :class:`SpanStream` s adapt the batch size AIMD-style to the measured
  per-batch service time.
- :class:`ShardedDispatcher` — hashes each flow's canonical 5-tuple onto
  one of N independent runtime replicas (flow state never spans shards),
  replays every shard serially, and merges decisions back into global trace
  order; parallel wall clock is modeled as ``max(shard_seconds)``.
- :class:`ParallelDispatcher` — the same sharding fanned out to persistent
  ``multiprocessing`` workers, each owning one replica; shard payloads and
  decision streams move through preallocated shared-memory ring buffers
  (:mod:`repro.serving.rings` — only fixed-size chunk descriptors cross
  the worker pipes), and ``wall_seconds`` is *measured* concurrent wall
  clock.
- :class:`FlowDecisionCache` — a per-replica LRU of
  ``(canonical 5-tuple, window index) -> decision`` that short-circuits
  model invocation for already-classified elephant flows whose windows
  repeat, without changing a single decision.
- :class:`TwoLevelDecisionCache` — the exact L1 above plus a shared
  quantized L2 (:class:`QuantizedDecisionStore`) that serves *approximate*
  hits for near-repeating windows, but only when a decision-cell
  certificate proves the cached decision cannot differ (verify-on-hit;
  ``EngineConfig(decision_cache="l1+l2")``).
- :class:`OpenLoopPump` + the admission policies (:class:`NoAdmission`,
  :class:`TailDropAdmission`, :class:`AimdAdmission`) — the open-loop
  front end behind ``serve(mode="open")``: packets arrive on the trace's
  own (scaled) timestamps, flow through a pluggable admission policy into
  a bounded ingress queue, and the report records decision-latency
  percentiles, the queue-depth timeline, and exactly which packets were
  shed (:class:`OpenLoopReport`).

Both dispatchers also take ``lookup_backend="tcam"`` to serve the
hardware-faithful prioritized-TCAM lookup path
(:mod:`repro.dataplane.tcam`) instead of fancy indexing — propagated onto
every factory-built replica, bit-identical decisions either way.

End-to-end example (train → compile → serve)::

    from repro.models import build_model
    from repro.net import make_dataset
    from repro.net.features import dataset_views
    from repro.serving import EngineConfig, PegasusEngine

    ds = make_dataset("peerrush", flows_per_class=60, seed=0)
    train, _val, test = ds.split(rng=0)
    model = build_model("MLP-B", ds.n_classes, seed=0)
    views = dataset_views(train)
    model.train(views)
    model.compile_dataplane(views)

    config = EngineConfig(feature_mode="stats", batch_size=256,
                          timeout=0.050, topology="sharded", n_workers=4)
    with PegasusEngine.from_model(model, config) as engine:
        report = engine.serve(test)            # ServingReport
    decisions = report.decisions               # global trace order

Direct dispatcher/runtime construction still works but is deprecated
(:mod:`repro.serving.compat`); the engine is the supported build path.

Sharded + batched + parallel + cached replay is bit-identical to per-packet
replay (same decisions, same order) whenever register capacity does not
bind — the regression tests in ``tests/test_dataplane_batched.py``,
``tests/test_serving.py``, and ``tests/test_serving_parallel.py`` assert it.
"""

from repro.serving.scheduler import BatchScheduler, FlushStats, SpanStream
from repro.serving.cache import (CacheStats, FlowDecisionCache,
                                 QuantizedDecisionStore,
                                 TwoLevelDecisionCache)
from repro.serving.dispatcher import shard_hash, shard_hash_columns
from repro.serving.engine import (CACHE_MODES, AdmissionPolicySpec,
                                  EngineConfig, PegasusEngine,
                                  ScenarioServingReport, ServingReport,
                                  admission_policies,
                                  register_admission_policy,
                                  register_lookup_backend,
                                  register_runtime_kind, register_topology)
from repro.serving.openloop import (AdmissionPolicy, AimdAdmission,
                                    LatencySummary, NoAdmission,
                                    OpenLoopPhaseReport, OpenLoopPump,
                                    OpenLoopReport, TailDropAdmission)
# The package-level dispatcher names are deprecation shims: direct
# construction still works but warns, pointing at PegasusEngine. The engine
# (and anything else that wants the un-deprecated classes) imports from
# repro.serving.dispatcher / repro.serving.parallel directly.
from repro.serving.compat import ParallelDispatcher, ShardedDispatcher

__all__ = [
    "AdmissionPolicy",
    "AdmissionPolicySpec",
    "AimdAdmission",
    "BatchScheduler",
    "CACHE_MODES",
    "CacheStats",
    "EngineConfig",
    "FlowDecisionCache",
    "FlushStats",
    "LatencySummary",
    "NoAdmission",
    "OpenLoopPhaseReport",
    "OpenLoopPump",
    "OpenLoopReport",
    "ParallelDispatcher",
    "PegasusEngine",
    "QuantizedDecisionStore",
    "ScenarioServingReport",
    "ServingReport",
    "ShardedDispatcher",
    "SpanStream",
    "TailDropAdmission",
    "TwoLevelDecisionCache",
    "admission_policies",
    "register_admission_policy",
    "register_lookup_backend",
    "register_runtime_kind",
    "register_topology",
    "shard_hash",
    "shard_hash_columns",
]
