"""Abstract interpretation over a NumPy dtype lattice, stdlib-only.

The wire-format rules need to answer "what dtype does this expression
have?" without importing NumPy (the CI analysis job runs on a bare
interpreter). This module is a small abstract interpreter over function
bodies: values are tuples like ``("array", "uint64")`` /
``("cols", {...})`` / ``("top",)``, transfer functions model the NumPy
constructors and methods the repo actually uses (``asarray`` / ``astype`` /
``full`` / ``frombuffer`` / ``where`` / ``concatenate`` / views), binary
operations follow NumPy's promotion rules (``int64 x uint64 -> float64``,
``int array x python float -> float64``), and calls resolve through
:mod:`repro.analysis.callgraph` to per-function summaries computed to a
bounded fixpoint.

Two deliberate imprecisions keep the pass useful as a *linter*:

- unknown constructs evaluate to ``TOP`` (never a crash, never a guess),
  and rules only fire on *definite* dtype facts;
- subscripting an unknown value with a declared wire-column name is seeded
  from the schema (``cols["ts"]`` is a float64 array wherever ``cols``
  came from), which is exactly the contract the runtime validators enforce.

:func:`summarize` renders the per-function return summaries as JSON — the
artifact the CI analysis job uploads so dtype-contract drift is visible in
review even before a rule fires.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.callgraph import (CallGraph, FunctionInfo,
                                      build_callgraph, constructor_locals)
from repro.analysis.core import FileContext, dotted_name

TOP = ("top",)
NONE = ("none",)
INT = ("int",)
FLOAT = ("float",)
STR = ("str", None)
OTHER = ("other",)

_DTYPE_NAME_RE = re.compile(r"^(u?int(8|16|32|64)|float(16|32|64)|bool_?"
                            r"|object_?|bytes_?|str_)$")

#: numpy constructors whose result dtype defaults to float64 without an
#: explicit ``dtype=``.
_FLOAT_DEFAULT_CTORS = frozenset({
    "numpy.zeros", "numpy.ones", "numpy.empty", "numpy.frombuffer",
})


def canonical_dtype(name: str) -> str | None:
    """``bool_``/``object_`` -> ``bool``/``object``; None for non-dtypes."""
    if not _DTYPE_NAME_RE.match(name):
        return None
    return name.rstrip("_") if name.endswith("_") else name


def _width(dtype: str) -> int:
    match = re.search(r"(\d+)$", dtype)
    return int(match.group(1)) if match else 64


def promote_dtype(a: str | None, b: str | None) -> str | None:
    """NumPy result dtype of an ``a (op) b`` array pair (None = unknown)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if "object" in (a, b):
        return "object"
    if a == "bool":
        return b
    if b == "bool":
        return a
    fa, fb = a.startswith("float"), b.startswith("float")
    if fa and fb:
        return a if _width(a) >= _width(b) else b
    if fa or fb:
        return "float64"
    ua, ub = a.startswith("uint"), b.startswith("uint")
    if ua == ub:
        return a if _width(a) >= _width(b) else b
    # Mixed signedness: uint64 has no signed superset, NumPy goes float64;
    # narrower unsigned fits in a wide-enough signed int.
    unsigned = a if ua else b
    if _width(unsigned) >= 64:
        return "float64"
    return "int64"


def join(a: tuple, b: tuple) -> tuple:
    """Least upper bound of two abstract values."""
    if a == b:
        return a
    if a[0] == "array" and b[0] == "array":
        return ("array", a[1] if a[1] == b[1] else None)
    if a[0] == "cols" and b[0] == "cols":
        merged = dict(a[1])
        for key, av in b[1].items():
            merged[key] = join(merged[key], av) if key in merged else av
        return ("cols", merged)
    return TOP


def promote(a: tuple, b: tuple, op: ast.AST | None = None) -> tuple:
    """Abstract result of a binary arithmetic/bitwise operation."""
    result = _promote(a, b)
    if isinstance(op, ast.Div):          # true division always floats
        if result[0] == "array" and result[1] is not None \
                and not result[1].startswith("float"):
            result = ("array", "float64")
        elif result == INT:
            result = FLOAT
    return result


def _promote(a: tuple, b: tuple) -> tuple:
    if a[0] == "array" or b[0] == "array":
        arr, other = (a, b) if a[0] == "array" else (b, a)
        if other[0] == "array":
            return ("array", promote_dtype(arr[1], other[1]))
        if other == INT:
            return arr                   # NEP 50: python int keeps dtype
        if other == FLOAT:
            if arr[1] is None:
                return ("array", None)
            if arr[1].startswith("float") or arr[1] == "object":
                return arr
            return ("array", "float64")  # int/bool array x python float
        return TOP
    if a == INT and b == INT:
        return INT
    if {a, b} <= {INT, FLOAT}:
        return FLOAT
    return TOP


class Hooks:
    """Optional listeners a rule attaches to one interpretation pass."""

    def on_dict_item(self, key: str, value_av: tuple, key_node: ast.AST,
                     value_node: ast.AST) -> None:
        pass

    def on_store(self, key: str, value_av: tuple, node: ast.AST) -> None:
        pass

    def on_binop(self, node: ast.BinOp, left_av: tuple, right_av: tuple
                 ) -> None:
        pass

    def on_subscript_load(self, node: ast.Subscript, recv_av: tuple,
                          index_av: tuple) -> None:
        pass


class DtypeFlow:
    """Per-function dtype summaries over a call graph, plus hook replays."""

    def __init__(self, contexts: list[FileContext],
                 schema: dict[str, str] | None = None,
                 graph: CallGraph | None = None):
        self.graph = graph or build_callgraph(contexts)
        self.schema = dict(schema or {})
        self.summaries: dict[str, tuple] = {}

    def compute(self, modules: set[str] | None = None, max_passes: int = 5
                ) -> dict[str, tuple]:
        """Iterate function summaries to a bounded fixpoint."""
        infos = [info for info in self.graph.functions.values()
                 if modules is None or info.module in modules]
        for _ in range(max_passes):
            changed = False
            for info in infos:
                summary = self.analyze(info)
                if self.summaries.get(info.qualname) != summary:
                    self.summaries[info.qualname] = summary
                    changed = True
            if not changed:
                break
        return self.summaries

    def analyze(self, info: FunctionInfo, hooks: Hooks | None = None
                ) -> tuple:
        """One interpretation pass over ``info``; returns the return AV."""
        return _Interp(self, info, hooks or Hooks()).run()

    # -- dtype-expression resolution ---------------------------------------

    def dtype_of_node(self, node: ast.AST | None, ctx: FileContext
                      ) -> str | None:
        """The dtype a ``dtype=`` argument expression denotes, if known."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return canonical_dtype(node.value)
        dotted = dotted_name(node)
        if dotted is not None:
            resolved = ctx.imports.resolve(dotted)
            if resolved.startswith("numpy."):
                return canonical_dtype(resolved.split(".")[-1])
            return None
        if isinstance(node, ast.Call):
            fn = dotted_name(node.func)
            tail = fn.split(".")[-1] if fn else \
                (node.func.attr if isinstance(node.func, ast.Attribute)
                 else None)
            if tail in ("wire_dtype", "decision_dtype", "np_dtype") \
                    and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                return self.schema.get(node.args[0].value)
            if fn and ctx.imports.resolve(fn) == "numpy.dtype" and node.args:
                return self.dtype_of_node(node.args[0], ctx)
        return None


class _Interp:
    """Evaluate one function body; flow-sensitive straight-line, joined
    at branches, loop bodies run twice (cheap widening)."""

    def __init__(self, flow: DtypeFlow, info: FunctionInfo, hooks: Hooks):
        self.flow = flow
        self.info = info
        self.ctx = info.ctx
        self.hooks = hooks
        self.locals_cls = constructor_locals(flow.graph, info)
        self.returns: list[tuple] = []
        self.env: dict[str, tuple] = {}

    def run(self) -> tuple:
        args = self.info.node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            self.env[arg.arg] = TOP
        if self.info.cls and (args.posonlyargs + args.args):
            first = (args.posonlyargs + args.args)[0].arg
            self.env[first] = ("instance", self.info.cls)
        self.exec_block(self.info.node.body)
        if not self.returns:
            return NONE
        result = self.returns[0]
        for av in self.returns[1:]:
            result = join(result, av)
        return result

    # -- statements ---------------------------------------------------------

    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            self.returns.append(self.eval(stmt.value)
                                if stmt.value is not None else NONE)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value), stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                old = self.env.get(stmt.target.id, TOP)
                self.env[stmt.target.id] = promote(old, value, stmt.op)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self.exec_block(stmt.body)
            after_body = self.env
            self.env = before
            self.exec_block(stmt.orelse)
            self.env = _join_envs(after_body, self.env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter)
            self.assign(stmt.target, TOP, None)
            for _ in range(2):           # second pass stabilizes carried vars
                before = dict(self.env)
                self.exec_block(stmt.body)
                self.env = _join_envs(before, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            for _ in range(2):
                before = dict(self.env)
                self.exec_block(stmt.body)
                self.env = _join_envs(before, self.env)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, value, item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            before = dict(self.env)
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                branch = dict(self.env)
                self.env.update(before)
                if handler.name:
                    self.env[handler.name] = TOP
                self.exec_block(handler.body)
                self.env = _join_envs(branch, self.env)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            self.env[stmt.name] = OTHER  # nested defs are opaque
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # pass/break/continue/import/global/assert et al.: no dtype effect

    def assign(self, target: ast.AST | None, value: tuple,
               value_node: ast.AST | None) -> None:
        if target is None:
            return
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements = value[1] if value[0] == "seq" \
                and len(value[1]) == len(target.elts) else None
            for i, elt in enumerate(target.elts):
                self.assign(elt, elements[i] if elements else TOP, None)
        elif isinstance(target, ast.Subscript):
            recv = target.value
            index = target.slice
            if isinstance(index, ast.Constant) \
                    and isinstance(index.value, str):
                self.hooks.on_store(index.value, value,
                                    value_node if value_node is not None
                                    else target)
                if isinstance(recv, ast.Name):
                    recv_av = self.env.get(recv.id, TOP)
                    if recv_av[0] == "cols":
                        members = dict(recv_av[1])
                        members[index.value] = value
                        self.env[recv.id] = ("cols", members)
        # attribute targets (self.x = ...) are opaque

    # -- expressions --------------------------------------------------------

    def eval(self, node: ast.AST | None) -> tuple:
        if node is None:
            return NONE
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is not None:
            return method(node)
        for child in ast.iter_child_nodes(node):
            self.eval(child)
        return TOP

    def _eval_Constant(self, node: ast.Constant) -> tuple:
        value = node.value
        if value is None:
            return NONE
        if isinstance(value, bool):
            return INT
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, str):
            return ("str", value)
        return OTHER

    def _eval_Name(self, node: ast.Name) -> tuple:
        return self.env.get(node.id, TOP)

    def _eval_Attribute(self, node: ast.Attribute) -> tuple:
        self.eval(node.value)
        return TOP

    def _eval_Tuple(self, node: ast.Tuple) -> tuple:
        return ("seq", tuple(self.eval(elt) for elt in node.elts))

    def _eval_List(self, node: ast.List) -> tuple:
        return ("seq", tuple(self.eval(elt) for elt in node.elts))

    def _eval_Dict(self, node: ast.Dict) -> tuple:
        members: dict[str, tuple] = {}
        literal = True
        for key_node, value_node in zip(node.keys, node.values):
            value_av = self.eval(value_node)
            if key_node is not None and isinstance(key_node, ast.Constant) \
                    and isinstance(key_node.value, str):
                members[key_node.value] = value_av
                self.hooks.on_dict_item(key_node.value, value_av,
                                        key_node, value_node)
            else:
                literal = False
                if key_node is not None:
                    self.eval(key_node)
        return ("cols", members) if literal else OTHER

    def _eval_BinOp(self, node: ast.BinOp) -> tuple:
        left = self.eval(node.left)
        right = self.eval(node.right)
        self.hooks.on_binop(node, left, right)
        return promote(left, right, node.op)

    def _eval_UnaryOp(self, node: ast.UnaryOp) -> tuple:
        operand = self.eval(node.operand)
        if isinstance(node.op, ast.Not):
            return INT
        return operand

    def _eval_BoolOp(self, node: ast.BoolOp) -> tuple:
        result = self.eval(node.values[0])
        for value in node.values[1:]:
            result = join(result, self.eval(value))
        return result

    def _eval_Compare(self, node: ast.Compare) -> tuple:
        avs = [self.eval(node.left)] + \
            [self.eval(cmp) for cmp in node.comparators]
        if any(av[0] == "array" for av in avs):
            return ("array", "bool")
        return INT

    def _eval_IfExp(self, node: ast.IfExp) -> tuple:
        self.eval(node.test)
        return join(self.eval(node.body), self.eval(node.orelse))

    def _eval_JoinedStr(self, node: ast.JoinedStr) -> tuple:
        for value in node.values:
            self.eval(value)
        return STR

    def _eval_Subscript(self, node: ast.Subscript) -> tuple:
        recv = self.eval(node.value)
        index = self.eval(node.slice)
        if isinstance(node.ctx, ast.Load):
            self.hooks.on_subscript_load(node, recv, index)
        if recv[0] == "cols":
            if index[0] == "str" and index[1] is not None:
                if index[1] in recv[1]:
                    return recv[1][index[1]]
                if index[1] in self.flow.schema:
                    return ("array", self.flow.schema[index[1]])
            return TOP
        if recv[0] == "array":
            if isinstance(node.slice, (ast.Slice, ast.Tuple)) \
                    or index in (INT,) or index[0] in ("array", "top",
                                                       "seq", "other"):
                return recv
            return recv
        if recv[0] == "seq":
            if isinstance(node.slice, ast.Constant) \
                    and isinstance(node.slice.value, int) \
                    and -len(recv[1]) <= node.slice.value < len(recv[1]):
                return recv[1][node.slice.value]
            result = TOP
            for av in recv[1]:
                result = av if result is TOP and av == recv[1][0] else \
                    join(result, av)
            return result if recv[1] else TOP
        if recv == TOP and index[0] == "str" and index[1] is not None \
                and index[1] in self.flow.schema:
            return ("array", self.flow.schema[index[1]])
        return TOP

    def _eval_Call(self, node: ast.Call) -> tuple:
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value)
        # Array/dict method calls on an evaluated receiver.
        if isinstance(node.func, ast.Attribute):
            result = self._method_call(node)
            if result is not None:
                return result
        dotted = dotted_name(node.func)
        resolved = self.ctx.imports.resolve(dotted) if dotted else None
        arg_avs = [self.eval(arg) for arg in node.args
                   if not isinstance(arg, ast.Starred)]
        kw_avs = {kw.arg: self.eval(kw.value) for kw in node.keywords
                  if kw.arg is not None}
        if resolved is not None:
            if resolved.startswith("numpy."):
                return self._numpy_call(node, resolved, arg_avs, kw_avs)
            tail = resolved.split(".")[-1]
            if tail in ("wire_dtype", "decision_dtype", "np_dtype"):
                return OTHER             # a dtype object, not an array
            builtin = _BUILTINS.get(resolved)
            if builtin is not None:
                return builtin
            cls = self.flow.graph.resolve_class(self.ctx, dotted)
            if cls is not None:
                return ("instance", cls)
        target = self.flow.graph.resolve_call(self.info, node,
                                              self.locals_cls)
        if target is not None:
            return self.flow.summaries.get(target, TOP)
        # Method call on an instance-typed receiver expression.
        if isinstance(node.func, ast.Attribute):
            recv_av = self.eval(node.func.value)
            if recv_av[0] == "instance":
                method = self.flow.graph.lookup_method(recv_av[1],
                                                       node.func.attr)
                if method is not None:
                    return self.flow.summaries.get(method, TOP)
        return TOP

    def _method_call(self, node: ast.Call) -> tuple | None:
        """Known ndarray / dict method semantics; None = not handled here."""
        attr = node.func.attr
        if attr == "astype":
            recv = self.eval(node.func.value)
            dtype = self.flow.dtype_of_node(
                node.args[0] if node.args else _kwarg(node, "dtype"),
                self.ctx)
            for arg in node.args[1:]:
                self.eval(arg)
            return ("array", dtype)
        if attr == "view":
            recv = self.eval(node.func.value)
            dtype = self.flow.dtype_of_node(
                node.args[0] if node.args else _kwarg(node, "dtype"),
                self.ctx)
            return ("array", dtype if dtype is not None
                    else (recv[1] if recv[0] == "array" else None))
        if attr in ("copy", "reshape", "ravel", "flatten", "transpose",
                    "squeeze", "clip", "round", "cumsum", "sum", "min",
                    "max"):
            recv = self.eval(node.func.value)
            for arg in node.args:
                self.eval(arg)
            if recv[0] in ("array", "cols"):
                return recv
            return None
        if attr in ("tolist", "tobytes", "item"):
            self.eval(node.func.value)
            return OTHER
        if attr == "mean":
            self.eval(node.func.value)
            return ("array", "float64")
        if attr == "get":
            recv = self.eval(node.func.value)
            if recv[0] == "cols" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                default = self.eval(node.args[1]) \
                    if len(node.args) > 1 else NONE
                member = recv[1].get(node.args[0].value)
                return member if member is not None else default
            return None
        if attr == "update":
            recv_node = node.func.value
            recv = self.eval(recv_node)
            update_av = self.eval(node.args[0]) if node.args else OTHER
            if recv[0] == "cols" and isinstance(recv_node, ast.Name):
                members = dict(recv[1])
                if update_av[0] == "cols":
                    for key, av in update_av[1].items():
                        members[key] = av
                        self.hooks.on_store(key, av, node)
                # unknown update: keep known members (optimistic — this is
                # a linter; pessimizing to TOP would hide real facts)
                self.env[recv_node.id] = ("cols", members)
            return NONE
        return None

    def _numpy_call(self, node: ast.Call, resolved: str, arg_avs: list,
                    kw_avs: dict) -> tuple:
        dtype = self.flow.dtype_of_node(_kwarg(node, "dtype"), self.ctx)
        tail = resolved[len("numpy."):]
        scalar = canonical_dtype(tail)
        if scalar is not None:
            return ("array", scalar)     # np.uint64(x): 0-d, promotes alike
        if tail in ("asarray", "array", "ascontiguousarray", "copy"):
            if dtype is not None:
                return ("array", dtype)
            src = arg_avs[0] if arg_avs else TOP
            if src[0] == "array":
                return src
            return ("array", None)
        if resolved in _FLOAT_DEFAULT_CTORS:
            return ("array", dtype if dtype is not None else "float64")
        if tail == "full":
            if dtype is not None:
                return ("array", dtype)
            fill = arg_avs[1] if len(arg_avs) > 1 else kw_avs.get(
                "fill_value", TOP)
            if fill == INT:
                return ("array", "int64")
            if fill == FLOAT:
                return ("array", "float64")
            if fill[0] == "array":
                return ("array", fill[1])
            return ("array", None)
        if tail in ("zeros_like", "ones_like", "empty_like", "full_like"):
            if dtype is not None:
                return ("array", dtype)
            src = arg_avs[0] if arg_avs else TOP
            return src if src[0] == "array" else ("array", None)
        if tail == "arange":
            if dtype is not None:
                return ("array", dtype)
            if arg_avs and all(av == INT for av in arg_avs):
                return ("array", "int64")
            return ("array", None)
        if tail == "where":
            if len(arg_avs) == 3:
                return promote(arg_avs[1], arg_avs[2])
            return ("array", None)
        if tail in ("concatenate", "hstack", "vstack", "stack"):
            parts = arg_avs[0] if arg_avs else TOP
            if parts[0] == "seq" and parts[1]:
                result = parts[1][0]
                for av in parts[1][1:]:
                    result = promote(result, av)
                return result if result[0] == "array" else ("array", None)
            return ("array", None)
        if tail in ("argsort", "flatnonzero", "searchsorted"):
            return ("array", "int64")
        if tail in ("sort", "unique", "repeat", "tile", "abs", "minimum",
                    "maximum", "clip"):
            if tail in ("minimum", "maximum") and len(arg_avs) == 2:
                return promote(arg_avs[0], arg_avs[1])
            src = arg_avs[0] if arg_avs else TOP
            return src if src[0] == "array" else ("array", None)
        if tail == "nonzero":
            return ("seq", (("array", "int64"),))
        if tail == "dtype":
            return OTHER
        return TOP


_BUILTINS = {
    "int": INT, "float": FLOAT, "len": INT, "bool": INT, "abs": TOP,
    "str": STR, "range": OTHER, "list": OTHER, "dict": OTHER,
    "tuple": OTHER, "set": OTHER, "zip": OTHER, "enumerate": OTHER,
    "sorted": OTHER, "print": NONE, "isinstance": INT, "hasattr": INT,
}


def _kwarg(node: ast.Call, name: str) -> ast.AST | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _join_envs(a: dict[str, tuple], b: dict[str, tuple]) -> dict[str, tuple]:
    out: dict[str, tuple] = {}
    for name in set(a) | set(b):
        if name in a and name in b:
            out[name] = join(a[name], b[name])
        else:
            out[name] = TOP
    return out


def render_av(av: tuple) -> str:
    """Human/JSON rendering of an abstract value."""
    kind = av[0]
    if kind == "array":
        return f"array[{av[1] or '?'}]"
    if kind == "cols":
        inner = ", ".join(f"{k}: {render_av(v)}"
                          for k, v in sorted(av[1].items()))
        return f"columns{{{inner}}}"
    if kind == "instance":
        return f"instance[{av[1]}]"
    if kind == "str":
        return "str"
    if kind == "seq":
        return f"seq[{len(av[1])}]"
    return kind


def summarize(flow: DtypeFlow, modules: set[str] | None = None) -> dict:
    """JSON-able per-function return summaries (the CI artifact)."""
    flow.compute(modules=modules)
    functions = {
        qual: {"module": flow.graph.functions[qual].module,
               "returns": render_av(av)}
        for qual, av in sorted(flow.summaries.items())
    }
    return {"n_functions": len(functions), "functions": functions}
