"""Exception hierarchy for the Pegasus reproduction.

All library-specific errors derive from :class:`PegasusError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class PegasusError(Exception):
    """Base class for every error raised by this library."""


class ConfigError(PegasusError, ValueError):
    """A configuration field holds a value the library cannot serve.

    Raised by every configuration surface — :class:`repro.serving.EngineConfig`,
    the batch scheduler, the dispatchers, the lookup-backend check — so callers
    can catch one typed error at the API boundary. Also a :class:`ValueError`
    subclass, because these were historically bare ``ValueError`` s.

    ``field`` names the offending knob, ``value`` is what was passed, and
    ``allowed`` (a sequence of choices or a descriptive string like ``">= 1"``)
    says what would have been accepted.
    """

    def __init__(self, field: str, value, allowed=None, reason: str | None = None):
        self.field = field
        self.value = value
        self.allowed = allowed
        self.reason = reason
        msg = f"invalid {field}={value!r}"
        if reason:
            msg += f": {reason}"
        if allowed is not None:
            shown = allowed if isinstance(allowed, str) else tuple(allowed)
            msg += f" (allowed: {shown})"
        super().__init__(msg)

    def __reduce__(self):
        # Exception.__reduce__ would replay __init__ with args=(msg,), which
        # does not match this signature — rebuild from the real fields so the
        # error survives pickling across worker process boundaries.
        return (type(self), (self.field, self.value, self.allowed,
                             self.reason))


class ShapeError(PegasusError):
    """An array or vector had an incompatible shape."""


class QuantizationError(PegasusError):
    """A value could not be represented in the requested fixed-point format."""


class CompilationError(PegasusError):
    """The compiler could not lower a model to dataplane primitives."""


class ResourceExceededError(PegasusError):
    """A compiled program does not fit the target's hardware budget."""

    def __init__(self, resource: str, used: float, budget: float):
        self.resource = resource
        self.used = used
        self.budget = budget
        super().__init__(
            f"{resource} budget exceeded: used {used:g}, budget {budget:g}"
        )


class PipelineError(PegasusError):
    """The dataplane pipeline was configured or driven incorrectly."""


class TraceFormatError(PegasusError):
    """A serialized trace file is malformed."""


class SchemaError(PegasusError, TypeError):
    """A columnar payload violated the declared wire-format schema.

    Raised (debug-gated) by :meth:`repro.dataplane.schema.ColumnSchema.
    validate_columns` wherever arrays cross the IPC hot path: a missing or
    undeclared column, a non-ndarray value, or a dtype/rank that drifted
    from the declaration. ``schema``/``column``/``reason`` pinpoint the
    violation; ``context`` names the seam (e.g. ``"worker 2 reply"``).
    """

    def __init__(self, schema: str, column: str, reason: str,
                 context: str = ""):
        self.schema = schema
        self.column = column
        self.reason = reason
        self.context = context
        msg = f"wire schema '{schema}': column '{column}' {reason}"
        if context:
            msg += f" [{context}]"
        super().__init__(msg)

    def __reduce__(self):
        # Same pickling hazard as ConfigError: rebuild from the real fields
        # so the error survives worker process boundaries.
        return (type(self), (self.schema, self.column, self.reason,
                             self.context))


class TrainingError(PegasusError):
    """Model training failed or was mis-configured."""
