"""Batched serving layer: schedule, shard, and replay traces at scale.

The dataplane runtimes in :mod:`repro.dataplane.runtime` decide one packet
at a time when driven through ``process_packet``; this package is the
throughput path that drives them in **NumPy batches** across **multiple
pipeline replicas**:

- :class:`BatchScheduler` — cuts a time-ordered trace into batches, flushed
  when full (``batch_size``) or when the oldest buffered packet has waited
  ``timeout`` seconds of trace time, mirroring the full-or-timeout batching
  of inference servers and NIC drivers.
- :class:`ShardedDispatcher` — hashes each flow's canonical 5-tuple onto
  one of N independent runtime replicas (flow state never spans shards),
  replays every shard, and merges decisions back into global trace order.

End-to-end example (train → compile → serve)::

    from repro.dataplane import WindowedClassifierRuntime
    from repro.models import build_model
    from repro.net import make_dataset
    from repro.net.features import dataset_views
    from repro.serving import BatchScheduler, ShardedDispatcher

    ds = make_dataset("peerrush", flows_per_class=60, seed=0)
    train, _val, test = ds.split(rng=0)
    model = build_model("MLP-B", ds.n_classes, seed=0)
    views = dataset_views(train)
    model.train(views)
    model.compile_dataplane(views)

    dispatcher = ShardedDispatcher(
        runtime_factory=lambda: WindowedClassifierRuntime(
            model.compiled, feature_mode="stats", batch_size=256),
        n_shards=4,
        scheduler=BatchScheduler(batch_size=256, timeout=0.050))
    decisions = dispatcher.serve_flows(test)   # global trace order

Sharded + batched replay is bit-identical to per-packet replay (same
decisions, same order) whenever register capacity does not bind — the
regression tests in ``tests/test_dataplane_batched.py`` and
``tests/test_serving.py`` assert it.
"""

from repro.serving.scheduler import BatchScheduler, FlushStats
from repro.serving.dispatcher import ShardedDispatcher, shard_hash

__all__ = [
    "BatchScheduler",
    "FlushStats",
    "ShardedDispatcher",
    "shard_hash",
]
