"""Deterministic random-number-generator helpers.

Every stochastic component in the library takes an explicit
``numpy.random.Generator`` (or an integer seed) so experiments are exactly
reproducible. These helpers centralize seed handling.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0x9E6A5


def new_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``Generator`` from a seed, an existing generator, or a default.

    Passing an existing generator returns it unchanged, which lets call chains
    share one RNG stream without re-seeding.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` semantics so each child stream is statistically
    independent of the others regardless of how many draws each consumes.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
