"""TCAM-vs-index lookup throughput: what hardware-faithful emulation costs.

``lookup_backend="tcam"`` answers every fuzzy segment table through the
vectorized prioritized-TCAM engine — the packed (value, mask, priority)
entries the switch would actually hold — instead of walking the clustering
tree. This bench measures both backends at the model level (``forward_int``
rows/sec on one large batch) and end to end (serving pps on the Figure-8
mix through a ``PegasusEngine`` with ``lookup_backend`` as the one switched
knob), asserts the decision streams are bit-identical, and records the
numbers in the ``tcam`` section of ``BENCH_serving.json`` so the trajectory
artifact tracks the fidelity path's cost alongside the fast path's wins.
"""

from repro.eval.reporting import render_table, update_bench_json
from repro.eval.runner import run_tcam_throughput


def _run(scale):
    return run_tcam_throughput(flows_per_class=scale["flows_per_class"],
                               seed=scale["seed"])


def test_tcam_lookup_throughput(benchmark, bench_scale):
    res = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = [[backend, res["model_rows_per_s"][backend],
             res["serving_pps"][backend], res["decisions"]]
            for backend in ("index", "tcam", "tcam-pruned")]
    print()
    print(render_table(
        ["backend", "model_rows/s", "serving_pps", "decisions"], rows,
        title=f"TCAM vs index lookups — {res['n_packets']} packets, "
              f"{res['tcam_tables']} fuzzy tables / "
              f"{res['tcam_entries_total']} TCAM entries, "
              f"tcam slowdown {res['serving_slowdown_tcam']:.2f}x, "
              f"pruned {res['serving_slowdown_tcam_pruned']:.2f}x"))

    update_bench_json("tcam", {
        "n_packets": res["n_packets"],
        "tcam_entries_total": res["tcam_entries_total"],
        "model_rows_per_s": res["model_rows_per_s"],
        "serving_pps": res["serving_pps"],
        "serving_slowdown_tcam": res["serving_slowdown_tcam"],
        "serving_slowdown_tcam_pruned": res["serving_slowdown_tcam_pruned"],
        "matches_index": res["matches_index"],
    })

    # Fidelity is the point: the emulated TCAM may be slower, never different.
    assert res["matches_index"]
    assert res["decisions"] > 0
    # The pruned kernel is the fast hardware-faithful path: candidate-subset
    # matching must close the serving gap to within 10% of the index path.
    assert res["serving_slowdown_tcam_pruned"] <= 1.1
