"""The Pegasus compiler: trained model -> fused, quantized lookup pipeline.

Ties the stages together: lower (operators -> primitives), fuse (§4.3),
materialize (§4.2 + §4.4 quantization), refine (§4.4 backpropagation). The
three fusion levels correspond to the paper's designs:

- ``"none"``   — one table round per DL operator (ablation baseline).
- ``"basic"``  — Basic Primitive Fusion: linear reordering + map merging.
- ``"advanced"`` is not a flag here: Advanced Fusion ❸ changes the model
  architecture, so additive models compile through
  :func:`compile_additive` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import CompilationError
from repro import nn
from repro.core.fusion import additive_program, fuse_basic, remove_nonlinear
from repro.core.mapping import CompiledModel, MaterializeConfig, materialize
from repro.core.finetune import refine_values_least_squares
from repro.core.operators import lower_sequential
from repro.core.primitives import PrimitiveProgram


@dataclass
class CompilerConfig:
    """End-to-end compilation options."""

    input_segment_dim: int = 2
    hidden_segment_dim: int | None = None
    fusion: str = "basic"              # "none" | "basic" | "linearized"
    fuzzy_leaves: int = 16
    act_bits: int = 8
    input_bits: int = 8
    input_frac_bits: int = 0
    refine: bool = True                # least-squares centroid refinement
    materialize_cfg: MaterializeConfig = field(default=None)  # derived if None

    def resolved_materialize_cfg(self) -> MaterializeConfig:
        if self.materialize_cfg is not None:
            return self.materialize_cfg
        return MaterializeConfig(fuzzy_leaves=self.fuzzy_leaves, act_bits=self.act_bits)


@dataclass
class CompilationResult:
    """Everything the rest of the system needs about a compiled model."""

    compiled: CompiledModel
    program: PrimitiveProgram          # fused program (for inspection/codegen)
    initial_lookup_rounds: int         # before fusion
    fused_lookup_rounds: int           # after fusion

    @property
    def lookups_saved(self) -> int:
        return self.initial_lookup_rounds - self.fused_lookup_rounds


class PegasusCompiler:
    """Compile dense Sequential models or additive (NAM-style) models."""

    def __init__(self, config: CompilerConfig | None = None):
        self.config = config or CompilerConfig()

    def compile_sequential(self, model: nn.Sequential, calib_int: np.ndarray,
                           name: str = "pegasus") -> CompilationResult:
        """Compile a dense BN/Linear/activation Sequential."""
        cfg = self.config
        model.eval_mode()
        calib_int = np.asarray(calib_int, dtype=np.int64)
        program = lower_sequential(
            model, input_dim=calib_int.shape[1],
            input_segment_dim=cfg.input_segment_dim,
            hidden_segment_dim=cfg.hidden_segment_dim)
        initial_rounds = program.num_map_steps

        if cfg.fusion == "basic":
            program = fuse_basic(program)
        elif cfg.fusion == "linearized":
            program = fuse_basic(remove_nonlinear(program))
        elif cfg.fusion != "none":
            raise CompilationError(f"unknown fusion level {cfg.fusion!r}")

        compiled = materialize(
            program, calib_int, cfg.resolved_materialize_cfg(),
            input_bits=cfg.input_bits, input_frac_bits=cfg.input_frac_bits,
            name=name)
        if cfg.refine:
            self._refine(compiled, program, calib_int)
        return CompilationResult(
            compiled=compiled, program=program,
            initial_lookup_rounds=initial_rounds,
            fused_lookup_rounds=program.num_map_steps)

    def compile_additive(self, partition: list[tuple[int, int]],
                         segment_fns: list[Callable[[np.ndarray], np.ndarray]],
                         out_dim: int, calib_int: np.ndarray,
                         name: str = "pegasus-additive") -> CompilationResult:
        """Compile a Neural-Additive model (Advanced Primitive Fusion ❸).

        Each ``segment_fns[i]`` maps its raw input segment straight to a
        contribution to the output; the whole model is a single lookup round.
        """
        cfg = self.config
        calib_int = np.asarray(calib_int, dtype=np.int64)
        input_dim = calib_int.shape[1]
        program = additive_program(input_dim, partition, segment_fns, out_dim)
        compiled = materialize(
            program, calib_int, cfg.resolved_materialize_cfg(),
            input_bits=cfg.input_bits, input_frac_bits=cfg.input_frac_bits,
            name=name)
        if cfg.refine:
            self._refine(compiled, program, calib_int)
        return CompilationResult(
            compiled=compiled, program=program,
            initial_lookup_rounds=program.num_map_steps,
            fused_lookup_rounds=program.num_map_steps)

    def _refine(self, compiled: CompiledModel, program: PrimitiveProgram,
                calib_int: np.ndarray) -> None:
        """Least-squares centroid refinement of the final sum-reduce layer.

        The final layer dominates decision quality; with assignments fixed
        its optimal values have a closed form (see finetune module).
        """
        final = compiled.layers[-1]
        if not final.sum_reduce:
            return
        # Target: the full-precision program output on calibration data.
        targets = program.evaluate(calib_int.astype(np.float64))
        # Input to the final layer in the integer domain:
        x = calib_int
        for layer in compiled.layers[:-1]:
            x = layer.forward_int(x)
        refine_values_least_squares(final, x, targets)
