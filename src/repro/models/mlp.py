"""MLP-B: the basic MLP on statistical features (paper §6.3).

Three hidden blocks of [BatchNorm, FC, ReLU] over the 16 x 8-bit statistical
feature vector (128-bit input scale), compiled with Basic Primitive Fusion:
the whole network becomes 4 lookup rounds and, after fusion, the first
round's segment tables absorb BN while the post-SumReduce nonlinear tail
fuses into whole-vector fuzzy maps.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import PegasusCompiler, CompilerConfig
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.models.base import TrafficModel
from repro.net.features import N_STAT_FEATURES, SEQ_WINDOW


class MLPB(TrafficModel):
    name = "MLP-B"
    feature_view = "stats"

    def __init__(self, n_classes: int, seed: int = 0, hidden: int = 16,
                 epochs: int = 60):
        super().__init__(n_classes, seed)
        self.hidden = hidden
        self.epochs = epochs
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=8)
        d = N_STAT_FEATURES
        h = hidden
        self.net = nn.Sequential(
            nn.BatchNorm1d(d),
            nn.Linear(d, h, rng=int(rngs[0])),
            nn.ReLU(),
            nn.BatchNorm1d(h),
            nn.Linear(h, h, rng=int(rngs[1])),
            nn.ReLU(),
            nn.BatchNorm1d(h),
            nn.Linear(h, h, rng=int(rngs[2])),
            nn.ReLU(),
            nn.Linear(h, n_classes, rng=int(rngs[3])),
        )
        self.result = None

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = self.view(views, "stats").astype(np.float64)
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.01),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, self.view(views, "stats").astype(np.float64))

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        self._require_trained()
        calib = self.view(views, "stats").astype(np.int64)
        compiler = PegasusCompiler(CompilerConfig(
            input_segment_dim=2, fuzzy_leaves=256, refine=True))
        self.result = compiler.compile_sequential(self.net, calib, name="mlp-b")
        self.compiled = self.result.compiled

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        return self.compiled.predict(self.view(views, "stats").astype(np.int64))

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def input_scale_bits(self) -> int:
        return N_STAT_FEATURES * 8

    def flow_layout(self) -> FlowStateLayout:
        # Same per-flow budget as Leo/N3IC in the paper: running stats plus
        # the current window's token history for packet-level features.
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("max_len", 8), RegisterField("min_len", 8),
            RegisterField("max_ipd", 8), RegisterField("min_ipd", 8),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=max(SEQ_WINDOW - 6, 0)),
            RegisterField("ipd_hist", 8, count=1),
        ])  # 80 bits/flow, matching the paper's Table 6 row
