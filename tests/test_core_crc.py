"""Tests for range-to-ternary conversion and Consecutive Range Coding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.crc import (
    TernaryMatch,
    range_to_prefixes,
    consecutive_range_coding,
    lookup_prioritized,
    naive_partition_entries,
)


class TestTernaryMatch:
    def test_exact(self):
        m = TernaryMatch(value=5, mask=0xFF, width=8)
        assert m.matches(5)
        assert not m.matches(4)

    def test_wildcard(self):
        m = TernaryMatch(value=0, mask=0, width=8)
        assert all(m.matches(v) for v in range(256))

    def test_str(self):
        m = TernaryMatch(value=0b100, mask=0b110, width=3)
        assert str(m) == "10*"


class TestRangeToPrefixes:
    def test_full_range_is_one_entry(self):
        prefixes = range_to_prefixes(0, 255, 8)
        assert len(prefixes) == 1
        assert prefixes[0].mask == 0

    def test_single_value(self):
        prefixes = range_to_prefixes(7, 7, 8)
        assert len(prefixes) == 1
        assert prefixes[0].matches(7)
        assert not prefixes[0].matches(6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            range_to_prefixes(5, 3, 8)
        with pytest.raises(ValueError):
            range_to_prefixes(0, 256, 8)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_cover_is_exact(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(lo, hi, 8)
        for v in range(256):
            covered = any(p.matches(v) for p in prefixes)
            assert covered == (lo <= v <= hi)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_prefixes_disjoint(self, a, b):
        lo, hi = min(a, b), max(a, b)
        prefixes = range_to_prefixes(lo, hi, 8)
        for v in range(lo, hi + 1):
            assert sum(p.matches(v) for p in prefixes) == 1

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_count_bounded(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert len(range_to_prefixes(lo, hi, 16)) <= 2 * 16 - 2 or lo == 0


class TestConsecutiveRangeCoding:
    def test_single_boundary(self):
        entries = consecutive_range_coding([9], 8)
        assert lookup_prioritized(entries, 0) == 0
        assert lookup_prioritized(entries, 9) == 0
        assert lookup_prioritized(entries, 10) == 1
        assert lookup_prioritized(entries, 255) == 1

    @given(st.sets(st.integers(0, 254), min_size=1, max_size=8))
    def test_partition_semantics(self, bounds):
        boundaries = sorted(bounds)
        entries = consecutive_range_coding(boundaries, 8)
        for key in list(range(0, 256, 7)) + boundaries + [b + 1 for b in boundaries]:
            if key > 255:
                continue
            want = next((i for i, b in enumerate(boundaries) if key <= b), len(boundaries))
            assert lookup_prioritized(entries, key) == want

    def test_unsorted_raises(self):
        with pytest.raises(ValueError):
            consecutive_range_coding([5, 5], 8)
        with pytest.raises(ValueError):
            consecutive_range_coding([9, 3], 8)

    def test_out_of_space_raises(self):
        with pytest.raises(ValueError):
            consecutive_range_coding([300], 8)

    @given(st.sets(st.integers(0, 254), min_size=2, max_size=10))
    def test_crc_count_bounded(self, bounds):
        boundaries = sorted(bounds)
        crc_count = len(consecutive_range_coding(boundaries, 8))
        # Each [0, b] prefix cover needs at most `width` entries.
        assert crc_count <= len(boundaries) * 8 + 1

    def test_crc_beats_naive_on_awkward_ranges(self):
        # Learned thresholds rarely align to powers of two; independent
        # expansion of each region then pays on both sides of every boundary.
        boundaries = [100, 200]
        assert len(consecutive_range_coding(boundaries, 8)) < \
            naive_partition_entries(boundaries, 8)
