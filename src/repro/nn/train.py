"""Minibatch training loop used by every model and baseline."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.errors import TrainingError
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.utils.rng import new_rng


def iterate_minibatches(
    x: np.ndarray,
    y: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | int | None = None,
    shuffle: bool = True,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(x_batch, y_batch)`` pairs covering the dataset once."""
    if len(x) != len(y):
        raise TrainingError(f"x and y lengths differ: {len(x)} vs {len(y)}")
    order = np.arange(len(x))
    if shuffle:
        new_rng(rng).shuffle(order)
    for start in range(0, len(x), batch_size):
        sel = order[start:start + batch_size]
        yield x[sel], y[sel]


def fit(
    model: Module,
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: Callable[[np.ndarray, np.ndarray], tuple[float, np.ndarray]],
    optimizer: Optimizer,
    epochs: int = 10,
    batch_size: int = 64,
    rng: np.random.Generator | int | None = None,
    verbose: bool = False,
) -> list[float]:
    """Train ``model`` in place; return the per-epoch mean loss curve."""
    rng = new_rng(rng)
    model.train_mode(True)
    history: list[float] = []
    for epoch in range(epochs):
        losses = []
        for xb, yb in iterate_minibatches(x, y, batch_size, rng=rng):
            optimizer.zero_grad()
            out = model.forward(xb)
            loss, grad = loss_fn(out, yb)
            model.backward(grad)
            optimizer.step()
            losses.append(loss)
        epoch_loss = float(np.mean(losses))
        history.append(epoch_loss)
        if verbose:
            print(f"epoch {epoch + 1}/{epochs}: loss={epoch_loss:.4f}")
    model.train_mode(False)
    return history


def predict_classes(model: Module, x: np.ndarray, batch_size: int = 512) -> np.ndarray:
    """Argmax class predictions in eval mode, batched to bound memory."""
    model.eval_mode()
    outputs = []
    for start in range(0, len(x), batch_size):
        logits = model.forward(x[start:start + batch_size])
        outputs.append(np.argmax(logits, axis=-1))
    return np.concatenate(outputs) if outputs else np.array([], dtype=np.int64)
