"""Core layers: the DL operators listed in the paper's Table 4.

Fully connected (MatMul + bias), 1-D convolution, batch normalization,
activations (ReLU, tanh, sigmoid, softmax), pooling, and embedding lookup.
Shapes follow the PyTorch convention: dense inputs are ``(N, F)``,
convolutional inputs ``(N, C, L)``, embedding inputs integer ``(N, T)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


def _kaiming(rng: np.random.Generator, fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / max(fan_in, 1)), size=shape)


class Linear(Module):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            _kaiming(rng, in_features, (in_features, out_features)),
            "linear.weight")
        self.bias = Parameter(np.zeros(out_features), "linear.bias") if bias else None
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.shape[-1] != self.in_features:
            raise ShapeError(f"Linear expected {self.in_features} features, got {x.shape[-1]}")
        self._x = x
        y = x @ self.weight.data
        if self.bias is not None:
            y = y + self.bias.data
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x = self._x
        flat_x = x.reshape(-1, self.in_features)
        flat_g = grad_out.reshape(-1, self.out_features)
        self.weight.grad += flat_x.T @ flat_g
        if self.bias is not None:
            self.bias.grad += flat_g.sum(axis=0)
        return grad_out @ self.weight.data.T


class Conv1d(Module):
    """1-D convolution over ``(N, C_in, L)`` inputs, implemented with im2col."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0,
                 rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = new_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size
        self.weight = Parameter(
            _kaiming(rng, fan_in, (out_channels, in_channels, kernel_size)), "conv.weight")
        self.bias = Parameter(np.zeros(out_channels), "conv.bias")
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        n, c, length = x.shape
        out_l = self.output_length(length)
        if out_l <= 0:
            raise ShapeError(
                f"Conv1d kernel {self.kernel_size} does not fit input of length {length}")
        if self.padding:
            x = np.pad(x, ((0, 0), (0, 0), (self.padding, self.padding)))
        idx = (np.arange(out_l)[:, None] * self.stride + np.arange(self.kernel_size)[None, :])
        cols = x[:, :, idx]                      # (N, C, out_l, K)
        cols = cols.transpose(0, 2, 1, 3)        # (N, out_l, C, K)
        return cols.reshape(n, out_l, c * self.kernel_size)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[1] != self.in_channels:
            raise ShapeError(f"Conv1d expected (N, {self.in_channels}, L), got {x.shape}")
        self._x_shape = x.shape
        cols = self._im2col(x)                   # (N, out_l, C*K)
        self._cols = cols
        w = self.weight.data.reshape(self.out_channels, -1)  # (O, C*K)
        y = cols @ w.T + self.bias.data          # (N, out_l, O)
        return y.transpose(0, 2, 1)              # (N, O, out_l)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, _, length = self._x_shape
        out_l = self.output_length(length)
        g = grad_out.transpose(0, 2, 1).reshape(-1, self.out_channels)  # (N*out_l, O)
        cols = self._cols.reshape(-1, self.in_channels * self.kernel_size)
        self.weight.grad += (g.T @ cols).reshape(self.weight.data.shape)
        self.bias.grad += g.sum(axis=0)
        w = self.weight.data.reshape(self.out_channels, -1)
        grad_cols = (g @ w).reshape(n, out_l, self.in_channels, self.kernel_size)
        padded = np.zeros((n, self.in_channels, length + 2 * self.padding))
        for k in range(self.kernel_size):
            positions = np.arange(out_l) * self.stride + k
            np.add.at(padded, (slice(None), slice(None), positions),
                      grad_cols[:, :, :, k].transpose(0, 2, 1))
        if self.padding:
            return padded[:, :, self.padding:-self.padding]
        return padded


class BatchNorm1d(Module):
    """Batch normalization over ``(N, F)`` or ``(N, C, L)`` inputs.

    At inference this is the element-wise linear transform
    ``gamma * (x - mu) / sigma + beta`` the paper folds into Map primitives.
    """

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), "bn.gamma")
        self.beta = Parameter(np.zeros(num_features), "bn.beta")
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache = None

    def _moments_axes(self, x: np.ndarray) -> tuple[int, ...]:
        if x.ndim == 2:
            return (0,)
        if x.ndim == 3:
            return (0, 2)
        raise ShapeError(f"BatchNorm1d expected 2-D or 3-D input, got {x.ndim}-D")

    def _expand(self, v: np.ndarray, ndim: int) -> np.ndarray:
        return v[None, :, None] if ndim == 3 else v[None, :]

    def forward(self, x: np.ndarray) -> np.ndarray:
        axes = self._moments_axes(x)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._expand(mean, x.ndim)) * self._expand(inv_std, x.ndim)
        self._cache = (x_hat, inv_std, axes, x.ndim)
        return self._expand(self.gamma.data, x.ndim) * x_hat + self._expand(self.beta.data, x.ndim)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat, inv_std, axes, ndim = self._cache
        m = np.prod([grad_out.shape[a] for a in axes])
        self.gamma.grad += (grad_out * x_hat).sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        g = grad_out * self._expand(self.gamma.data, ndim)
        if self.training:
            gs = g.sum(axis=axes, keepdims=True)
            gxs = (g * x_hat).sum(axis=axes, keepdims=True)
            return self._expand(inv_std, ndim) * (g - gs / m - x_hat * gxs / m)
        return g * self._expand(inv_std, ndim)

    def inference_scale_shift(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (scale, shift) so that inference BN is ``scale * x + shift``."""
        inv_std = 1.0 / np.sqrt(self.running_var + self.eps)
        scale = self.gamma.data * inv_std
        shift = self.beta.data - self.gamma.data * self.running_mean * inv_std
        return scale, shift


class ReLU(Module):
    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._mask


class Tanh(Module):
    def __init__(self):
        super().__init__()
        self._y = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (1.0 - self._y ** 2)


class Sigmoid(Module):
    def __init__(self):
        super().__init__()
        self._y = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = 1.0 / (1.0 + np.exp(-x))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._y * (1.0 - self._y)


class Softmax(Module):
    """Softmax over the last axis (numerically stabilized)."""

    def __init__(self):
        super().__init__()
        self._y = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        shifted = x - x.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        self._y = e / e.sum(axis=-1, keepdims=True)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        y = self._y
        dot = (grad_out * y).sum(axis=-1, keepdims=True)
        return y * (grad_out - dot)


class MaxPool1d(Module):
    """Max pooling over ``(N, C, L)``; L must be divisible by ``kernel_size``."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, length = x.shape
        k = self.kernel_size
        if length % k:
            trim = length - length % k
            x = x[:, :, :trim]
            length = trim
        windows = x.reshape(n, c, length // k, k)
        arg = windows.argmax(axis=-1)
        self._cache = (x.shape, arg)
        return windows.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        shape, arg = self._cache
        n, c, length = shape
        k = self.kernel_size
        grad = np.zeros((n, c, length // k, k))
        idx_n, idx_c, idx_w = np.indices(arg.shape)
        grad[idx_n, idx_c, idx_w, arg] = grad_out
        return grad.reshape(n, c, length)


class AvgPool1d(Module):
    """Average pooling over ``(N, C, L)``."""

    def __init__(self, kernel_size: int):
        super().__init__()
        self.kernel_size = kernel_size
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, length = x.shape
        k = self.kernel_size
        if length % k:
            x = x[:, :, :length - length % k]
        self._shape = x.shape
        return x.reshape(n, c, -1, k).mean(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        n, c, length = self._shape
        k = self.kernel_size
        grad = np.repeat(grad_out[..., None], k, axis=-1) / k
        return grad.reshape(n, c, length)


class GlobalMaxPool1d(Module):
    """Max over the length axis: ``(N, C, L) -> (N, C)`` (textcnn head)."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        arg = x.argmax(axis=-1)
        self._cache = (x.shape, arg)
        return x.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        shape, arg = self._cache
        grad = np.zeros(shape)
        idx_n, idx_c = np.indices(arg.shape)
        grad[idx_n, idx_c, arg] = grad_out
        return grad


class Embedding(Module):
    """Embedding lookup: integer ``(N, T)`` -> ``(N, T, D)``."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = new_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.normal(0, 0.5, (num_embeddings, embedding_dim)), "emb.weight")
        self._idx = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        idx = np.asarray(x, dtype=np.int64)
        if idx.min() < 0 or idx.max() >= self.num_embeddings:
            raise ShapeError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"[{idx.min()}, {idx.max()}]")
        self._idx = idx
        return self.weight.data[idx]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        np.add.at(self.weight.grad, self._idx.ravel(),
                  grad_out.reshape(-1, self.embedding_dim))
        return np.zeros(self._idx.shape)  # indices carry no gradient


class Flatten(Module):
    """Flatten all axes after the batch axis."""

    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._shape)


class Transpose12(Module):
    """Swap axes 1 and 2, e.g. ``(N, T, D) -> (N, D, T)`` before a Conv1d."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.transpose(0, 2, 1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.transpose(0, 2, 1)
