"""Sharded multi-pipeline dispatch: serve one trace across N replicas.

One software pipeline replica is single-threaded NumPy; to scale a heavy
trace the dispatcher hashes each flow's canonical 5-tuple onto one of
``n_shards`` runtime replicas (so all packets of a flow — and therefore all
its register state — live on exactly one replica), replays each shard's
packet subsequence through the batched runtime, and merges the per-shard
decision streams back into global trace order via the decisions' ``seq``
field.

Because flows never span shards, sharded decisions are bit-identical to an
unsharded replay whenever per-replica register capacity does not bind
(asserted by the serving tests); under capacity pressure each replica runs
its own FIFO eviction, so eviction points — like on a real multi-pipe
switch — may differ from a single giant table.

Usage::

    from repro.serving import BatchScheduler, ShardedDispatcher

    dispatcher = ShardedDispatcher(
        runtime_factory=lambda: WindowedClassifierRuntime(
            compiled, feature_mode="stats", batch_size=256),
        n_shards=4,
        scheduler=BatchScheduler(batch_size=256, timeout=0.050))
    decisions = dispatcher.serve_flows(test_flows)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.dataplane.runtime import flows_to_trace
from repro.dataplane.schema import WIRE_COLUMNS, validation_enabled, wire_dtype
from repro.errors import ConfigError
from repro.net.packet import FlowKey
from repro.net.traces import KEY_COLUMN_NAMES, Trace
from repro.serving.cache import CacheStats
from repro.serving.scheduler import BatchScheduler, FlushStats

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_FNV_MASK = 0xFFFFFFFFFFFFFFFF

_KEY_FIELD_WIDTHS = (("src_ip", 4), ("dst_ip", 4),
                     ("src_port", 2), ("dst_port", 2), ("proto", 1))


def shard_hash(key: FlowKey) -> int:
    """Deterministic FNV-1a over the 5-tuple bytes (stable across runs)."""
    h = _FNV_OFFSET
    for value, width in ((key.src_ip, 4), (key.dst_ip, 4),
                         (key.src_port, 2), (key.dst_port, 2), (key.proto, 1)):
        for shift in range(0, 8 * width, 8):
            h ^= (value >> shift) & 0xFF
            h = (h * _FNV_PRIME) & _FNV_MASK
    return h


# reprolint: zone=zero-copy
def shard_hash_columns(cols: dict[str, np.ndarray]) -> np.ndarray:
    """Vectorized :func:`shard_hash` over whole key columns (uint64).

    Bit-identical to the scalar form for every key — the per-byte FNV-1a
    rounds run on uint64 arrays with the same wraparound arithmetic — so a
    columnar dispatcher pins each flow to exactly the shard the scalar
    dispatcher would. The int64 key columns of the wire schema are
    *reinterpreted* as uint64 views (key fields are nonnegative and
    < 2**32, so the bits are identical) — no per-field copy on the
    per-serve hot path.
    """
    n = len(cols["src_ip"])
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    prime = np.uint64(_FNV_PRIME)
    for name, width in _KEY_FIELD_WIDTHS:
        raw = np.asarray(cols[name])
        value = (raw.view(np.uint64) if raw.dtype == np.int64
                 else raw.astype(np.uint64, copy=False))
        for shift in range(0, 8 * width, 8):
            h = h ^ ((value >> np.uint64(shift)) & np.uint64(0xFF))
            h = h * prime
    return h


@dataclass
class ShardedDispatcher:
    """Fan a trace out over ``n_shards`` independent runtime replicas.

    ``runtime_factory`` builds one fresh replica (a
    :class:`~repro.dataplane.runtime.WindowedClassifierRuntime` or
    :class:`~repro.dataplane.runtime.TwoStageRuntime`); each replica owns
    its own flow-state registers. ``scheduler`` (optional) supplies
    flush-on-full-or-timeout batch spans per shard; without it each replica
    uses its own fixed ``batch_size``.

    Replicas are replayed serially here (single-threaded simulator), but
    ``shard_seconds`` records each replica's replay time from the last
    serve call — the modeled parallel wall clock is ``max(shard_seconds)``;
    :class:`repro.serving.ParallelDispatcher` runs the same sharding on
    real concurrent workers and *measures* that wall clock instead.
    ``flush_stats`` aggregates per-shard span-stream flush counts over the
    last serve (the scheduler itself is immutable configuration, so sharing
    one across shards — or dispatchers — is safe). ``lookup_backend``
    (``"index"`` | ``"tcam"``), when set, is propagated onto every
    factory-built replica via ``set_lookup_backend`` — the one dispatcher
    knob that switches the whole fleet between fancy-index and emulated-TCAM
    model lookups (bit-identical decisions either way).
    """

    runtime_factory: Callable[[], Any]
    n_shards: int = 1
    scheduler: BatchScheduler | None = None
    lookup_backend: str | None = None
    runtimes: list[Any] = field(init=False)
    shard_seconds: list[float] = field(init=False, default_factory=list)
    flush_stats: FlushStats = field(init=False, default_factory=FlushStats)

    def __post_init__(self):
        if self.n_shards < 1:
            raise ConfigError("n_shards", self.n_shards, allowed=">= 1")
        self.runtimes = [self.runtime_factory() for _ in range(self.n_shards)]
        if self.lookup_backend is not None:
            for runtime in self.runtimes:
                runtime.set_lookup_backend(self.lookup_backend)

    def shard_of(self, key: FlowKey) -> int:
        """The replica index serving this flow."""
        return shard_hash(key.canonical()) % self.n_shards

    def serve_flows(self, flows: list) -> list:
        """Replay the interleaved trace of many labelled flows, sharded."""
        trace, keys, labels = flows_to_trace(flows)
        return self.serve_trace(trace, labels=labels, keys=keys)

    def serve_trace(self, trace: Trace, labels: np.ndarray | None = None,
                    keys: list | None = None) -> list:
        """Shard, replay, and merge one trace; decisions in global order."""
        n = len(trace.packets)
        if keys is None:
            keys = trace.canonical_keys()
        if labels is None:
            labels = np.full(n, -1, dtype=wire_dtype("labels"))
        else:
            labels = np.asarray(labels, dtype=wire_dtype("labels"))
        key_arr = np.asarray(keys,
                             dtype=wire_dtype("src_ip")).reshape(-1, 5)
        key_cols = {name: key_arr[:, i]
                    for i, name in enumerate(KEY_COLUMN_NAMES)}
        ts_all = np.asarray([p.ts for p in trace.packets],
                            dtype=wire_dtype("ts"))
        if validation_enabled():
            WIRE_COLUMNS.validate_columns(
                {"ts": ts_all, "labels": labels, **key_cols},
                require=("ts", *KEY_COLUMN_NAMES),
                context="ShardedDispatcher shard split")
        shard_ids = (shard_hash_columns(key_cols)
                     % np.uint64(self.n_shards)).astype(np.int64)

        decisions: list = []
        self.shard_seconds = []
        self.flush_stats = FlushStats()
        for s, runtime in enumerate(self.runtimes):
            member = np.nonzero(shard_ids == s)[0]
            if len(member) == 0:
                self.shard_seconds.append(0.0)
                continue
            sub_trace = Trace([trace.packets[i] for i in member])
            sub_keys = [keys[i] for i in member]
            stream = (self.scheduler.iter_spans(ts_all[member])
                      if self.scheduler is not None else None)
            start = time.perf_counter()
            shard_decisions = runtime.process_trace(
                sub_trace, labels=labels[member], spans=stream, keys=sub_keys)
            self.shard_seconds.append(time.perf_counter() - start)
            if stream is not None:
                self.flush_stats.merge(stream.stats)
            for d in shard_decisions:
                d.seq = int(member[d.seq])   # shard-local -> global position
            decisions.extend(shard_decisions)
        decisions.sort(key=lambda d: d.seq)
        return decisions

    @property
    def cache_stats(self) -> CacheStats:
        """Aggregate decision-cache counters over all replicas (lifetime)."""
        total = CacheStats()
        for runtime in self.runtimes:
            cache = getattr(runtime, "decision_cache", None)
            if cache is not None:
                total.merge(cache.stats)
        return total
