"""End-to-end packet runtimes: per-flow state + compiled-model inference.

Two runtimes cover the paper's deployment shapes:

- :class:`WindowedClassifierRuntime` — RNN-B / CNN-B / CNN-M / MLP-B style:
  the switch stores each flow's recent (length, IPD) buckets in registers;
  once a full window is present every packet is classified from the window's
  feature view.
- :class:`TwoStageRuntime` — CNN-L style: a per-packet extractor maps the
  packet's raw bytes to a small *fuzzy index*; only indexes (4–8 bits each)
  are stored per flow, and a second stage classifies from the window of
  indexes (+ optional IPD buckets). This is the paper's "Flow Scalability"
  design that gets CNN-L to 28–72 stateful bits per flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fuzzy import FuzzyTree
from repro.core.mapping import CompiledModel
from repro.net.features import length_bucket, ipd_bucket, stats_from_buckets
from repro.net.flow import Flow
from repro.net.packet import Packet
from repro.net.traces import Trace
from repro.dataplane.registers import FlowStateTable, FlowStateLayout, RegisterField

TS_UNIT_SECONDS = 64e-6     # 16-bit timestamp register in 64 us units
TS_MASK = 0xFFFF


def _ts_units(ts: float) -> int:
    return int(ts / TS_UNIT_SECONDS) & TS_MASK


def _ipd_bucket_from_units(cur_units: int, prev_units: int) -> int:
    delta_units = (cur_units - prev_units) & TS_MASK
    return ipd_bucket(delta_units * TS_UNIT_SECONDS)


@dataclass
class PacketDecision:
    """One per-packet classification the switch emitted."""

    flow_label: int
    predicted: int
    ts: float


@dataclass
class WindowedClassifierRuntime:
    """Classify every packet once its flow has a full token window."""

    model: CompiledModel
    feature_mode: str = "seq"          # "seq" (interleaved tokens) | "stats"
    window: int = 8
    capacity: int = 1_000_000
    state: FlowStateTable = field(init=False)

    def __post_init__(self):
        if self.feature_mode not in ("seq", "stats"):
            raise ValueError(f"unknown feature mode {self.feature_mode!r}")
        hist = self.window - 1
        layout = FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=hist),
            RegisterField("ipd_hist", 8, count=hist),
        ])
        self.state = FlowStateTable(layout, capacity=self.capacity)

    @property
    def bits_per_flow(self) -> int:
        return self.state.layout.bits_per_flow

    def _features(self, lens: list[int], ipds: list[int]) -> np.ndarray:
        if self.feature_mode == "stats":
            return stats_from_buckets(lens, ipds).astype(np.int64)
        tokens = np.empty(2 * self.window, dtype=np.int64)
        tokens[0::2] = lens
        tokens[1::2] = ipds
        return tokens

    def process_packet(self, packet: Packet, flow_label: int) -> PacketDecision | None:
        """Feed one packet; returns a decision when a window is available."""
        key = packet.key.canonical()
        record = self.state.get(key)
        count = record["count"][0]
        cur_units = _ts_units(packet.ts)
        len_b = length_bucket(packet.length)
        ipd_b = _ipd_bucket_from_units(cur_units, record["prev_ts"][0]) if count else 0

        decision = None
        if count >= self.window - 1:
            lens = list(record["len_hist"]) + [len_b]
            ipds = list(record["ipd_hist"]) + [ipd_b]
            x = self._features(lens, ipds)[None, :]
            pred = int(self.model.predict(x)[0])
            decision = PacketDecision(flow_label=flow_label, predicted=pred, ts=packet.ts)

        self.state.shift_in(key, "len_hist", len_b)
        self.state.shift_in(key, "ipd_hist", ipd_b)
        self.state.write(key, "prev_ts", cur_units)
        self.state.write(key, "count", min(count + 1, 255))
        return decision

    def process_flows(self, flows: list[Flow]) -> list[PacketDecision]:
        """Replay the interleaved trace of many labelled flows."""
        label_by_key = {f.key.canonical(): f.label for f in flows}
        trace = Trace.from_flows(flows)
        decisions = []
        for packet in trace.packets:
            d = self.process_packet(packet, label_by_key[packet.key.canonical()])
            if d is not None:
                decisions.append(d)
        return decisions


@dataclass
class TwoStageRuntime:
    """Per-packet fuzzy extraction + windowed index classification (CNN-L).

    ``extractor_tree`` (optionally behind a refined ``feature_fn``) maps
    each packet to a fuzzy index of ``idx_bits`` bits; only indexes — plus a
    16-bit previous timestamp when the feature uses IPD — are stored per
    flow. ``slot_values[s]`` is the (n_leaves, n_classes) int table the
    packet in window slot ``s`` contributes; logits are the SumReduce of all
    slot contributions, as in Advanced Primitive Fusion. This is the
    paper's "Flow Scalability" design that gets CNN-L to 28-72 stateful
    bits per flow.
    """

    extractor_tree: FuzzyTree
    slot_values: list[np.ndarray]
    n_classes: int
    idx_bits: int = 4
    raw_bytes: int = 60
    window: int = 8
    capacity: int = 1_000_000
    needs_ipd: bool = False
    # Optional refined-feature stage applied to the raw bytes (and the IPD
    # bucket, when needs_ipd) before the fuzzy tree — the paper's NN feature
    # extraction, itself realized as per-segment tables on the switch.
    feature_fn: object = None
    state: FlowStateTable = field(init=False)

    def __post_init__(self):
        if len(self.slot_values) != self.window:
            raise ValueError("one slot value table per window slot required")
        fields = [RegisterField("count", 8),
                  RegisterField("idx_hist", self.idx_bits, count=self.window - 1)]
        if self.needs_ipd:
            fields.insert(0, RegisterField("prev_ts", 16))
        self.state = FlowStateTable(FlowStateLayout(fields=fields),
                                    capacity=self.capacity)

    @property
    def bits_per_flow(self) -> int:
        return self.state.layout.bits_per_flow

    def _extract_index(self, packet: Packet, ipd_bucket: int | None) -> int:
        vec = np.zeros(self.raw_bytes, dtype=np.float64)
        take = min(packet.payload_len, self.raw_bytes)
        vec[:take] = packet.payload[:take]
        if self.feature_fn is not None:
            vec = np.asarray(self.feature_fn(vec[None, :], ipd_bucket))[0]
        idx = int(self.extractor_tree.predict_index(vec))
        return min(idx, (1 << self.idx_bits) - 1)

    def process_packet(self, packet: Packet, flow_label: int) -> PacketDecision | None:
        key = packet.key.canonical()
        record = self.state.get(key)
        count = record["count"][0]
        ipd_b = None
        if self.needs_ipd:
            cur_units = _ts_units(packet.ts)
            ipd_b = (_ipd_bucket_from_units(cur_units, record["prev_ts"][0])
                     if count else 0)
        idx = self._extract_index(packet, ipd_b)

        decision = None
        if count >= self.window - 1:
            indexes = list(record["idx_hist"]) + [idx]
            logits = np.zeros(self.n_classes, dtype=np.int64)
            for slot, slot_idx in enumerate(indexes):
                logits += self.slot_values[slot][slot_idx]
            decision = PacketDecision(flow_label=flow_label,
                                      predicted=int(np.argmax(logits)), ts=packet.ts)

        self.state.shift_in(key, "idx_hist", idx)
        if self.needs_ipd:
            self.state.write(key, "prev_ts", cur_units)
        self.state.write(key, "count", min(count + 1, 255))
        return decision

    def process_flows(self, flows: list[Flow]) -> list[PacketDecision]:
        label_by_key = {f.key.canonical(): f.label for f in flows}
        trace = Trace.from_flows(flows)
        decisions = []
        for packet in trace.packets:
            d = self.process_packet(packet, label_by_key[packet.key.canonical()])
            if d is not None:
                decisions.append(d)
        return decisions
