"""The repo-specific invariant rules (see also threads.py / drift.py).

Each rule encodes a contract the dynamic test wall already assumes:

- ``rng-discipline`` — all randomness flows through explicit, seeded
  ``numpy.random.Generator`` streams (``repro.utils.rng.spawn_rngs`` /
  ``new_rng``); global-state RNG calls make replay order-dependent.
- ``no-wallclock-in-dataplane`` — decision paths (``repro.dataplane``,
  ``repro.core``, ``repro.net.scenarios``) must be pure functions of the
  trace; wall-clock reads belong to serving telemetry.
- ``pickle-safe-registrations`` — engine registries and dispatcher
  factories cross process boundaries under the spawn start method, so
  lambdas / nested defs handed to them fail at the worst possible time.
- ``no-deprecated-internal-callers`` — in-repo code composes the
  un-deprecated internals; only external users go through the shims.
- ``mutable-default-args`` / ``bare-except`` — the two generic Python
  defect classes that have bitten decision-path code before review.
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, dotted_name

# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

#: numpy.random attributes that are explicit-stream constructors, not
#: global-state conveniences.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "RandomState",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})


class RngDisciplineRule(Rule):
    name = "rng-discipline"
    description = ("randomness must flow through explicit seeded Generators "
                   "(repro.utils.rng.spawn_rngs / new_rng); no global-state "
                   "random.* / np.random.* calls, no unseeded default_rng() "
                   "outside tests")
    example = ("src/repro/net/scenarios.py:42: [rng-discipline] "
               "np.random.poisson() uses hidden global RNG state; thread a "
               "seeded Generator through instead")

    def visitors(self):
        return {"Call": self.check_call}

    def check_call(self, ctx: FileContext, node: ast.Call) -> None:
        target = ctx.resolve_call(node)
        if target is None:
            return
        if target.startswith("random."):
            ctx.report(node, self.name,
                       f"global-state stdlib RNG call '{target}'; draw from "
                       f"an explicit np.random.Generator (see "
                       f"repro.utils.rng.spawn_rngs) so replay order cannot "
                       f"change results")
            return
        if target.startswith("numpy.random."):
            attr = target.split(".")[2]
            if attr == "default_rng":
                if not node.args and not node.keywords and not ctx.is_test:
                    ctx.report(node, self.name,
                               "default_rng() without an explicit seed is "
                               "OS-entropy seeded; pass a seed or a "
                               "spawn_rngs child so runs reproduce")
            elif attr not in _NP_RANDOM_OK:
                ctx.report(node, self.name,
                           f"np.random global-state call '{target}'; use an "
                           f"explicit Generator (spawn_rngs / new_rng) "
                           f"instead of the shared legacy state")


# ---------------------------------------------------------------------------
# no-wallclock-in-dataplane
# ---------------------------------------------------------------------------

_WALLCLOCK_BANNED_PREFIXES = ("repro.dataplane", "repro.core",
                              "repro.net.scenarios")
_WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "time.process_time_ns", "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
})


class WallclockRule(Rule):
    name = "no-wallclock-in-dataplane"
    description = ("decision paths (repro.dataplane / repro.core / "
                   "repro.net.scenarios) must be pure functions of the "
                   "trace; wall-clock reads live in repro.serving telemetry "
                   "(openloop / scheduler / dispatchers)")
    example = ("src/repro/dataplane/runtime.py:118: "
               "[no-wallclock-in-dataplane] time.time() read inside a "
               "decision path; derive timing from the trace ts column")

    def visitors(self):
        return {"Call": self.check_call}

    def check_call(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.module is None or \
                not ctx.module.startswith(_WALLCLOCK_BANNED_PREFIXES):
            return
        target = ctx.resolve_call(node)
        if target in _WALLCLOCK_CALLS:
            ctx.report(node, self.name,
                       f"wall-clock read '{target}' in decision-path module "
                       f"{ctx.module}; decisions must depend only on trace "
                       f"timestamps — move measurement to repro.serving "
                       f"telemetry or suppress with a documented exemption")


# ---------------------------------------------------------------------------
# pickle-safe-registrations
# ---------------------------------------------------------------------------

_REGISTER_FNS = frozenset({
    "register_runtime_kind", "register_lookup_backend", "register_topology",
    "register_admission_policy", "register_scenario",
})
_FACTORY_KWARGS = frozenset({"runtime_factory", "replica_factory"})


class PickleSafeRegistrationsRule(Rule):
    name = "pickle-safe-registrations"
    description = ("engine registry entries and dispatcher factories must be "
                   "module-level (picklable) callables — the spawn topology "
                   "ships them to worker processes; lambdas and nested defs "
                   "break there")
    example = ("src/repro/serving/engine.py:212: "
               "[pickle-safe-registrations] lambda registered as a "
               "dispatcher factory cannot cross the spawn boundary; use a "
               "module-level def")

    def begin_file(self, ctx: FileContext) -> None:
        # Names defined at module level vs. nested inside a function; a
        # name seen both ways counts as module-level (conservative).
        module_defs: set[str] = set()
        nested_defs: set[str] = set()

        def scan(node: ast.AST, depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    (module_defs if depth == 0 else nested_defs).add(
                        child.name)
                    # Class bodies at module level stay "module level" for
                    # methods' own nested defs? No: anything under a def is
                    # nested; anything under a module-level class is still
                    # importable only via the class, so treat class bodies
                    # as opaque (skip descending for def-kind tracking).
                    if isinstance(child, ast.ClassDef):
                        continue
                    scan(child, depth + 1)
                else:
                    scan(child, depth)

        scan(ctx.tree, 0)
        self._nested_only = nested_defs - module_defs

    def visitors(self):
        return {"Call": self.check_call}

    def _flag_value(self, ctx: FileContext, value: ast.AST, where: str
                    ) -> None:
        if isinstance(value, ast.Lambda):
            ctx.report(value, self.name,
                       f"lambda passed to {where}: lambdas do not pickle, so "
                       f"this entry breaks under the spawn start method — "
                       f"define a module-level function/class instead")
        elif isinstance(value, ast.Name) and value.id in self._nested_only:
            ctx.report(value, self.name,
                       f"locally-defined callable '{value.id}' passed to "
                       f"{where}: nested defs do not pickle, so this entry "
                       f"breaks under the spawn start method — hoist it to "
                       f"module level")

    def check_call(self, ctx: FileContext, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        fn = dotted.split(".")[-1] if dotted else None
        if fn in _REGISTER_FNS:
            for arg in node.args[1:]:       # args[0] is the registry name
                self._flag_value(ctx, arg, f"{fn}()")
            for kw in node.keywords:
                if kw.arg not in (None, "name", "overwrite"):
                    self._flag_value(ctx, kw.value, f"{fn}()")
        for kw in node.keywords:
            if kw.arg in _FACTORY_KWARGS:
                self._flag_value(ctx, kw.value,
                                 f"a dispatcher '{kw.arg}=' factory")


# ---------------------------------------------------------------------------
# no-deprecated-internal-callers
# ---------------------------------------------------------------------------

_COMPAT_MODULES = ("repro.serving.compat", "repro.dataplane.compat")
_DEPRECATED_IMPORTS = {
    "repro": {"ShardedDispatcher", "ParallelDispatcher",
              "WindowedClassifierRuntime", "TwoStageRuntime"},
    "repro.serving": {"ShardedDispatcher", "ParallelDispatcher"},
    "repro.dataplane": {"WindowedClassifierRuntime", "TwoStageRuntime"},
}
_DEPRECATED_SERVE = frozenset({"serve_flows", "serve_trace", "serve_columns",
                               "serve_scenario"})


class NoDeprecatedInternalCallersRule(Rule):
    name = "no-deprecated-internal-callers"
    description = ("in-repo code must compose the un-deprecated internals "
                   "(repro.serving.dispatcher / .parallel, "
                   "repro.dataplane.runtime, PegasusEngine.serve); the "
                   "compat shims and serve_* methods exist for external "
                   "callers only")
    example = ("src/repro/eval/runner.py:77: "
               "[no-deprecated-internal-callers] call to deprecated "
               "serve_trace_batched(); compose PegasusEngine.serve instead")

    def begin_file(self, ctx: FileContext) -> None:
        self._engine_vars: set[str] = set()

    def visitors(self):
        return {"Import": self.check_import,
                "ImportFrom": self.check_import_from,
                "Assign": self.track_assign,
                "withitem": self.track_withitem,
                "Call": self.check_call}

    def _in_compat(self, ctx: FileContext) -> bool:
        return ctx.module in _COMPAT_MODULES

    def check_import(self, ctx: FileContext, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in _COMPAT_MODULES and not self._in_compat(ctx):
                ctx.report(node, self.name,
                           f"import of deprecation shim module "
                           f"'{alias.name}'; internal code wires the real "
                           f"classes (the shims only exist to warn external "
                           f"callers)")

    def check_import_from(self, ctx: FileContext, node: ast.ImportFrom
                          ) -> None:
        if node.module in _COMPAT_MODULES and not self._in_compat(ctx) \
                and not ctx.is_init:
            ctx.report(node, self.name,
                       f"import from deprecation shim module "
                       f"'{node.module}'; internal code wires the real "
                       f"classes directly")
            return
        deprecated = _DEPRECATED_IMPORTS.get(node.module or "")
        if not deprecated or ctx.is_init:
            return
        hits = sorted({a.name for a in node.names} & deprecated)
        if hits:
            ctx.report(node, self.name,
                       f"package-level name(s) {hits} imported from "
                       f"'{node.module}' are DeprecationWarning shims; "
                       f"import from repro.serving.dispatcher / .parallel / "
                       f"repro.dataplane.runtime (or use PegasusEngine)")

    def _is_engine_ctor(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        dotted = dotted_name(node.func)
        if not dotted:
            return self._is_engine_ctor(getattr(node.func, "value", None)) \
                if isinstance(node.func, ast.Attribute) else False
        parts = dotted.split(".")
        if "PegasusEngine" in parts:
            return True
        # Chained builder: PegasusEngine.from_model(...).something
        return False

    def track_assign(self, ctx: FileContext, node: ast.Assign) -> None:
        if self._is_engine_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._engine_vars.add(target.id)

    def track_withitem(self, ctx: FileContext, node: ast.withitem) -> None:
        if self._is_engine_ctor(node.context_expr) \
                and isinstance(node.optional_vars, ast.Name):
            self._engine_vars.add(node.optional_vars.id)

    def check_call(self, ctx: FileContext, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) \
                or func.attr not in _DEPRECATED_SERVE:
            return
        recv = func.value
        engineish = (isinstance(recv, ast.Name)
                     and recv.id in self._engine_vars) \
            or self._is_engine_ctor(recv)
        if engineish:
            ctx.report(node, self.name,
                       f"deprecated engine entry point '.{func.attr}()'; "
                       f"in-repo callers use the polymorphic "
                       f"PegasusEngine.serve(workload, ...) directly")


# ---------------------------------------------------------------------------
# mutable-default-args / bare-except
# ---------------------------------------------------------------------------

_MUTABLE_CTORS = frozenset({"list", "dict", "set", "bytearray", "deque",
                            "defaultdict", "Counter", "OrderedDict"})


class MutableDefaultArgsRule(Rule):
    name = "mutable-default-args"
    description = ("mutable default argument values are shared across calls "
                   "— per-replica state leaking through one is exactly the "
                   "cross-flow contamination the differential wall hunts")
    example = ("src/repro/core/cache.py:31: [mutable-default-args] default "
               "value [] is shared across calls; default to None and "
               "allocate inside")

    def visitors(self):
        return {"FunctionDef": self.check_def,
                "AsyncFunctionDef": self.check_def,
                "Lambda": self.check_def}

    def check_def(self, ctx: FileContext, node) -> None:
        args = node.args
        for default in list(args.defaults) + \
                [d for d in args.kw_defaults if d is not None]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                ctx.report(default, self.name,
                           "mutable default argument value; default to None "
                           "and construct inside the function")
            elif isinstance(default, ast.Call):
                dotted = dotted_name(default.func)
                if dotted and dotted.split(".")[-1] in _MUTABLE_CTORS:
                    ctx.report(default, self.name,
                               f"mutable default argument "
                               f"'{dotted}(...)'; default to None and "
                               f"construct inside the function")


class BareExceptRule(Rule):
    name = "bare-except"
    description = ("'except:' swallows SystemExit/KeyboardInterrupt and every "
                   "invariant violation with them; name the exceptions (or "
                   "'except Exception' with a re-raise path)")
    example = ("scripts/check_bench_regression.py:58: [bare-except] bare "
               "'except:' clause; catch named exception types so invariant "
               "violations cannot vanish silently")

    def visitors(self):
        return {"ExceptHandler": self.check_handler}

    def check_handler(self, ctx: FileContext, node: ast.ExceptHandler) -> None:
        if node.type is None:
            ctx.report(node, self.name,
                       "bare 'except:' clause; catch named exception types "
                       "so invariant violations cannot vanish silently")


def default_rules() -> list[Rule]:
    """One fresh instance of every shipped rule (order = report order)."""
    from repro.analysis.drift import RegistryConfigDriftRule
    from repro.analysis.threads import ThreadSharedStateRule
    from repro.analysis.wire import (ColumnarSchemaRule, DtypePromotionRule,
                                     HiddenCopyRule)
    return [
        RngDisciplineRule(),
        WallclockRule(),
        PickleSafeRegistrationsRule(),
        ThreadSharedStateRule(),
        NoDeprecatedInternalCallersRule(),
        RegistryConfigDriftRule(),
        MutableDefaultArgsRule(),
        BareExceptRule(),
        ColumnarSchemaRule(),
        HiddenCopyRule(),
        DtypePromotionRule(),
    ]
