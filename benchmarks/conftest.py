"""Shared benchmark configuration.

Every bench regenerates one table or figure of the paper. They are heavy
(each trains several models), so each runs exactly once per session via
``benchmark.pedantic(rounds=1)`` and prints its rendered table — the rows a
reader compares against the paper.
"""

import pytest

# Dataset scale for the benches: large enough for stable orderings, small
# enough that the whole suite finishes in minutes.
FLOWS_PER_CLASS = 120
SEED = 0


@pytest.fixture(scope="session")
def bench_scale():
    return {"flows_per_class": FLOWS_PER_CLASS, "seed": SEED}
