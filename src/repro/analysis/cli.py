"""CLI: ``python -m repro.analysis [paths ...]`` — the local invariant gate.

Exit status is the contract: 0 when the tree is clean, 1 when any finding
survives suppression, 2 on usage errors. Human output is one
``path:line: [rule] message`` per finding (clickable in editors/CI logs);
``--json`` / ``--json-out`` emit the machine-readable form the CI job
uploads as an artifact on failure.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro.analysis.core import analyze_paths
from repro.analysis.rules import default_rules
from repro.analysis.style import check_style

DEFAULT_PATHS = ("src", "scripts", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter for the Pegasus repro: "
                    "determinism, pickle-safety, and concurrency contracts "
                    "enforced at the line that would break them.")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to lint "
                             "(default: src scripts benchmarks)")
    parser.add_argument("--style", action="store_true",
                        help="also run the local style gate (line length + "
                             "compile smoke) — the full local CI "
                             "approximation in one command")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule names to run "
                             "(default: all)")
    parser.add_argument("--json", action="store_true",
                        help="print findings as JSON instead of text")
    parser.add_argument("--json-out", metavar="FILE",
                        help="additionally write the JSON report to FILE "
                             "(CI uploads this as the failure artifact)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print every rule name + description and exit")
    parser.add_argument("--explain", metavar="RULE",
                        help="print one rule's full description and an "
                             "example finding, then exit")
    parser.add_argument("--dtype-summary-out", metavar="FILE",
                        help="additionally write the interprocedural "
                             "dtype-flow summary (per-function abstract "
                             "return values over the wire modules) to FILE")
    return parser


def _selected_rules(select: str | None):
    rules = default_rules()
    if select is None:
        return rules
    wanted = {name.strip() for name in select.split(",") if name.strip()}
    known = {rule.name for rule in rules}
    unknown = sorted(wanted - known)
    if unknown:
        raise SystemExit(
            f"unknown rule(s) {unknown}; known: {sorted(known)}")
    return [rule for rule in rules if rule.name in wanted]


def _explain(rule_name: str) -> int:
    for rule in default_rules():
        if rule.name == rule_name:
            print(rule.name)
            print(f"  {rule.description}")
            if rule.example:
                print(f"  example: {rule.example}")
            return 0
    raise SystemExit(f"unknown rule '{rule_name}'; see --list-rules")


def _write_dtype_summary(paths: list[str], out: str) -> None:
    """The dtype-flow summary artifact CI uploads (stdlib-only, parse-only)."""
    from repro.analysis.core import FileContext, iter_python_files
    from repro.analysis.dtypeflow import summarize
    from repro.analysis.wire import WIRE_MODULES, dataflow_for

    contexts = []
    for path, display in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
        except (OSError, UnicodeDecodeError, SyntaxError):
            continue
        contexts.append(FileContext(path, display, source, tree))
    df = dataflow_for(contexts)
    report = summarize(df.flow, modules=WIRE_MODULES)
    report["schema_origin"] = df.schema_origin
    report["schema_columns"] = df.schema or {}
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.name:32s} {rule.description}")
        print(f"{'unused-suppression':32s} a 'reprolint: disable=' comment "
              f"that silenced nothing")
        if args.style:
            print(f"{'line-too-long':32s} style: ruff line-length limit")
            print(f"{'syntax-error':32s} style: compileall smoke")
        return 0
    # With a --select subset, a suppression for an unselected rule is
    # unjudgeable, so the staleness check only runs on full-rule runs.
    findings = analyze_paths(args.paths, rules=_selected_rules(args.select),
                             report_unused=args.select is None)
    if args.dtype_summary_out:
        _write_dtype_summary(args.paths, args.dtype_summary_out)
    if args.style:
        findings.extend(check_style(args.paths))
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
    report = {
        "paths": list(args.paths),
        "n_findings": len(findings),
        "findings": [f.to_json() for f in findings],
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        for finding in findings:
            print(finding)
        n = len(findings)
        gate = "invariant + style gate" if args.style else "invariant gate"
        if n:
            print(f"{gate}: {n} finding{'s' if n != 1 else ''}")
        else:
            print(f"{gate}: clean")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
