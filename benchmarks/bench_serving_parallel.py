"""Parallel serving: measured concurrent wall clock across worker processes.

The ``sharded`` engine topology *models* parallel wall clock as
``max(shard_seconds)``; the ``parallel`` topology measures it. Every stack
here is built by ``PegasusEngine`` from one ``EngineConfig`` (see
``run_parallel_throughput``), fanning the Figure-8 serving mix out to
persistent multiprocessing workers over columnar shard payloads, with and
without the per-replica flow-decision cache.

Asserted here: every parallel configuration's decisions are **bit-identical**
to the serial dispatcher's, and — on hosts with >= 4 usable cores (CI's
runners; a single-core container cannot parallelize anything) — measured
wall-clock throughput at 4 workers is >= 2x the 1-worker run. Results land
in the ``parallel`` section of ``BENCH_serving.json`` for the CI regression
gate.
"""

import os

from repro.eval.reporting import render_table, update_bench_json
from repro.eval.runner import run_parallel_throughput


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def _run(scale):
    return run_parallel_throughput(flows_per_class=scale["flows_per_class"],
                                   seed=scale["seed"])


def test_throughput_parallel(benchmark, bench_scale):
    res = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = []
    for n, entry in sorted(res["workers"].items()):
        rows.append([f"workers={n}", entry["serial_pps"],
                     entry["parallel"]["pps"],
                     entry["parallel_cached"]["pps"],
                     entry["parallel_cached"]["cache_hit_rate"],
                     entry["decisions"]])
    print()
    print(render_table(
        ["config", "serial_pps", "parallel_pps", "cached_pps", "hit_rate",
         "decisions"], rows,
        title=f"Parallel serving throughput — {res['n_packets']} packets, "
              f"{_usable_cores()} cores, "
              f"4-vs-1 speedup {res['speedup_4_vs_1']:.2f}x "
              f"({res['speedup_4_vs_1_cached']:.2f}x cached)"))

    update_bench_json("parallel", {
        "n_packets": res["n_packets"],
        "cores": _usable_cores(),
        "pps": {n: e["parallel"]["pps"] for n, e in res["workers"].items()},
        "pps_cached": {n: e["parallel_cached"]["pps"]
                       for n, e in res["workers"].items()},
        "serial_pps": {n: e["serial_pps"] for n, e in res["workers"].items()},
        "speedup_4_vs_1": res["speedup_4_vs_1"],
        "speedup_4_vs_1_cached": res["speedup_4_vs_1_cached"],
        "cache_hit_rate": res["cache_hit_rate"],
        "all_match_serial": res["all_match_serial"],
    })

    # Concurrency must never change a single decision.
    assert res["all_match_serial"]
    # Real wall-clock scaling needs real cores; CI runners have >= 4.
    if _usable_cores() >= 4:
        assert res["speedup_4_vs_1"] >= 2.0
