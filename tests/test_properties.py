"""Cross-module property-based tests on the core invariants.

These are the load-bearing guarantees of the reproduction:

1. Basic fusion never changes program semantics.
2. Materialized tables approximate the float program, and the
   approximation improves with clustering depth.
3. The staged pipeline, the compiled reference model, and the emitted P4
   entries agree bit-for-bit.
4. The columnar trace views (the wire form shard payloads travel as) are
   lossless round-trips, and flow-shard hashing is a pure per-packet
   function — stable under any permutation of the columns.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import emit_p4
from repro.backends.p4 import interpret_entries
from repro.core import (
    Affine, ElementwiseAffine, ElementwiseFunc, MapStep, PrimitiveProgram,
    SumReduceStep, even_partition, fuse_basic, materialize, MaterializeConfig,
)
from repro.dataplane import place_model, TOFINO2
from repro.net import build_scenario, scenario_names
from repro.net.traces import (KEY_COLUMN_NAMES, Trace,
                              canonicalize_key_columns, keys_from_columns)
from repro.serving import shard_hash, shard_hash_columns


def _random_program(rng: np.random.Generator, input_dim: int,
                    n_blocks: int) -> PrimitiveProgram:
    """A random stack of [elementwise-affine, matmul(+SR), nonlinearity]."""
    steps = []
    dim = input_dim
    for b in range(n_blocks):
        scale = rng.uniform(0.5, 1.5, dim)
        shift = rng.normal(0, 0.1, dim)
        steps.append(MapStep([(0, dim)], [ElementwiseAffine(scale, shift)]))
        out_dim = int(rng.integers(2, 6))
        seg = 2 if b == 0 and dim % 2 == 0 else dim
        partition = even_partition(dim, seg)
        w = rng.normal(0, 0.2, (dim, out_dim))
        fns = [Affine(w[s:e], rng.normal(0, 0.1, out_dim) / len(partition))
               for s, e in partition]
        steps.append(MapStep(partition, fns))
        if len(partition) > 1:
            steps.append(SumReduceStep(len(partition), out_dim))
        if rng.random() < 0.7:
            steps.append(MapStep([(0, out_dim)],
                                 [ElementwiseFunc(lambda v: np.maximum(v, 0),
                                                  out_dim, name="relu")]))
        dim = out_dim
    program = PrimitiveProgram(input_dim=input_dim, steps=steps)
    program.validate()
    return program


class TestFusionSemantics:
    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_fusion_preserves_semantics(self, seed, n_blocks):
        rng = np.random.default_rng(seed)
        program = _random_program(rng, input_dim=8, n_blocks=n_blocks)
        fused = fuse_basic(program)
        x = rng.normal(0, 50, size=(20, 8))
        np.testing.assert_allclose(fused.evaluate(x), program.evaluate(x),
                                   rtol=1e-9, atol=1e-9)

    @settings(deadline=None, max_examples=20)
    @given(st.integers(0, 10_000), st.integers(1, 3))
    def test_fusion_never_adds_lookups(self, seed, n_blocks):
        rng = np.random.default_rng(seed)
        program = _random_program(rng, input_dim=8, n_blocks=n_blocks)
        fused = fuse_basic(program)
        assert fused.num_map_steps <= program.num_map_steps


class TestMaterializationFidelity:
    @settings(deadline=None, max_examples=10)
    @given(st.integers(0, 1000))
    def test_depth_improves_approximation(self, seed):
        rng = np.random.default_rng(seed)
        w = rng.normal(0, 0.05, (6, 2))
        partition = even_partition(6, 2)
        fns = [Affine(w[s:e], np.zeros(2)) for s, e in partition]
        program = PrimitiveProgram(
            input_dim=6, steps=[MapStep(partition, fns), SumReduceStep(3, 2)])
        calib = np.floor(rng.uniform(0, 255, size=(300, 6))).astype(np.int64)
        want = calib.astype(np.float64) @ w
        err_small = np.abs(materialize(
            program, calib, MaterializeConfig(fuzzy_leaves=2)
        ).predict_scores(calib) - want).mean()
        err_large = np.abs(materialize(
            program, calib, MaterializeConfig(fuzzy_leaves=64)
        ).predict_scores(calib) - want).mean()
        assert err_large <= err_small + 1e-9



@lru_cache(maxsize=1)
def _cached_artifacts():
    rng = np.random.default_rng(3)
    w = rng.normal(0, 0.05, (6, 3))
    partition = even_partition(6, 2)
    fns = [Affine(w[s:e], np.full(3, 0.1)) for s, e in partition]
    program = PrimitiveProgram(
        input_dim=6, steps=[MapStep(partition, fns), SumReduceStep(3, 3)])
    calib = np.floor(rng.uniform(0, 255, size=(400, 6))).astype(np.int64)
    compiled = materialize(program, calib, MaterializeConfig(fuzzy_leaves=16))
    return compiled, calib


class TestThreeWayAgreement:
    """Compiled model == staged pipeline == interpreted P4 entries."""

    @pytest.fixture(scope="class")
    def artifacts(self):
        return _cached_artifacts()

    def test_pipeline_agrees(self, artifacts):
        compiled, calib = artifacts
        pipeline = place_model(compiled, TOFINO2)
        np.testing.assert_array_equal(pipeline.process(calib[:100]),
                                      compiled.forward_int(calib[:100]))

    def test_p4_entries_agree(self, artifacts):
        compiled, calib = artifacts
        program = emit_p4(compiled)
        np.testing.assert_array_equal(
            interpret_entries(program, compiled, calib[:30]),
            compiled.forward_int(calib[:30]))

    @settings(deadline=None, max_examples=15)
    @given(st.integers(0, 2**31))
    def test_pipeline_agrees_on_random_inputs(self, seed):
        compiled, _ = _cached_artifacts()
        pipeline = place_model(compiled, TOFINO2)
        x = np.floor(np.random.default_rng(seed).uniform(0, 255, (5, 6))).astype(np.int64)
        np.testing.assert_array_equal(pipeline.process(x), compiled.forward_int(x))


@lru_cache(maxsize=8)
def _scenario_trace(family: str, seed: int) -> Trace:
    """A small scenario-generated trace (cached: hypothesis revisits seeds)."""
    return build_scenario(family).generate(seed=seed, flows_scale=0.1).trace


_families = st.sampled_from(scenario_names())
_seeds = st.integers(0, 500)


class TestColumnarRoundTrips:
    """The columnar wire form of scenario-generated traces is lossless."""

    @settings(deadline=None, max_examples=12)
    @given(_families, _seeds, st.sampled_from([None, 4, 60]))
    def test_to_columns_from_columns_roundtrip(self, family, seed,
                                               payload_bytes):
        trace = _scenario_trace(family, seed)
        back = Trace.from_columns(trace.to_columns(payload_bytes=payload_bytes))
        assert len(back) == len(trace)
        for a, b in zip(trace.packets, back.packets):
            assert (a.ts, a.length, a.key) == (b.ts, b.length, b.key)
            if payload_bytes is not None:
                take = min(a.payload_len, payload_bytes)
                np.testing.assert_array_equal(b.payload[:take],
                                              a.payload[:take])
                assert not b.payload[take:].any()   # zero padding beyond

    @settings(deadline=None, max_examples=12)
    @given(_families, _seeds)
    def test_keys_from_columns_inverts_canonicalization(self, family, seed):
        trace = _scenario_trace(family, seed)
        rebuilt = keys_from_columns(trace.canonical_key_columns())
        assert rebuilt == trace.canonical_keys()
        assert all(type(v) is int for k in rebuilt[:3] for v in k)

    @settings(deadline=None, max_examples=12)
    @given(_families, _seeds)
    def test_canonicalize_columns_matches_scalar(self, family, seed):
        trace = _scenario_trace(family, seed)
        cols = canonicalize_key_columns(trace.key_columns())
        want = trace.canonical_keys()
        for i, name in enumerate(KEY_COLUMN_NAMES):
            np.testing.assert_array_equal(cols[name],
                                          [k[i] for k in want])


class TestShardHashStability:
    """shard_hash_columns is a pure per-packet function of the 5-tuple."""

    @settings(deadline=None, max_examples=12)
    @given(_families, _seeds, st.integers(0, 2**31))
    def test_stable_under_permutation(self, family, seed, perm_seed):
        trace = _scenario_trace(family, seed)
        cols = trace.canonical_key_columns()
        h = shard_hash_columns(cols)
        perm = np.random.default_rng(perm_seed).permutation(len(h))
        h_perm = shard_hash_columns(
            {name: cols[name][perm] for name in KEY_COLUMN_NAMES})
        np.testing.assert_array_equal(h_perm, h[perm])

    @settings(deadline=None, max_examples=8)
    @given(_families, _seeds)
    def test_columns_match_scalar_hash(self, family, seed):
        trace = _scenario_trace(family, seed)
        keys = trace.canonical_keys()
        h = shard_hash_columns(trace.canonical_key_columns())
        assert [int(v) for v in h[:64]] == \
            [shard_hash(k) for k in keys[:64]]

    @settings(deadline=None, max_examples=8)
    @given(_families, _seeds, st.integers(1, 8))
    def test_shard_assignment_is_per_flow(self, family, seed, n_shards):
        # all packets of a canonical flow land on one shard, any shard count
        trace = _scenario_trace(family, seed)
        shard = shard_hash_columns(trace.canonical_key_columns()) \
            % np.uint64(n_shards)
        by_flow: dict = {}
        for k, s in zip(trace.canonical_keys(), shard.tolist()):
            by_flow.setdefault(k, set()).add(s)
        assert all(len(s) == 1 for s in by_flow.values())


class TestWireDtypePreservation:
    """The columnar wire form carries *exactly* the declared dtypes.

    ``from_columns(to_columns(t))`` must neither promote nor narrow any
    column — the schema in ``repro.dataplane.schema`` is the single source
    of truth, so every column is asserted against it, including the
    rank-2 payload matrix and the uint8 per-packet payload buffers that
    ``read_trace`` reconstructs via ``np.frombuffer``.
    """

    @settings(deadline=None, max_examples=12)
    @given(_families, _seeds, st.sampled_from([None, 4, 60]))
    def test_round_trip_preserves_declared_dtypes(self, family, seed,
                                                  payload_bytes):
        from repro.dataplane.schema import WIRE_COLUMNS
        trace = _scenario_trace(family, seed)
        cols = trace.to_columns(payload_bytes=payload_bytes)
        for name, arr in cols.items():
            spec = WIRE_COLUMNS.columns[name]
            assert arr.dtype == WIRE_COLUMNS.np_dtype(name), name
            assert arr.ndim == spec.rank, name
        back = Trace.from_columns(cols)
        again = back.to_columns(payload_bytes=payload_bytes)
        assert set(again) == set(cols)
        for name in cols:
            assert again[name].dtype == cols[name].dtype, name
        # Per-packet payload buffers stay uint8 through the round trip.
        assert all(p.payload.dtype == np.uint8 for p in back.packets)

    @settings(deadline=None, max_examples=6)
    @given(_families, st.integers(0, 100))
    def test_binary_format_reload_preserves_dtypes(self, tmp_path_factory,
                                                   family, seed):
        from repro.dataplane.schema import WIRE_COLUMNS
        from repro.net.traces import read_trace, write_trace
        trace = _scenario_trace(family, seed)
        path = tmp_path_factory.mktemp("wire") / "trace.spcap"
        write_trace(trace, path)
        back = read_trace(path)
        # frombuffer reconstruction: payloads are uint8, columns schema-exact
        assert all(p.payload.dtype == np.uint8 for p in back.packets)
        cols = back.to_columns(payload_bytes=16)
        for name, arr in cols.items():
            assert arr.dtype == WIRE_COLUMNS.np_dtype(name), name
