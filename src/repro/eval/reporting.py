"""Rendering of experiment results: text tables and the bench trajectory JSON."""

from __future__ import annotations

import json
import os
from pathlib import Path


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Align a list-of-rows into a monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if 0 <= cell <= 1:
            return f"{cell:.4f}"
        return f"{cell:,.1f}"
    return str(cell)


def render_scenario_table(summary: dict) -> str:
    """Per-phase table for one ``ScenarioServingReport.summary()`` dict.

    One row per phase — packets, decisions, accuracy, pps, cache hit rate
    split into exact (L1) and verified-approximate (L2) hits — plus an
    ``overall`` footer row, titled with the scenario name.
    """
    def row(label, s):
        acc = s.get("accuracy")
        return [label, s["n_packets"], s["n_decisions"],
                "-" if acc is None else f"{acc:.4f}",
                s["pps"], f"{s['cache_hit_rate']:.3f}",
                s.get("cache_exact_hits", 0), s.get("cache_approx_hits", 0)]

    rows = [row(f"{name} [{p['t_start']:.0f}-{p['t_end']:.0f}s]", p)
            for name, p in summary["phases"].items()]
    rows.append(row("overall", summary["overall"]))
    return render_table(
        ["phase", "packets", "decisions", "accuracy", "pps", "cache_hit",
         "exact", "approx"],
        rows, title=f"Scenario {summary['scenario']!r} "
                    f"(seed={summary['seed']})")


def render_openloop_table(summary: dict) -> str:
    """Per-phase table for one ``OpenLoopReport.summary()`` dict.

    One row per phase — offered/admitted/shed counts, shed fraction, peak
    queue depth, and the p50/p99 sojourn — plus an ``overall`` footer row,
    titled with the scenario, admission policy, and target.
    """
    def row(label, s, lat):
        return [label, s["offered"], s["admitted"], s["shed"],
                f"{s['shed_fraction']:.3f}",
                s.get("queue_depth_max", "-"),
                f"{lat['p50_ms']:.2f}", f"{lat['p99_ms']:.2f}"]

    rows = [row(name, p, p["latency"])
            for name, p in summary["phases"].items()]
    overall = {"offered": summary["offered"],
               "admitted": summary["admitted"], "shed": summary["shed"],
               "shed_fraction": summary["shed_fraction"]}
    rows.append(row("overall", overall, summary["latency"]))
    target = summary.get("p99_target_ms")
    meets = summary.get("meets_target")
    title = (f"Open-loop {summary['scenario']!r} "
             f"(admission={summary['admission']}, "
             f"time_scale={summary['time_scale']:.4g}")
    if target is not None:
        title += f", p99 target {target:.0f}ms: " \
                 + ("MET" if meets else "MISSED")
    title += ")"
    return render_table(
        ["phase", "offered", "admitted", "shed", "shed_frac", "depth_max",
         "p50_ms", "p99_ms"],
        rows, title=title)


def metric_or_sentinel(value, sentinel: str = "no_labeled_packets"):
    """A bench-JSON metric value, with ``None`` mapped to a named sentinel.

    Bench sections must never contain bare JSON ``null``: downstream
    tooling cannot tell "metric undefined for a stated reason" from
    "producer forgot to compute it" (``scripts/check_bench_regression.py``
    fails on any null). Undefined metrics carry a string naming *why* —
    e.g. ``"no_labeled_packets"`` for an accuracy over a phase that had no
    labeled traffic, or ``"single_core"`` for a multicore speedup measured
    on a host that cannot parallelize.
    """
    return sentinel if value is None else value


def update_bench_json(section: str, payload: dict,
                      path: str | Path | None = None) -> Path:
    """Merge one bench's scalar results into the bench-trajectory JSON.

    Each serving bench writes its results under its own ``section`` key of
    one shared file (default ``BENCH_serving.json`` in the working
    directory, overridable via the ``BENCH_JSON`` env var), so the CI bench
    job can upload a single artifact and diff it against the committed
    baseline. NumPy scalars are coerced to plain JSON types.
    """
    path = Path(path or os.environ.get("BENCH_JSON", "BENCH_serving.json"))
    data = json.loads(path.read_text()) if path.exists() else {}
    data[section] = _jsonify(payload)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def _jsonify(obj):
    """Recursively coerce NumPy scalars/arrays and dict keys to JSON types."""
    if isinstance(obj, dict):
        return {str(k): _jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonify(v) for v in obj]
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    if hasattr(obj, "tolist"):          # NumPy scalar or array
        return obj.tolist()
    return str(obj)
