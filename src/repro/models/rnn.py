"""RNN-B: windowed recurrent model on packet-length / IPD sequences.

Follows BoS's windowed design (paper §6.3): the window's 8 (length, IPD)
token pairs are processed step by step with no hidden-state write-back.
Float model: Embedding -> Elman RNN (tanh) -> FC head.

Dataplane compilation unrolls the recurrence into one fuzzy-matched lookup
round per time step: step ``t``'s table matches [quantized hidden state,
raw token pair] and returns the next quantized hidden state; a final table
maps the last hidden state to class scores. This is the Pegasus treatment
of the paper's "Rec" layer: MatMul + bias + tanh all folded into one Map
per step via fuzzy matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core.fuzzy import FuzzyTree
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.models.base import TrafficModel
from repro.net.features import SEQ_WINDOW, SEQ_TOKENS
from repro.utils.fixed_point import QFormat, choose_qformat


class _RNNNet(nn.Module):
    """Embedding -> windowed RNN over (len, ipd) token pairs -> FC head."""

    def __init__(self, n_classes: int, emb_dim: int, hidden: int, rngs):
        super().__init__()
        self.emb = nn.Embedding(256, emb_dim, rng=int(rngs[0]))
        self.rnn = nn.WindowedRNN(2 * emb_dim, hidden, rng=int(rngs[1]))
        self.head = nn.Linear(hidden, n_classes, rng=int(rngs[2]))
        self.emb_dim = emb_dim
        self.hidden = hidden

    def forward(self, x: np.ndarray) -> np.ndarray:
        # x: (N, 16) integer tokens, interleaved (len, ipd) per packet.
        n = x.shape[0]
        embedded = self.emb.forward(x.astype(np.int64))      # (N, 16, D)
        pairs = embedded.reshape(n, SEQ_WINDOW, 2 * self.emb_dim)
        h = self.rnn.forward(pairs)
        return self.head.forward(h)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_h = self.head.backward(grad_out)
        grad_pairs = self.rnn.backward(grad_h)
        n = grad_pairs.shape[0]
        grad_emb = grad_pairs.reshape(n, SEQ_TOKENS, self.emb_dim)
        return self.emb.backward(grad_emb)

    def hidden_trajectory(self, x: np.ndarray) -> list[np.ndarray]:
        """Hidden state after each step, for dataplane calibration."""
        n = x.shape[0]
        embedded = self.emb.forward(x.astype(np.int64))
        pairs = embedded.reshape(n, SEQ_WINDOW, 2 * self.emb_dim)
        h = np.zeros((n, self.hidden))
        states = []
        for t in range(SEQ_WINDOW):
            h = self.rnn.cell.step(pairs[:, t, :], h)
            states.append(h)
        return states

    def step_fn(self, tokens: np.ndarray, h: np.ndarray) -> np.ndarray:
        """Float step function on raw token pairs (N, 2) and hidden (N, H)."""
        emb = self.emb.weight.data[tokens.astype(np.int64)]  # (N, 2, D)
        flat = emb.reshape(len(tokens), -1)
        return self.rnn.cell.step(flat, h)


@dataclass
class CompiledRNN:
    """Discrete-state dataplane RNN.

    The hidden state between unrolled steps is a small *fuzzy index* into a
    per-step codebook of hidden-state clusters (fitted on the float model's
    hidden trajectories). Each step is two lookups: a TCAM fuzzy match on
    the step's raw token pair, then an exact transition table
    ``(hidden index, token leaf) -> next hidden index``. A final exact table
    maps the last hidden index to class scores. Indexes never accumulate
    value error, which is what makes the unrolled chain stable.
    """

    token_trees: list[FuzzyTree]           # per step, over (len, ipd)
    transitions: list[np.ndarray]          # [0]: (n_tok,), t>0: (n_h, n_tok)
    head_values: np.ndarray                # (n_h, n_classes) ints
    out_format: QFormat
    n_classes: int
    hidden_bits: int = 8
    name: str = "rnn-b"

    def predict_scores_int(self, x_tokens: np.ndarray) -> np.ndarray:
        x = np.asarray(x_tokens, dtype=np.int64)
        tok0 = self.token_trees[0].predict_index(x[:, 0:2].astype(np.float64))
        h_idx = self.transitions[0][tok0]
        for t in range(1, len(self.token_trees)):
            tok = self.token_trees[t].predict_index(
                x[:, 2 * t:2 * t + 2].astype(np.float64))
            h_idx = self.transitions[t][h_idx, tok]
        return self.head_values[h_idx]

    def predict(self, x_tokens: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_scores_int(x_tokens), axis=1)

    @property
    def num_tables(self) -> int:
        return 2 * len(self.token_trees) + 1

    def sram_bits(self) -> int:
        trans = sum(t.size * self.hidden_bits for t in self.transitions)
        head = self.head_values.size * self.out_format.total_bits
        return trans + head

    def tcam_bits(self) -> int:
        return sum(t.tcam_entries(key_bits=8) * 2 * 16 for t in self.token_trees)

    def bus_bits(self) -> int:
        return max(self.hidden_bits * 2,
                   self.n_classes * self.out_format.total_bits)


class RNNB(TrafficModel):
    name = "RNN-B"
    feature_view = "seq"

    def __init__(self, n_classes: int, seed: int = 0, emb_dim: int = 4,
                 hidden: int = 16, epochs: int = 100, fuzzy_leaves: int = 256):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=4)
        self.net = _RNNNet(n_classes, emb_dim, hidden, rngs)
        self.epochs = epochs
        self.fuzzy_leaves = fuzzy_leaves

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = self.view(views, "seq")
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.02),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, self.view(views, "seq"))

    def compile_dataplane(self, views: dict[str, np.ndarray],
                          n_hidden_clusters: int = 512,
                          n_token_leaves: int = 128) -> None:
        """Build the discrete-state unrolled pipeline (see CompiledRNN)."""
        self._require_trained()
        x = self.view(views, "seq").astype(np.int64)
        states = self.net.hidden_trajectory(x)   # float hidden after each step

        # Per-step hidden codebooks (clusters of the float hidden states) and
        # per-step token trees over the raw (len, ipd) pair.
        hidden_trees = [FuzzyTree.fit(states[t], n_leaves=n_hidden_clusters)
                        for t in range(SEQ_WINDOW)]
        token_trees = [FuzzyTree.fit(x[:, 2 * t:2 * t + 2].astype(np.float64),
                                     n_leaves=n_token_leaves)
                       for t in range(SEQ_WINDOW)]

        transitions: list[np.ndarray] = []
        # Step 0: hidden starts at zero, so the transition is token-only.
        tok_cents = np.clip(np.round(token_trees[0].centroids), 0, 255)
        n_tok0 = token_trees[0].n_leaves
        h0 = np.zeros((n_tok0, self.net.hidden))
        next_h = self.net.step_fn(tok_cents, h0)
        t0_idx = hidden_trees[0].predict_index(next_h)
        tok0_idx = token_trees[0].predict_index(x[:, 0:2].astype(np.float64))
        state0_idx = hidden_trees[0].predict_index(states[0])
        votes0 = np.zeros((n_tok0, hidden_trees[0].n_leaves), dtype=np.int64)
        np.add.at(votes0, (tok0_idx, state0_idx), 1)
        covered0 = votes0.sum(axis=1) > 0
        t0_idx[covered0] = votes0.argmax(axis=1)[covered0]
        transitions.append(t0_idx)
        # Steps 1..W-1: full (hidden cluster, token leaf) grids. Cells the
        # calibration set covers use the empirical majority next-cluster
        # (data beats the centroid when within-cluster variation matters);
        # uncovered cells fall back to stepping the centroids.
        for t in range(1, SEQ_WINDOW):
            codebook = hidden_trees[t - 1].centroids          # (n_h, H)
            tok_cents = np.clip(np.round(token_trees[t].centroids), 0, 255)
            n_h, n_tok = len(codebook), len(tok_cents)
            grid_h = np.repeat(codebook, n_tok, axis=0)
            grid_tok = np.tile(tok_cents, (n_h, 1))
            next_h = self.net.step_fn(grid_tok, grid_h)
            idx = hidden_trees[t].predict_index(next_h).reshape(n_h, n_tok)

            prev_idx = hidden_trees[t - 1].predict_index(states[t - 1])
            tok_idx = token_trees[t].predict_index(
                x[:, 2 * t:2 * t + 2].astype(np.float64))
            next_idx = hidden_trees[t].predict_index(states[t])
            votes = np.zeros((n_h, n_tok, hidden_trees[t].n_leaves), dtype=np.int32)
            np.add.at(votes, (prev_idx, tok_idx, next_idx), 1)
            covered = votes.sum(axis=2) > 0
            empirical = votes.argmax(axis=2)
            idx[covered] = empirical[covered]
            transitions.append(idx)

        # Head table: conditional-mean class scores per final hidden cluster
        # (the closed-form mapping optimization of §4.4).
        final_idx = hidden_trees[-1].predict_index(states[-1])
        head_float = self.net.head.forward(states[-1])
        out_fmt = choose_qformat(head_float, 16)
        n_h = hidden_trees[-1].n_leaves
        head_vals = np.zeros((n_h, self.n_classes))
        counts = np.bincount(final_idx, minlength=n_h)
        np.add.at(head_vals, final_idx, head_float)
        nonzero = counts > 0
        head_vals[nonzero] /= counts[nonzero, None]
        if (~nonzero).any():
            head_vals[~nonzero] = self.net.head.forward(
                hidden_trees[-1].centroids[~nonzero])

        self.compiled = CompiledRNN(
            token_trees=token_trees, transitions=transitions,
            head_values=out_fmt.quantize(head_vals), out_format=out_fmt,
            n_classes=self.n_classes,
            hidden_bits=max(int(np.ceil(np.log2(n_hidden_clusters))), 1))

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        return self.compiled.predict(self.view(views, "seq").astype(np.int64))

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def input_scale_bits(self) -> int:
        return SEQ_TOKENS * 8

    def flow_layout(self) -> FlowStateLayout:
        # Paper Table 6: RNN-B is register-heavy (240 bits/flow) because the
        # full token window is kept per flow.
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=SEQ_WINDOW - 1),
            RegisterField("ipd_hist", 8, count=SEQ_WINDOW - 1),
            RegisterField("hidden_ckpt", 8, count=SEQ_WINDOW + 5),
        ])  # 240 bits/flow
