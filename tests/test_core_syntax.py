"""Tests for the Pegasus Syntax frontend (paper Figure 6)."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.core.syntax import Partition, Map, SumReduce


def _calib(n=400, d=8, seed=0):
    rng = np.random.default_rng(seed)
    return np.floor(rng.uniform(0, 255, size=(n, d))).astype(np.int64)


class TestPartition:
    def test_default_stride(self):
        assert Partition(dim=2).segments(8) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_overlapping_rejected(self):
        with pytest.raises(CompilationError):
            Partition(dim=4, stride=2)

    def test_indivisible_rejected(self):
        with pytest.raises(CompilationError):
            Partition(dim=3).segments(8)


class TestMap:
    def test_needs_exactly_one_fn_arg(self):
        with pytest.raises(CompilationError):
            Map(Partition(dim=2), out_dim=1)
        with pytest.raises(CompilationError):
            Map(Partition(dim=2), out_dim=1, fn=lambda v: v,
                fns=[lambda v: v])

    def test_per_segment_fns_count_checked(self):
        m = Map(Partition(dim=2), out_dim=1, fns=[lambda v: v.sum(1, keepdims=True)])
        with pytest.raises(CompilationError):
            m.steps(input_dim=8)  # 4 segments, 1 fn


class TestEndToEnd:
    def test_figure6_shape(self):
        """The paper's example: SumReduce(Map(Partition(dim=2), depth=4))."""
        rng = np.random.default_rng(1)
        w = rng.normal(size=(2, 3)) * 0.05

        expr = SumReduce(Map(Partition(dim=2, stride=2), out_dim=3,
                             fn=lambda seg: seg @ w, clustering_depth=6))
        calib = _calib()
        compiled = expr.compile(calib)
        assert compiled.num_lookup_rounds == 1
        assert compiled.num_tables == 4
        # Clustering depth controls table entries: 2^6 leaves.
        assert all(t.n_entries <= 64 for t in compiled.layers[0].tables)

    def test_compiled_approximates_expression(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(2, 2)) * 0.05
        expr = SumReduce(Map(Partition(dim=2), out_dim=2,
                             fn=lambda seg: np.tanh(seg @ w),
                             clustering_depth=7))
        calib = _calib(d=8)
        compiled = expr.compile(calib)
        want = sum(np.tanh(calib[:, s:s + 2].astype(float) @ w)
                   for s in range(0, 8, 2))
        got = compiled.predict_scores(calib)
        assert np.abs(got - want).mean() < 0.1

    def test_per_segment_functions(self):
        fns = [lambda seg, k=k: np.full((len(seg), 1), float(k))
               for k in range(4)]
        expr = SumReduce(Map(Partition(dim=2), out_dim=1, fns=fns,
                             clustering_depth=2))
        compiled = expr.compile(_calib(d=8))
        # Sum of constants 0+1+2+3 = 6 for every input.
        scores = compiled.predict_scores(_calib(n=10, d=8, seed=9))
        np.testing.assert_allclose(scores, 6.0, atol=0.01)
