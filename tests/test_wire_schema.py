"""The declared columnar wire format (``repro.dataplane.schema``).

Three layers:

1. **Validator semantics** — ``validate_columns`` accepts exactly the
   declared dtypes/ranks, rejects drift with a picklable
   :class:`~repro.errors.SchemaError` naming schema + column + reason, and
   honors the ``REPRO_WIRE_VALIDATE`` debug gate.
2. **Coverage of the hot paths** — every producer/consumer boundary
   (``Trace.to_columns`` / ``from_columns``, the sharded split, the
   parallel split, worker replies, the decision merge) actually calls the
   validator; a counter-instrumented run proves it, and a drifted column
   injected at each boundary is caught.
3. **Merge correctness** — the preallocated scatter-merge reproduces the
   decisions the concatenate+argsort merge produced, bit-identically.
"""

import numpy as np
import pytest

from repro.dataplane.runtime import WindowedClassifierRuntime, flows_to_trace
from repro.dataplane.schema import (DECISION_COLUMNS, WIRE_COLUMNS,
                                    ColumnSchema, ColumnSpec, decision_dtype,
                                    set_validation, validation_enabled,
                                    wire_dtype)
from repro.errors import PegasusError, SchemaError
from repro.net.traces import Trace
from repro.serving import BatchScheduler
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.parallel import ParallelDispatcher
from repro.serving.rings import scatter_decision_chunk


def _runtime_factory(compiled16):
    def build():
        return WindowedClassifierRuntime(compiled16, feature_mode="stats",
                                         batch_size=32)
    return build


@pytest.fixture(autouse=True)
def _validation_on():
    previous = set_validation(True)
    yield
    set_validation(previous)


def good_wire_columns(n=4):
    return {
        "ts": np.arange(n, dtype=np.float64),
        "length": np.full(n, 60, dtype=np.int64),
        "src_ip": np.arange(n, dtype=np.int64),
        "dst_ip": np.arange(n, dtype=np.int64),
        "src_port": np.arange(n, dtype=np.int64),
        "dst_port": np.arange(n, dtype=np.int64),
        "proto": np.full(n, 6, dtype=np.int64),
    }


class TestSchemaDeclaration:
    def test_wire_schema_declares_the_documented_columns(self):
        assert set(WIRE_COLUMNS.columns) == {
            "ts", "length", "src_ip", "dst_ip", "src_port", "dst_port",
            "proto", "labels", "payload"}
        assert WIRE_COLUMNS.np_dtype("ts") == np.dtype(np.float64)
        assert WIRE_COLUMNS.np_dtype("length") == np.dtype(np.int64)
        assert WIRE_COLUMNS.columns["payload"].rank == 2
        assert WIRE_COLUMNS.columns["payload"].nullable
        assert WIRE_COLUMNS.columns["labels"].nullable

    def test_decision_schema(self):
        assert set(DECISION_COLUMNS.columns) == {"seq", "flow_label",
                                                 "predicted", "ts"}
        assert decision_dtype("seq") == np.dtype(np.int64)
        assert decision_dtype("ts") == np.dtype(np.float64)

    def test_required_excludes_nullable(self):
        assert set(WIRE_COLUMNS.required()) == {
            "ts", "length", "src_ip", "dst_ip", "src_port", "dst_port",
            "proto"}

    def test_schema_is_frozen(self):
        with pytest.raises(TypeError):
            WIRE_COLUMNS.columns["ts"] = ColumnSpec("int64")
        with pytest.raises((AttributeError, TypeError)):
            WIRE_COLUMNS.name = "other"

    def test_wire_dtype_unknown_column_raises(self):
        with pytest.raises(KeyError):
            wire_dtype("no_such_column")


class TestValidateColumns:
    def test_accepts_declared_layout(self):
        WIRE_COLUMNS.validate_columns(good_wire_columns())

    def test_rejects_dtype_drift(self):
        cols = good_wire_columns()
        cols["length"] = cols["length"].astype(np.float32)
        with pytest.raises(SchemaError, match="length"):
            WIRE_COLUMNS.validate_columns(cols)

    def test_rejects_rank_drift(self):
        cols = good_wire_columns()
        cols["ts"] = cols["ts"].reshape(1, -1)
        with pytest.raises(SchemaError, match="ts"):
            WIRE_COLUMNS.validate_columns(cols)

    def test_rejects_missing_required_column(self):
        cols = good_wire_columns()
        del cols["proto"]
        with pytest.raises(SchemaError, match="proto"):
            WIRE_COLUMNS.validate_columns(cols)

    def test_rejects_undeclared_column(self):
        cols = good_wire_columns()
        cols["mystery"] = np.zeros(4)
        with pytest.raises(SchemaError, match="mystery"):
            WIRE_COLUMNS.validate_columns(cols)

    def test_rejects_non_ndarray(self):
        cols = good_wire_columns()
        cols["ts"] = list(cols["ts"])
        with pytest.raises(SchemaError, match="ts"):
            WIRE_COLUMNS.validate_columns(cols)

    def test_nullable_columns_are_optional(self):
        cols = good_wire_columns()
        WIRE_COLUMNS.validate_columns(cols)          # no labels/payload: fine
        cols["labels"] = np.zeros(4, dtype=np.int64)
        cols["payload"] = np.zeros((4, 8), dtype=np.float64)
        WIRE_COLUMNS.validate_columns(cols)

    def test_require_subset(self):
        WIRE_COLUMNS.validate_columns(
            {"ts": np.zeros(3, dtype=np.float64)}, require=("ts",))

    def test_error_carries_context_and_pickles(self):
        cols = good_wire_columns()
        cols["ts"] = cols["ts"].astype(np.float32)
        with pytest.raises(SchemaError) as exc_info:
            WIRE_COLUMNS.validate_columns(cols, context="unit test")
        err = exc_info.value
        assert err.schema == "wire" and err.column == "ts"
        assert "unit test" in str(err)
        assert isinstance(err, PegasusError)
        import pickle
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.schema, clone.column, clone.context) == \
            (err.schema, err.column, err.context)

    def test_gate_disables_validation(self):
        cols = good_wire_columns()
        cols["ts"] = cols["ts"].astype(np.float32)
        previous = set_validation(False)
        try:
            assert not validation_enabled()
            WIRE_COLUMNS.validate_columns(cols)      # no-op when disabled
        finally:
            set_validation(previous)
        with pytest.raises(SchemaError):
            WIRE_COLUMNS.validate_columns(cols)

    def test_custom_schema_roundtrip(self):
        schema = ColumnSchema("custom", {"x": ColumnSpec("uint8", 2)})
        schema.validate_columns({"x": np.zeros((2, 3), dtype=np.uint8)})
        with pytest.raises(SchemaError, match="x"):
            schema.validate_columns({"x": np.zeros((2, 3), dtype=np.uint16)})


def _count_validations(monkeypatch):
    calls = []
    original = ColumnSchema.validate_columns

    def counting(self, cols, require=None, context=""):
        calls.append((self.name, context))
        return original(self, cols, require=require, context=context)

    monkeypatch.setattr(ColumnSchema, "validate_columns", counting)
    return calls


class TestHotPathCoverage:
    def test_trace_round_trip_validates_both_directions(self, replay_flows,
                                                        monkeypatch):
        trace = Trace.from_flows(replay_flows)
        calls = _count_validations(monkeypatch)
        cols = trace.to_columns()
        assert ("wire", "Trace.to_columns") in calls
        Trace.from_columns(cols)
        assert ("wire", "Trace.from_columns") in calls

    def test_from_columns_rejects_drifted_input(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        cols = trace.to_columns()
        cols["ts"] = cols["ts"].astype(np.float32)
        with pytest.raises(SchemaError, match="ts"):
            Trace.from_columns(cols)

    def test_sharded_split_validates(self, compiled16, replay_flows,
                                     monkeypatch):
        trace, keys, labels = flows_to_trace(replay_flows)
        dispatcher = ShardedDispatcher(
            n_shards=2, runtime_factory=_runtime_factory(compiled16),
            scheduler=BatchScheduler(batch_size=32))
        calls = _count_validations(monkeypatch)
        dispatcher.serve_trace(trace, labels=labels, keys=keys)
        assert any(ctx == "ShardedDispatcher shard split"
                   for _, ctx in calls)

    def test_parallel_split_replies_and_merge_validate(self, compiled16,
                                                       replay_flows,
                                                       monkeypatch):
        trace, _keys, labels = flows_to_trace(replay_flows)
        calls = _count_validations(monkeypatch)
        with ParallelDispatcher(
                runtime_factory=_runtime_factory(compiled16), n_workers=2,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            dispatcher.serve_trace(trace, labels=labels)
        split_calls = [ctx for name, ctx in calls
                       if name == "wire" and "parallel shard split" in ctx]
        reply_calls = [ctx for name, ctx in calls
                       if name == "decision" and "reply" in ctx]
        assert split_calls and reply_calls

    def test_parallel_rejects_drifted_reply(self, monkeypatch):
        reply = {"seq": np.arange(3, dtype=np.int64),
                 "flow_label": np.arange(3, dtype=np.int64),
                 "predicted": np.zeros(3, dtype=np.float32),   # drifted
                 "ts": np.zeros(3, dtype=np.float64)}
        with pytest.raises(SchemaError, match="predicted"):
            DECISION_COLUMNS.validate_columns(
                reply, require=("seq", "flow_label", "predicted", "ts"))


def _empty_merge(n):
    merged = {name: np.zeros(n, dtype=decision_dtype(name))
              for name in ("seq", "flow_label", "predicted", "ts")}
    return merged, np.zeros(n, dtype=np.bool_)


class TestDecisionMerge:
    def test_scatter_merge_matches_manual_sort(self):
        """Chunk scatters from two interleaved shards rebuild the exact
        global-order columns a concatenate+argsort merge would produce."""
        rng = np.random.default_rng(7)
        n = 50
        order = rng.permutation(n)
        merged, valid = _empty_merge(n)
        for half in (order[:27], order[27:]):
            gseq = np.asarray(half, dtype=np.int64)
            views = {"flow_label": gseq * 3,
                     "predicted": gseq % 5,
                     "ts": np.asarray(half, dtype=np.float64) / 8.0}
            scatter_decision_chunk(merged, valid, gseq, views, len(half))
        assert valid.all()
        np.testing.assert_array_equal(merged["seq"], np.arange(n))
        np.testing.assert_array_equal(merged["flow_label"],
                                      np.arange(n) * 3)
        np.testing.assert_array_equal(merged["predicted"], np.arange(n) % 5)
        np.testing.assert_array_equal(merged["ts"], np.arange(n) / 8.0)
        for name in ("seq", "flow_label", "predicted"):
            assert merged[name].dtype == decision_dtype(name)

    def test_partial_coverage_leaves_invalid_rows(self):
        merged, valid = _empty_merge(6)
        views = {"flow_label": np.array([42], dtype=np.int64),
                 "predicted": np.array([1], dtype=np.int64),
                 "ts": np.array([0.5], dtype=np.float64)}
        scatter_decision_chunk(merged, valid,
                               np.array([3], dtype=np.int64), views, 1)
        assert valid.tolist() == [False, False, False, True, False, False]
        assert np.flatnonzero(valid).tolist() == [3]
        assert merged["flow_label"][3] == 42

    def test_egress_slot_tail_is_ignored(self):
        """Only the first ``rows`` entries of an egress slot are scattered —
        stale data past the chunk's decision count never leaks through."""
        merged, valid = _empty_merge(4)
        views = {"flow_label": np.array([7, 99], dtype=np.int64),
                 "predicted": np.array([2, 99], dtype=np.int64),
                 "ts": np.array([0.25, 99.0], dtype=np.float64)}
        scatter_decision_chunk(merged, valid,
                               np.array([1], dtype=np.int64), views, 1)
        assert valid.tolist() == [False, True, False, False]
        assert merged["flow_label"][1] == 7 and 99 not in merged["flow_label"]

    def test_parallel_decisions_bit_identical_to_sharded(self, compiled16,
                                                         replay_flows):
        trace, keys, labels = flows_to_trace(replay_flows)
        serial = ShardedDispatcher(
            n_shards=2, runtime_factory=_runtime_factory(compiled16),
            scheduler=BatchScheduler(batch_size=32)
        ).serve_trace(trace, labels=labels, keys=keys)
        with ParallelDispatcher(
                runtime_factory=_runtime_factory(compiled16), n_workers=2,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            par = dispatcher.serve_trace(trace, labels=labels)
        assert [(d.seq, d.flow_label, d.predicted, d.ts) for d in par] == \
            [(d.seq, d.flow_label, d.predicted, d.ts) for d in serial]
