"""Tests for per-flow registers, resource reports, and throughput models."""

import numpy as np
import pytest

from repro import nn
from repro.errors import PipelineError
from repro.core import PegasusCompiler, CompilerConfig
from repro.dataplane import (
    FlowStateTable, FlowStateLayout, RegisterField,
    summarize_resources, TOFINO2, line_rate_pps, measure_model_throughput,
)
from repro.net.packet import FlowKey


def _layout():
    return FlowStateLayout(fields=[
        RegisterField("prev_ts", 16),
        RegisterField("idx_hist", 4, count=7),
    ])


class TestFlowStateLayout:
    def test_bits_per_flow(self):
        assert _layout().bits_per_flow == 16 + 28  # the paper's 44-bit CNN-L layout

    def test_sram_for_1m_flows(self):
        layout = _layout()
        assert layout.sram_bits(1_000_000) == 44_000_000
        frac = layout.sram_fraction(1_000_000, TOFINO2.total_sram_bits)
        assert 0.2 < frac < 0.3  # ~22% of 200 Mb

    def test_unknown_field(self):
        with pytest.raises(KeyError):
            _layout().field("nope")


class TestFlowStateTable:
    def _key(self, port=1000):
        return FlowKey(1, 2, port, 80, 6)

    def test_fresh_record_zeroed(self):
        table = FlowStateTable(_layout())
        rec = table.get(self._key())
        assert rec["prev_ts"] == [0]
        assert rec["idx_hist"] == [0] * 7

    def test_write_read(self):
        table = FlowStateTable(_layout())
        table.write(self._key(), "prev_ts", 1234)
        assert table.read(self._key(), "prev_ts") == 1234

    def test_width_enforced(self):
        table = FlowStateTable(_layout())
        with pytest.raises(PipelineError):
            table.write(self._key(), "idx_hist", 16)  # 4-bit register
        with pytest.raises(PipelineError):
            table.write(self._key(), "prev_ts", 1 << 16)

    def test_index_bounds(self):
        table = FlowStateTable(_layout())
        with pytest.raises(PipelineError):
            table.write(self._key(), "idx_hist", 1, index=7)

    def test_shift_in(self):
        table = FlowStateTable(_layout())
        for v in range(9):
            table.shift_in(self._key(), "idx_hist", v)
        assert table.get(self._key())["idx_hist"] == [2, 3, 4, 5, 6, 7, 8]

    def test_eviction_at_capacity(self):
        table = FlowStateTable(_layout(), capacity=2)
        table.get(self._key(1))
        table.get(self._key(2))
        table.get(self._key(3))
        assert len(table) == 2
        assert table.evictions == 1


class TestResourceReport:
    def test_summary_fields(self):
        rng = np.random.default_rng(0)
        model = nn.Sequential(nn.Linear(8, 6, rng=0), nn.ReLU(), nn.Linear(6, 3, rng=1))
        for p in model.parameters():
            p.data *= 0.1
        model.eval_mode()
        x = np.floor(rng.uniform(0, 255, size=(300, 8))).astype(np.int64)
        compiled = PegasusCompiler(CompilerConfig(refine=False)).compile_sequential(model, x).compiled
        report = summarize_resources(compiled, _layout(), TOFINO2)
        assert report.stateful_bits_per_flow == 44
        assert 0 < report.sram_fraction < 1
        assert 0 < report.tcam_fraction < 1
        assert 0 < report.bus_fraction <= 1
        assert report.stages_used >= 2
        row = report.row()
        assert row["bits/flow"] == 44


class TestThroughput:
    def test_line_rate_independent_of_model(self):
        pps = line_rate_pps(TOFINO2, avg_packet_bytes=800)
        assert pps == pytest.approx(12.8e12 / (800 * 8))

    def test_smaller_packets_more_pps(self):
        assert line_rate_pps(TOFINO2, 100) > line_rate_pps(TOFINO2, 1500)

    def test_measured_throughput_positive(self):
        x = np.zeros((1000, 4))
        pps = measure_model_throughput(lambda v: v.sum(axis=1), x)
        assert pps > 0

    def test_line_rate_dwarfs_numpy(self):
        x = np.random.default_rng(0).normal(size=(2000, 16))
        w = np.random.default_rng(1).normal(size=(16, 3))
        sw = line_rate_pps(TOFINO2)
        cpu = measure_model_throughput(lambda v: np.argmax(v @ w, axis=1), x)
        assert sw / cpu > 10  # orders of magnitude in practice
