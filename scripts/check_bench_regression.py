"""Gate CI on the serving-bench trajectory: fail on regression vs baseline.

Usage::

    python scripts/check_bench_regression.py BENCH_serving.json \
        benchmarks/baselines/bench_serving_baseline.json --max-regression 0.30

The baseline JSON names its gated metrics in ``gate_metrics`` — a list of
dotted paths into both files, every one higher-is-better. A current value
below ``baseline * (1 - max_regression)`` fails the gate; metrics absent
from the baseline are reported but not gated (absolute pps is
machine-dependent, so baselines gate the *relative* metrics — batching
speedup, parallel speedup, cache hit rate — and keep pps informational).
The gate also fails outright if the current results report
``parallel.all_match_serial == false``: a fast wrong answer is not a
trade-off.

Two reporting rules keep the JSON honest:

- **No bare nulls.** Any JSON ``null`` anywhere in the current results
  fails the gate: an undefined metric must carry a string sentinel naming
  why it is undefined (``"no_labeled_packets"``, ``"single_core"``,
  ``"taildrop_zero"``) so "undefined for a stated reason" can never be
  confused with "producer forgot". Sentinels are reported, not gated.
- **Loud skips.** Parallel-speedup metrics are only meaningful on hosts
  with >= 4 usable cores; on narrower hosts they are skipped with the
  core count printed, never silently dropped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def lookup(data: dict, dotted: str):
    node = data
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def find_nulls(node, path: str = "") -> list[str]:
    """Dotted paths of every bare JSON null anywhere under ``node``."""
    if isinstance(node, dict):
        return [p for key, value in node.items()
                for p in find_nulls(value, f"{path}.{key}" if path else key)]
    if isinstance(node, list):
        return [p for i, value in enumerate(node)
                for p in find_nulls(value, f"{path}[{i}]")]
    return [path] if node is None else []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="bench results JSON")
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="allowed fractional drop per gated metric")
    args = parser.parse_args(argv)

    current = json.loads(args.current.read_text())
    baseline = json.loads(args.baseline.read_text())
    gate_metrics = baseline.get("gate_metrics", [])
    if not gate_metrics:
        print(f"{args.baseline}: no gate_metrics declared", file=sys.stderr)
        return 2

    cores = lookup(current, "parallel.cores")
    failures = []
    for path in find_nulls(current):
        failures.append(f"{path}: bare JSON null — undefined metrics must "
                        f"carry a string sentinel naming why")
    print(f"{'metric':<34s} {'baseline':>12s} {'current':>12s} {'ratio':>7s}")
    for metric in gate_metrics:
        if metric.startswith("parallel.speedup") \
                and isinstance(cores, int) and cores < 4:
            # No scheduler parallelizes without cores; report the skip
            # loudly (core count included), don't gate.
            skip = f"(SKIPPED: host has {cores} core(s), gate needs >= 4)"
            print(f"{metric:<34s} {skip:>40s}")
            continue
        base, cur = lookup(baseline, metric), lookup(current, metric)
        if base is None or cur is None:
            failures.append(f"{metric}: missing "
                            f"({'baseline' if base is None else 'current'})")
            continue
        if isinstance(base, str) or isinstance(cur, str):
            # Ratio sentinel (e.g. "taildrop_zero": the denominator policy
            # sustained nothing, so the ratio is undefined). A sentinel on
            # either side means there is no pair of numbers to compare —
            # report it and gate only once both sides are defined. The
            # sentinel is deliberately not None: an *absent* metric still
            # fails above.
            print(f"{metric:<34s} {str(base):>12s} {str(cur):>12s} "
                  f"(not gated: sentinel)")
            continue
        ratio = cur / base if base else float("inf")
        flag = ""
        if cur < base * (1.0 - args.max_regression):
            failures.append(f"{metric}: {cur:.4g} < {base:.4g} "
                            f"- {args.max_regression:.0%}")
            flag = "  << REGRESSION"
        print(f"{metric:<34s} {base:>12.4g} {cur:>12.4g} {ratio:>6.2f}x{flag}")

    if lookup(current, "parallel.all_match_serial") is False:
        failures.append("parallel.all_match_serial: parallel decisions "
                        "diverged from the serial dispatcher")

    if failures:
        print("\nBench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nBench regression gate OK "
          f"(tolerance {args.max_regression:.0%}, "
          f"{len(gate_metrics)} metrics).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
