"""Declarative time-varying workload scenarios.

Every benchmark used to replay the one static Figure-8 mix; real serving
stacks diverge under *time-varying* traffic — load ramps, bursts, attack
floods, heavy-hitter skew, flow churn, concept drift. This module is the
declarative layer that composes the existing :class:`ClassProfile`
generators into exactly those workloads:

- :class:`TrafficBand` — one traffic component of a phase: a profile, how
  many flows it launches, how arrivals ramp across the phase, optional
  Zipf-skewed reuse of a small flow-key pool (heavy hitters), and an
  optional ``drift_to`` profile whose parameters the band interpolates
  toward across the phase (concept drift).
- :class:`PhaseDef` — a named stretch of trace time holding several bands.
- :class:`Scenario` — an ordered tuple of phases. ``generate(seed)``
  materializes a seeded, fully reproducible :class:`ScenarioTrace`: the
  interleaved packet trace, per-packet ground-truth labels, and the
  phase-annotated timeline (:class:`PhaseSpan` per phase).

Reproducibility contract: every flow is generated from its **own**
``spawn_rngs`` child stream (derived from the scenario seed through the
phase/band structure), so the trace is a pure function of
``(scenario, seed, flows_scale)`` — inserting a band or reordering phases
never perturbs the packets of unrelated bands.

Scenarios are registered by name (one call)::

    from repro.net.scenarios import PhaseDef, Scenario, TrafficBand, register_scenario

    register_scenario("my-burst", lambda flows=40, **_: Scenario(
        name="my-burst",
        phases=(PhaseDef("calm", 30.0, (TrafficBand(profile, flows),)),
                PhaseDef("burst", 2.0, (TrafficBand(profile, 6 * flows),))),
    ))

    workload = build_scenario("my-burst").generate(seed=7)

The built-in families live in :mod:`repro.net.scenarios.families`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from repro.net.flow import Flow
from repro.net.packet import FlowKey
from repro.net.synth.base import ClassProfile, generate_flow, random_flow_key
from repro.net.traces import Trace
from repro.utils.rng import new_rng, spawn_rngs

ARRIVAL_RAMPS = ("flat", "up", "down")


@dataclass(frozen=True)
class TrafficBand:
    """One traffic component active during a phase.

    ``flows`` flows of ``profile`` are launched inside the phase window;
    ``ramp`` shapes the arrival-time density across the phase (``"flat"``
    uniform, ``"up"`` linearly increasing, ``"down"`` linearly decreasing).
    ``key_pool`` (heavy-hitter mode) draws each flow's 5-tuple from a pool
    of that many fixed keys with Zipf(``zipf_a``) rank probabilities instead
    of a fresh random key per flow — the same canonical key then carries
    many flowlets, which is what stresses flow-keyed state (decision cache,
    slot table). ``drift_to`` linearly interpolates the numeric profile
    parameters from ``profile`` to it across the phase (concept drift); the
    label and payload signature stay ``profile``'s, so ground truth is
    preserved while the distribution walks away from it.
    """

    profile: ClassProfile
    flows: int
    ramp: str = "flat"
    key_pool: int | None = None
    zipf_a: float = 1.3
    drift_to: ClassProfile | None = None

    def __post_init__(self):
        if self.ramp not in ARRIVAL_RAMPS:
            raise ValueError(f"unknown ramp {self.ramp!r}; choose from {ARRIVAL_RAMPS}")
        if self.flows < 0:
            raise ValueError(f"flows must be >= 0, got {self.flows}")
        if self.key_pool is not None and self.key_pool < 1:
            raise ValueError(f"key_pool must be >= 1 or None, got {self.key_pool}")


@dataclass(frozen=True)
class PhaseDef:
    """A named stretch of trace time with its active traffic bands.

    ``l2_insert=False`` marks a phase whose windows have near-zero repeat
    probability (benign iid mixes): the serving engine then closes the
    approximate-L2 admission gate for the phase's packets, skipping the
    per-miss box-certificate computation and insert churn without changing
    a single decision (the exact L1 stays fully active).
    """

    name: str
    duration: float
    bands: tuple[TrafficBand, ...]
    l2_insert: bool = True

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"phase {self.name!r} duration must be > 0")


@dataclass(frozen=True)
class PhaseSpan:
    """One phase's slice of a materialized trace.

    ``[t_start, t_end)`` is the phase's trace-time window and
    ``[start, stop)`` the half-open packet-index range of the sorted trace
    that falls inside it (the final phase also absorbs packets of flows that
    outlive the declared horizon). ``l2_insert`` carries the phase's L2
    admission gate (see :class:`PhaseDef`).
    """

    name: str
    t_start: float
    t_end: float
    start: int
    stop: int
    l2_insert: bool = True

    @property
    def n_packets(self) -> int:
        return self.stop - self.start


@dataclass
class ScenarioTrace:
    """A materialized scenario: trace + ground truth + phase timeline."""

    scenario: str
    seed: int | None
    trace: Trace
    labels: np.ndarray                  # per-packet ground-truth label
    phases: list[PhaseSpan]

    @property
    def n_packets(self) -> int:
        return len(self.trace.packets)

    def phase_labels(self) -> np.ndarray:
        """Per-packet phase index (position in :attr:`phases`)."""
        out = np.empty(self.n_packets, dtype=np.int64)
        for i, span in enumerate(self.phases):
            out[span.start:span.stop] = i
        return out

    def ts_column(self) -> np.ndarray:
        """Per-packet trace timestamps (float64 seconds, sorted)."""
        return np.asarray([p.ts for p in self.trace.packets],
                          dtype=np.float64)

    def arrival_offsets(self, time_scale: float = 1.0,
                        max_gap: float | None = None) -> np.ndarray:
        """Wall-clock arrival offsets for an open-loop replay of the trace.

        Trace time is scaled by ``time_scale`` (seconds of wall clock per
        second of trace time; 0 collapses the whole trace to t=0).
        ``max_gap`` clips any single scaled inter-arrival gap to that many
        wall seconds — a pacing hook that fast-forwards long idle stretches
        (diurnal troughs, calm-phase tails) without touching the arrival
        order or the dense parts of the schedule, where queueing actually
        happens.
        """
        ts = self.ts_column()
        if self.n_packets == 0:
            return ts
        if time_scale < 0:
            raise ValueError(f"time_scale must be >= 0, got {time_scale}")
        gaps = np.diff(ts, prepend=ts[0]) * float(time_scale)
        if max_gap is not None:
            gaps = np.minimum(gaps, float(max_gap))
        return np.cumsum(gaps)

    def subset(self, indices) -> tuple[Trace, np.ndarray]:
        """The sub-trace (and labels) at the given sorted packet indices.

        The open-loop differential check replays exactly the admitted
        subset through the scalar reference; this is that subset.
        """
        idx = np.asarray(indices, dtype=np.int64)
        return (Trace([self.trace.packets[int(i)] for i in idx]),
                np.asarray(self.labels)[idx])


def _arrival_times(rng: np.random.Generator, n: int, t0: float, duration: float,
                   ramp: str) -> np.ndarray:
    """``n`` sorted arrival timestamps in ``[t0, t0 + duration)``."""
    u = rng.random(n)
    if ramp == "up":        # density grows linearly: inverse-CDF of 2u
        u = np.sqrt(u)
    elif ramp == "down":
        u = 1.0 - np.sqrt(1.0 - u)
    return t0 + duration * np.sort(u)


def _lerp(a: float, b: float, u: float) -> float:
    return float(a + (b - a) * u)


def lerp_profile(a: ClassProfile, b: ClassProfile, u: float) -> ClassProfile:
    """Interpolate the numeric parameters of two profiles (``u`` in [0, 1]).

    Length-mode mixtures interpolate pairwise when both profiles have the
    same number of modes (otherwise the nearer profile's modes are used
    wholesale). Identity fields — name, label, payload signature bytes,
    packet-count bounds — stay ``a``'s: drift moves the *distribution*, not
    the ground truth.
    """
    u = float(np.clip(u, 0.0, 1.0))
    if len(a.len_modes) == len(b.len_modes):
        modes = [(_lerp(ma[0], mb[0], u), _lerp(ma[1], mb[1], u),
                  _lerp(ma[2], mb[2], u))
                 for ma, mb in zip(a.len_modes, b.len_modes)]
    else:
        modes = list(a.len_modes if u < 0.5 else b.len_modes)
    return replace(
        a,
        len_modes=modes,
        ipd_mu=_lerp(a.ipd_mu, b.ipd_mu, u),
        ipd_sigma=_lerp(a.ipd_sigma, b.ipd_sigma, u),
        len_period=_lerp(a.len_period, b.len_period, u),
        len_amp=_lerp(a.len_amp, b.len_amp, u),
        corr=_lerp(a.corr, b.corr, u),
        extra_len_jitter=_lerp(a.extra_len_jitter, b.extra_len_jitter, u),
        motif_prob=_lerp(a.motif_prob, b.motif_prob, u),
        header_noise=_lerp(a.header_noise, b.header_noise, u),
    )


def _zipf_weights(n: int, a: float) -> np.ndarray:
    w = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** a
    return w / w.sum()


@dataclass(frozen=True)
class Scenario:
    """An ordered tuple of phases; ``generate`` materializes it."""

    name: str
    phases: tuple[PhaseDef, ...]
    description: str = ""

    def __post_init__(self):
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} has no phases")
        names = [p.name for p in self.phases]
        if len(set(names)) != len(names):
            raise ValueError(f"scenario {self.name!r} has duplicate phase "
                             f"names: {names}")

    @property
    def horizon(self) -> float:
        """Total declared trace time across all phases."""
        return float(sum(p.duration for p in self.phases))

    def generate(self, seed: int | None = None,
                 flows_scale: float = 1.0) -> ScenarioTrace:
        """Materialize the scenario into a seeded, reproducible workload.

        ``flows_scale`` multiplies every band's flow count (tests and the
        fuzzer shrink workloads with it). Each band gets its own spawned
        RNG child, and each flow its own grandchild, so the result is a
        pure function of ``(self, seed, flows_scale)``.
        """
        if flows_scale <= 0:
            raise ValueError(f"flows_scale must be > 0, got {flows_scale}")
        root = new_rng(seed)
        band_rngs = iter(spawn_rngs(root, sum(len(p.bands) for p in self.phases)))

        flows: list[Flow] = []
        t0 = 0.0
        for phase in self.phases:
            for band in phase.bands:
                rng = next(band_rngs)
                n = int(round(band.flows * flows_scale))
                if n <= 0:
                    continue
                starts = _arrival_times(rng, n, t0, phase.duration, band.ramp)
                keys: list[FlowKey | None] = [None] * n
                if band.key_pool is not None:
                    pool = [random_flow_key(rng) for _ in range(band.key_pool)]
                    picks = rng.choice(len(pool), size=n,
                                       p=_zipf_weights(len(pool), band.zipf_a))
                    keys = [pool[int(i)] for i in picks]
                flow_rngs = spawn_rngs(rng, n)
                for i in range(n):
                    profile = band.profile
                    if band.drift_to is not None:
                        u = (float(starts[i]) - t0) / phase.duration
                        profile = lerp_profile(profile, band.drift_to, u)
                    flows.append(generate_flow(profile, flow_rngs[i],
                                               start_ts=float(starts[i]),
                                               key=keys[i]))
            t0 += phase.duration

        packets = [p for f in flows for p in f.packets]
        labels = np.asarray([f.label for f in flows for _ in f.packets],
                            dtype=np.int64)
        ts = np.asarray([p.ts for p in packets], dtype=np.float64)
        order = np.argsort(ts, kind="stable")
        trace = Trace([packets[i] for i in order])
        labels = labels[order]
        ts = ts[order]

        spans: list[PhaseSpan] = []
        t0 = 0.0
        for i, phase in enumerate(self.phases):
            t1 = t0 + phase.duration
            start = int(np.searchsorted(ts, t0, side="left"))
            stop = (len(ts) if i == len(self.phases) - 1
                    else int(np.searchsorted(ts, t1, side="left")))
            spans.append(PhaseSpan(name=phase.name, t_start=t0, t_end=t1,
                                   start=start, stop=stop,
                                   l2_insert=phase.l2_insert))
            t0 = t1
        return ScenarioTrace(scenario=self.name, seed=seed, trace=trace,
                             labels=labels, phases=spans)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_SCENARIOS: dict[str, Callable[..., Scenario]] = {}


def register_scenario(name: str, factory: Callable[..., Scenario] | None = None,
                      *, overwrite: bool = False):
    """Register a scenario factory under ``name`` (usable as a decorator).

    ``factory(**params) -> Scenario`` builds the scenario; parameters are
    factory-specific sizing knobs (the built-ins take ``flows`` and
    ``dataset``). Registering an existing name raises unless
    ``overwrite=True``.
    """
    def _register(fn):
        if not overwrite and name in _SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered "
                             "(pass overwrite=True to replace)")
        _SCENARIOS[name] = fn
        return fn
    return _register if factory is None else _register(factory)


def unregister_scenario(name: str) -> None:
    _SCENARIOS.pop(name, None)


def scenario_names() -> tuple[str, ...]:
    """All registered scenario family names, sorted."""
    return tuple(sorted(_SCENARIOS))


def build_scenario(name: str, **params) -> Scenario:
    """Instantiate one registered scenario family."""
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; choose from "
                         f"{scenario_names()}") from None
    return factory(**params)
