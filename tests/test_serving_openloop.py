"""The open-loop serving front-end: pump, admission policies, SLO reports.

The headline contracts: with ``time_scale=0`` and ``admission="none"`` the
open-loop decision stream is **bit-identical** to closed-loop replay; every
admission policy records exactly which packets it shed, and the
differential harness (:func:`repro.eval.differential.verify_open_loop`)
proves the claimed admitted subset replays bit-identically against a cold
scalar reference — including catching a deliberately lying policy. Plus:
typed validation of the new config knobs, the admission-policy registry,
the per-phase L2 admission gate, and deterministic pump/policy unit tests.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.eval.differential import (install_lying_admission_policy,
                                     verify_open_loop)
from repro.net.scenarios import build_scenario
from repro.serving import (AimdAdmission, EngineConfig, LatencySummary,
                           NoAdmission, OpenLoopPump, OpenLoopReport,
                           PegasusEngine, TailDropAdmission,
                           register_admission_policy)
from repro.serving import engine as engine_mod

BATCH = 32


def tiny(name, seed=0, scale=0.25):
    return build_scenario(name).generate(seed=seed, flows_scale=scale)


def _config(**kw):
    kw.setdefault("feature_mode", "stats")
    kw.setdefault("batch_size", BATCH)
    return EngineConfig(**kw)


# ---------------------------------------------------------------------------
# Config + registry
# ---------------------------------------------------------------------------

class TestOpenLoopConfig:
    @pytest.mark.parametrize("kwargs,field", [
        (dict(admission="nope"), "admission"),
        (dict(queue_capacity=0), "queue_capacity"),
        (dict(p99_target_ms=0.0), "p99_target_ms"),
        (dict(p99_target_ms=-5.0), "p99_target_ms"),
        (dict(time_scale=-0.1), "time_scale"),
    ])
    def test_typed_validation(self, kwargs, field):
        with pytest.raises(ConfigError) as exc:
            EngineConfig(**kwargs)
        assert exc.value.field == field

    def test_aimd_requires_target(self, compiled16, replay_flows):
        # The knob combination is only checked when the policy is built:
        # aimd without a latency target has no feedback signal to track.
        config = _config(admission="aimd")        # valid as a config...
        engine = PegasusEngine.from_compiled(compiled16, config)
        with pytest.raises(ConfigError, match="p99_target_ms"):
            engine.serve(replay_flows, mode="open")

    def test_admission_policy_round_trip(self, compiled16, replay_flows):
        register_admission_policy("everything", lambda config: NoAdmission())
        try:
            config = _config(admission="everything")
            report = PegasusEngine.from_compiled(compiled16, config) \
                .serve(replay_flows, mode="open")
            assert report.shed == 0
            with pytest.raises(ConfigError, match="already registered"):
                register_admission_policy("everything",
                                          lambda config: NoAdmission())
            register_admission_policy("everything",
                                      lambda config: NoAdmission(),
                                      overwrite=True)
        finally:
            engine_mod.admission_policies.unregister("everything")
        with pytest.raises(ConfigError, match="admission"):
            EngineConfig(admission="everything")

    def test_serve_mode_validation(self, compiled16, replay_flows):
        engine = PegasusEngine.from_compiled(compiled16, _config())
        with pytest.raises(ConfigError, match="mode"):
            engine.serve(replay_flows, mode="half-open")
        with pytest.raises(ConfigError, match="workload"):
            engine.serve(42)


# ---------------------------------------------------------------------------
# Policy + pump unit tests (deterministic, engine-free)
# ---------------------------------------------------------------------------

class TestPolicies:
    def test_no_admission_ignores_depth(self):
        policy = NoAdmission()
        assert all(policy.admit(i, depth, 0.0)
                   for i, depth in enumerate((0, 10, 10**6)))

    def test_tail_drop_caps_depth(self):
        policy = TailDropAdmission(queue_capacity=4)
        assert policy.admit(0, 3, 0.0)
        assert not policy.admit(1, 4, 0.0)
        assert not policy.admit(2, 5, 0.0)

    def test_aimd_cut_and_recover(self):
        policy = AimdAdmission(queue_capacity=100, target_s=0.1)
        assert policy.rate == 1.0
        # Sojourn above backoff_fraction * target cuts multiplicatively.
        policy.observe(1, 0.06, 0, now=1.0)
        assert policy.rate == pytest.approx(0.5)
        # ...but cuts are cooldown-limited: an immediate second signal
        # within cooldown_s must not compound.
        policy.observe(1, 0.06, 0, now=1.001)
        assert policy.rate == pytest.approx(0.5)
        # Quiet periods recover additively.
        policy.observe(1, 0.001, 0, now=2.0)
        assert policy.rate == pytest.approx(0.55)
        # A full queue is the hard backstop: shed + cut.
        assert not policy.admit(0, depth=100, now=3.0)
        assert policy.rate == pytest.approx(0.275)

    def test_aimd_rate_floors(self):
        policy = AimdAdmission(queue_capacity=10, target_s=0.1,
                               min_rate=0.25, cooldown_s=0.0)
        for k in range(20):
            policy.observe(1, 1.0, 0, now=float(k))
        assert policy.rate == 0.25

    def test_latency_summary(self):
        s = LatencySummary.from_seconds(np.linspace(0.001, 0.1, 1000))
        assert s.n == 1000
        assert 0 < s.p50_ms < s.p99_ms < s.p999_ms <= s.max_ms
        empty = LatencySummary.from_seconds(np.array([]))
        assert empty.n == 0 and empty.p99_ms == 0.0


class TestPump:
    @staticmethod
    def _echo_chunk(indices):
        return [int(i) for i in indices]

    def test_sync_drain_preserves_fifo_order(self):
        pump = OpenLoopPump(10, None, self._echo_chunk, NoAdmission(),
                            drain_max=4)
        result = pump.run()
        assert result.decisions == list(range(10))
        assert result.served == 10
        assert result.shed_seq.size == 0
        assert np.array_equal(result.admitted_seq, np.arange(10))

    def test_sync_tail_drop_is_deterministic(self):
        # capacity < drain_max: the queue fills to capacity before a drain
        # ever triggers, so exactly the first `capacity` packets survive.
        pump = OpenLoopPump(10, None, self._echo_chunk,
                            TailDropAdmission(queue_capacity=3), drain_max=5)
        result = pump.run()
        assert result.decisions == [0, 1, 2]
        assert list(result.shed_seq) == list(range(3, 10))
        assert np.array_equal(result.shed_seq, result.actual_shed)

    def test_drain_max_validated(self):
        with pytest.raises(ValueError, match="drain_max"):
            OpenLoopPump(1, None, self._echo_chunk, NoAdmission(),
                         drain_max=0)


# ---------------------------------------------------------------------------
# Engine integration
# ---------------------------------------------------------------------------

class TestOpenLoopServe:
    def test_sync_none_bit_identical_to_closed(self, compiled16):
        """time_scale=0 + admission="none": same decisions as closed loop."""
        w = tiny("heavy_hitters", seed=1, scale=0.4)
        config = _config(decision_cache=True)
        with PegasusEngine.from_compiled(compiled16, config) as eng:
            closed = eng.serve(w.trace, labels=w.labels)
        with PegasusEngine.from_compiled(compiled16, config) as eng:
            open_rep = eng.serve(w, mode="open")
        assert isinstance(open_rep, OpenLoopReport)
        assert open_rep.serving.decisions == closed.decisions
        assert open_rep.admitted == w.n_packets and open_rep.shed == 0
        assert open_rep.meets_target is None       # no target configured
        assert open_rep.latency.n == len(open_rep.serving.decisions) \
            or open_rep.latency.n == open_rep.admitted

    def test_shed_subset_verifies_bit_identical(self, compiled16):
        """Tail-drop sheds; the differential harness accepts the claim."""
        w = tiny("attack_flood", seed=2, scale=0.3)
        config = _config(admission="tail-drop", queue_capacity=16)
        with PegasusEngine.from_compiled(compiled16, config) as eng:
            report = eng.serve(w, mode="open")
        assert 0 < report.shed < report.offered
        both = np.concatenate([report.admitted_seq, report.shed_seq])
        assert np.array_equal(np.sort(both), np.arange(w.n_packets))
        assert report.serving.n_packets == report.admitted
        assert verify_open_loop(w, report, compiled16) == []

    def test_lying_policy_is_caught(self, compiled16):
        """A policy that under-reports its sheds must fail verification."""
        name = install_lying_admission_policy()
        try:
            w = tiny("attack_flood", seed=2, scale=0.3)
            config = _config(admission=name, queue_capacity=16)
            with PegasusEngine.from_compiled(compiled16, config) as eng:
                report = eng.serve(w, mode="open")
            notes = verify_open_loop(w, report, compiled16)
            assert notes and any("admitted" in note for note in notes)
        finally:
            engine_mod.admission_policies.unregister(name)

    def test_paced_replay_with_aimd(self, compiled16):
        """Threaded pacing: the report carries latency/queue telemetry."""
        w = tiny("microburst", seed=3, scale=0.2)
        span_s = w.phases[-1].t_end - w.phases[0].t_start
        config = _config(admission="aimd", queue_capacity=256,
                         p99_target_ms=50.0,
                         time_scale=0.05 / max(span_s, 1e-9))
        with PegasusEngine.from_compiled(compiled16, config) as eng:
            report = eng.serve(w, mode="open", max_gap=0.01)
        assert report.offered == w.n_packets
        assert report.admitted + report.shed == report.offered
        assert report.wall_seconds > 0 and report.admitted_pps > 0
        assert report.meets_target in (True, False)
        assert [s.name for s, _ in report.phases] == \
            [s.name for s in w.phases]
        assert sum(p.offered for _, p in report.phases) == report.offered
        assert report.queue_depth_timeline
        with pytest.raises(KeyError, match="no phase"):
            report.phase("nope")

    def test_open_mode_wraps_plain_workloads(self, compiled16, replay_flows):
        """Flows/traces get a single synthetic phase span in open mode."""
        with PegasusEngine.from_compiled(compiled16, _config()) as eng:
            report = eng.serve(replay_flows, mode="open")
        assert report.scenario == "<trace>"
        assert [s.name for s, _ in report.phases] == ["trace"]
        assert report.shed == 0
        summary = report.summary()
        assert summary["admission"] == "none"
        assert set(summary["phases"]) == {"trace"}


# ---------------------------------------------------------------------------
# Per-phase L2 admission gate (cold-phase cache-thrash fix)
# ---------------------------------------------------------------------------

class TestPhaseL2Gate:
    def test_cold_phases_skip_l2_inserts(self, compiled16):
        """Diurnal phases are churn-heavy: they gate L2 inserts off."""
        w = tiny("diurnal", seed=4, scale=0.3)
        assert all(not s.l2_insert for s in w.phases)
        config = _config(decision_cache="l1+l2")
        with PegasusEngine.from_compiled(compiled16, config) as eng:
            gated = eng.serve(w)
        assert gated.overall.cache_stats.l2_skipped > 0
        with PegasusEngine.from_compiled(compiled16, _config()) as eng:
            plain = eng.serve(w)
        # The gate changes caching, never decisions.
        assert gated.overall.decisions == plain.overall.decisions

    def test_warm_phases_keep_l2_inserts(self, compiled16):
        w = tiny("heavy_hitters", seed=1, scale=0.3)
        assert all(s.l2_insert for s in w.phases)
        config = _config(decision_cache="l1+l2")
        with PegasusEngine.from_compiled(compiled16, config) as eng:
            report = eng.serve(w)
        assert report.overall.cache_stats.l2_skipped == 0
