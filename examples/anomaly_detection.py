"""Unsupervised malicious-traffic detection with the dataplane AutoEncoder.

Reproduces the paper's §7.4 workflow: train on benign traffic only, compile
the reconstruction-error scorer to additive mapping tables, then detect
malware C2 and an SSDP reflection flood that the model never saw.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro.eval.metrics import auc_score
from repro.models import build_model
from repro.net import make_dataset, make_attack_flows, ATTACK_NAMES
from repro.net.features import dataset_views


def main():
    print("=== train AutoEncoder on benign PeerRush traffic ===")
    dataset = make_dataset("peerrush", flows_per_class=100, seed=0)
    train_flows, _val, test_flows = dataset.split(rng=0)
    train_views = dataset_views(train_flows)
    test_views = dataset_views(test_flows)

    model = build_model("AutoEncoder", dataset.n_classes, seed=0)
    model.train(train_views)
    model.compile_dataplane(train_views)
    benign_scores = model.score_dataplane(test_views)
    print(f"benign test windows: {len(benign_scores)}, "
          f"mean MAE score {benign_scores.mean():.4f}")

    print("\n=== inject unknown attacks (1:4 attack:benign) ===")
    threshold = float(np.quantile(benign_scores, 0.95))
    print(f"alert threshold (95th benign percentile): {threshold:.4f}\n")
    print(f"{'attack':8s} {'AUC':>7s} {'detect@5%FPR':>13s}")
    for i, attack in enumerate(ATTACK_NAMES):
        flows = make_attack_flows(attack, n_flows=40, seed=100 + i)
        attack_views = dataset_views(flows)
        scores = model.score_dataplane(attack_views)
        take = max(len(benign_scores) // 4, 1)
        scores = scores[:take]
        labels = np.concatenate([np.zeros(len(benign_scores)), np.ones(len(scores))])
        mixed = np.concatenate([benign_scores, scores])
        auc = auc_score(labels, mixed)
        detect = (scores > threshold).mean()
        print(f"{attack:8s} {auc:7.4f} {detect:13.3f}")

    print("\nOn a real deployment the switch would rate-limit or alert on "
          "flows whose MAE score exceeds the threshold (paper §7.4).")


if __name__ == "__main__":
    main()
