"""Figure 7: CNN-L accuracy vs per-flow storage (28 / 44 / 72 bits).

Paper's shape: accuracy rises with per-flow bits, and even the 28-bit
variant stays within a few points of the full model while using less
stateful SRAM than Leo/N3IC (80 b) and BoS (72 b).
"""

from repro.eval.reporting import render_table
from repro.eval.runner import run_fig7
from repro.net import DATASET_NAMES


def _run(scale):
    return run_fig7(flows_per_class=scale["flows_per_class"], seed=scale["seed"])


def test_fig7(benchmark, bench_scale):
    variants = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = [[v["label"], v["bits_per_flow"], f"{v['sram_frac_1m']:.1%}"]
            + [v["f1"][d] for d in DATASET_NAMES] for v in variants]
    print()
    print(render_table(["variant", "bits/flow", "SRAM@1M", *DATASET_NAMES],
                       rows, title="Figure 7 — accuracy vs per-flow storage"))

    assert [v["bits_per_flow"] for v in variants] == [28, 44, 72]
    # More per-flow state never hurts much; 72b >= 28b on average.
    def avg(v):
        return sum(v["f1"].values()) / len(v["f1"])
    assert avg(variants[2]) >= avg(variants[0]) - 0.02
    # Even 28 bits/flow keeps CNN-L strong (paper: >= 0.92 everywhere).
    assert avg(variants[0]) > 0.85
    # SRAM for 1M flows scales linearly with bits/flow.
    assert variants[2]["sram_frac_1m"] > variants[0]["sram_frac_1m"]
