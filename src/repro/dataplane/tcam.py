"""Vectorized TCAM emulation: prioritized ternary lookup as the switch does it.

The fancy-index path of :class:`repro.core.mapping.SegmentTable` answers a
fuzzy lookup by walking the clustering tree — numerically right, but not how
the hardware works. A PISA switch holds the tree as a **prioritized TCAM**:
packed (value, mask, priority) rows matched associatively, first match (lowest
priority number) wins. This module compiles a fuzzy segment into exactly that
shape and answers whole batches with masked-compare + priority reduction, so
the emulated lookup is bit-identical to both
:func:`repro.core.crc.lookup_prioritized` (the scalar TCAM reference) and the
tree walk the SRAM path uses.

Two encodings are materialized, mirroring the two the paper's compiler counts
(§6.1, :meth:`repro.core.fuzzy.FuzzyTree.tcam_entries`):

- **flat** — every leaf box expands into the cross product of its
  per-dimension prefix covers: one wide table, one lookup, entry count can
  blow up for deep trees over wide segments;
- **levelwise** — the multi-level comparator: each internal tree node becomes
  a small single-field table whose entries come from
  :func:`~repro.core.crc.consecutive_range_coding` (``x <= t`` coded as a
  priority-ordered prefix set over ``[0, t]`` plus a catch-all), and a batch
  walks the levels with vectorized per-node lookups.

``encoding="auto"`` picks whichever needs fewer entries — the same choice the
resource accounting makes, so the emulated layout is the accounted layout.

Keys are fixed-width like the hardware's: signed fields use excess-K (offset)
encoding and every key is clamped into the ``key_bits`` domain before
matching. For trees fitted on data inside the domain (every tree
``materialize`` builds) the clamp is exact: thresholds lie strictly inside
the domain, so out-of-range keys route identically to the tree walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.crc import PrioritizedEntry, TernaryMatch, consecutive_range_coding
from repro.core.fuzzy import FuzzyNode, FuzzyTree
from repro.errors import CompilationError, ShapeError
from repro.dataplane.tables import ternary_entries_for_tree

TCAM_ENCODINGS = ("auto", "flat", "levelwise", "pruned")

# "pruned" forces the flat (single wide table) encoding so the interval
# pre-index has one scan to prune — unless the flat cross-product expansion
# exceeds this many entries (deep trees over wide segments, e.g. the
# two-stage 60-dim extractor), in which case it keeps levelwise and pruning
# is a no-op. Decisions are unaffected either way.
PRUNED_MAX_FLAT_ENTRIES = 1 << 14


def _domain(key_bits: int, signed: bool) -> tuple[int, int]:
    lo = -(1 << (key_bits - 1)) if signed else 0
    return lo, lo + (1 << key_bits) - 1


def encode_keys(x: np.ndarray, key_bits: int, signed: bool) -> np.ndarray:
    """Excess-K encode a (N, d) key batch into the unsigned match domain.

    Keys must be integral (the dataplane only ever sees integers); they are
    clamped into the ``key_bits`` domain first, exactly as a fixed-width
    hardware key field truncates its input range.
    """
    x = np.asarray(x)
    if x.dtype.kind == "f":
        if not np.all(np.floor(x) == x):
            raise ShapeError("TCAM keys must be integral")
    x = x.astype(np.int64)
    lo, hi = _domain(key_bits, signed)
    return np.clip(x, lo, hi) - lo


@dataclass
class PrunedMatchIndex:
    """Interval pre-index over one key field of a priority-sorted table.

    Every prefix-mask ternary entry matches, on each field, exactly the
    key interval ``[value, value | ~mask]``. Projecting all entries onto the
    most selective field and cutting its domain at the distinct interval
    endpoints yields *elementary segments*: within one segment every key has
    the same candidate entry set. The index stores, per segment, the
    candidate rows **in table (priority) order**, so the first match within
    a candidate list is the global first match — the pruned scan is provably
    first-match-identical to the full scan, it just compares each key
    against ``avg_candidates`` rows instead of ``n_entries``.
    """

    field_idx: int               # which key field the segments cut
    bounds: np.ndarray           # (n_segments,) segment start keys, sorted
    candidates: list             # per segment: np.ndarray of row indices
    avg_candidates: float        # mean candidate-list length (diagnostics)
    _padded: object = field(default=None, init=False, repr=False, compare=False)

    def segment_of(self, keys_f: np.ndarray) -> np.ndarray:
        """Elementary-segment id per key (keys clamped into the domain)."""
        return np.clip(np.searchsorted(self.bounds, keys_f, side="right") - 1,
                       0, len(self.bounds) - 1)

    def padded_candidates(self) -> np.ndarray:
        """(n_segments, max_candidates) candidate rows, -1 padded.

        Rows stay in table (priority) order, so a row-wise first True over
        this matrix is the winning entry. Built once, lazily: the padded
        form is what lets the pruned lookup run as one vectorized gather +
        compare instead of a per-segment Python loop.
        """
        if self._padded is None:
            width = max((len(c) for c in self.candidates), default=0)
            padded = np.full((len(self.candidates), max(width, 1)), -1,
                             dtype=np.int64)
            for s, cand in enumerate(self.candidates):
                padded[s, :len(cand)] = cand
            self._padded = padded
        return self._padded


def _is_prefix_mask(masks: np.ndarray, key_bits: int) -> bool:
    """True when every mask is a prefix mask (contiguous high bits).

    Prefix masks are exactly the masks whose matched key set is one interval
    ``[value, value | ~mask]`` — the property the interval pre-index needs.
    All CRC / range-to-prefix compilations emit prefix masks.
    """
    domain_mask = (1 << key_bits) - 1
    inv = (~np.asarray(masks, dtype=np.int64)) & domain_mask
    return bool(np.all((inv & (inv + 1)) == 0))


@dataclass
class PackedTernaryTable:
    """Prioritized ternary entries packed into columnar NumPy arrays.

    ``values``/``masks`` are (n_entries, n_fields) in the unsigned (encoded)
    key domain; ``priorities`` orders first-match-wins resolution (lower
    wins, ties broken by entry order, exactly like
    :func:`~repro.core.crc.lookup_prioritized`); ``results`` is what a
    matching entry reports.
    """

    values: np.ndarray
    masks: np.ndarray
    priorities: np.ndarray
    results: np.ndarray
    key_bits: int
    signed: bool = False
    # Lazily built pruned-match interval index (None until requested;
    # False when the entries are not all prefix masks and pruning is
    # impossible — the pruned lookup then falls back to the full scan).
    _pruned: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self):
        self.priorities = np.asarray(self.priorities, dtype=np.int64)
        self.results = np.asarray(self.results, dtype=np.int64)
        self.values = np.asarray(self.values, dtype=np.int64).reshape(len(self.priorities), -1)
        self.masks = np.asarray(self.masks, dtype=np.int64).reshape(self.values.shape)
        # Hardware stores value&mask; normalizing here makes the comparison
        # below a single equality per field.
        self.values = self.values & self.masks
        # Store rows in (priority, insertion order) — a stable sort keeps
        # lookup_prioritized's tie-break — so first-match resolution is a
        # plain argmax over the bool match matrix, with no per-lookup
        # (N, n_entries) int64 priority materialization.
        order = np.argsort(self.priorities, kind="stable")
        if not np.array_equal(order, np.arange(len(order))):
            self.values = self.values[order]
            self.masks = self.masks[order]
            self.priorities = self.priorities[order]
            self.results = self.results[order]

    @property
    def n_entries(self) -> int:
        return self.values.shape[0]

    @property
    def n_fields(self) -> int:
        return self.values.shape[1]

    @classmethod
    def from_prioritized(
        cls, entries: list[PrioritizedEntry], key_bits: int, signed: bool = False
    ) -> "PackedTernaryTable":
        """Pack a single-field :class:`PrioritizedEntry` list (CRC output)."""
        return cls(
            values=np.asarray([[e.match.value] for e in entries]),
            masks=np.asarray([[e.match.mask] for e in entries]),
            priorities=np.asarray([e.priority for e in entries]),
            results=np.asarray([e.result for e in entries]),
            key_bits=key_bits,
            signed=signed,
        )

    def lookup_encoded(self, keys_u: np.ndarray,
                       pruned: bool = False) -> np.ndarray:
        """First-match results for already-encoded (N, n_fields) keys.

        ``pruned=True`` resolves each key against its elementary segment's
        candidate rows (see :meth:`pruned_index`) instead of all
        ``n_entries`` — bit-identical results, fewer compares; tables whose
        masks are not all prefix masks silently use the full scan.
        """
        keys_u = np.asarray(keys_u, dtype=np.int64)
        if keys_u.ndim == 1:
            keys_u = keys_u[:, None]
        if keys_u.shape[1] != self.n_fields:
            raise ShapeError(f"expected {self.n_fields} key fields, got {keys_u.shape[1]}")
        if pruned:
            index = self.pruned_index()
            if index is not None:
                return self._lookup_pruned(keys_u, index)
        matched = np.ones((len(keys_u), self.n_entries), dtype=bool)
        for f in range(self.n_fields):
            matched &= (keys_u[:, f, None] & self.masks[None, :, f]) == self.values[None, :, f]
        # Rows are priority-sorted (see __post_init__): the first matching
        # row IS the winning entry.
        pick = matched.argmax(axis=1)
        if len(keys_u):
            hit = matched[np.arange(len(keys_u)), pick]
            if not hit.all():
                missed = int(np.nonzero(~hit)[0][0])
                raise LookupError(f"no TCAM entry matches key {keys_u[missed]}")
        return self.results[pick]

    def lookup(self, x: np.ndarray, pruned: bool = False) -> np.ndarray:
        """First-match results for a raw-domain (N, n_fields) key batch."""
        return self.lookup_encoded(encode_keys(x, self.key_bits, self.signed),
                                   pruned=pruned)

    # -- pruned match kernel --------------------------------------------------

    def pruned_index(self) -> PrunedMatchIndex | None:
        """Build (once) the elementary-segment interval index.

        Returns None when any entry carries a non-prefix mask — then no
        field's match set is a single interval and candidate pruning would
        be unsound, so the pruned lookup degrades to the full scan.
        """
        if self._pruned is None:
            self._pruned = self._build_pruned_index() or False
        return self._pruned if self._pruned is not False else None

    def _build_pruned_index(self) -> PrunedMatchIndex | None:
        if self.n_entries == 0 or not _is_prefix_mask(self.masks, self.key_bits):
            return None
        domain_mask = (1 << self.key_bits) - 1
        inv = (~self.masks) & domain_mask
        lo_all = self.values                    # value & mask (normalized)
        hi_all = self.values | inv
        best = None
        for f in range(self.n_fields):
            lo, hi = lo_all[:, f], hi_all[:, f]
            # Elementary segments: cut the field domain at every interval
            # endpoint. Within a segment the candidate set is constant.
            bounds = np.unique(np.concatenate(([0], lo, hi + 1)))
            bounds = bounds[bounds <= domain_mask]
            starts = bounds                     # segment s covers [bounds[s], next)
            covers = (lo[None, :] <= starts[:, None]) & (starts[:, None] <= hi[None, :])
            # Expected candidates for a uniform key: weight each segment's
            # candidate count by its width. Picks the most selective field.
            ends = np.append(bounds[1:], domain_mask + 1)
            widths = ends - bounds
            avg = float((covers.sum(axis=1) * widths).sum()) / (domain_mask + 1)
            if best is None or avg < best[0]:
                cands = [np.nonzero(covers[s])[0] for s in range(len(bounds))]
                best = (avg, PrunedMatchIndex(
                    field_idx=f, bounds=bounds, candidates=cands,
                    avg_candidates=float(np.mean([len(c) for c in cands]))))
        return best[1] if best else None

    def candidate_rows(self, keys_u: np.ndarray) -> list[np.ndarray]:
        """Per-key candidate row sets the pruned kernel would scan.

        Exposed for the property tests: for every key, the candidates must
        be a superset of the full scan's winning (argmin-priority) row.
        Empty list when the table has no usable pruned index.
        """
        index = self.pruned_index()
        if index is None:
            return []
        keys_u = np.asarray(keys_u, dtype=np.int64)
        if keys_u.ndim == 1:
            keys_u = keys_u[:, None]
        seg = index.segment_of(keys_u[:, index.field_idx])
        return [index.candidates[int(s)] for s in seg]

    # Workspace bound for the pruned compare: each chunk materializes about
    # this many (key, candidate) cells per field, keeping the gathered
    # masks/values slices cache-friendly for any batch size.
    _PRUNED_CELLS = 1 << 17

    def _lookup_pruned(self, keys_u: np.ndarray,
                       index: PrunedMatchIndex) -> np.ndarray:
        n = len(keys_u)
        out = np.empty(n, dtype=np.int64)
        if n == 0:
            return out
        seg = index.segment_of(keys_u[:, index.field_idx])
        padded = index.padded_candidates()      # (n_segments, C), -1 padded
        chunk = max(1, self._PRUNED_CELLS // padded.shape[1])
        for s in range(0, n, chunk):
            ks = keys_u[s:s + chunk]
            cs = padded[seg[s:s + chunk]]       # per-key candidate rows
            rows = np.maximum(cs, 0)            # pad-safe gather indices
            # One vectorized first-match over the candidate lists: the lists
            # keep table (priority) order, so argmax IS the winning entry.
            matched = ((ks[:, None, :] & self.masks[rows])
                       == self.values[rows]).all(axis=2)
            matched &= cs >= 0
            pick = matched.argmax(axis=1)
            ar = np.arange(len(ks))
            hit = matched[ar, pick]
            if not hit.all():
                missed = s + int(np.nonzero(~hit)[0][0])
                raise LookupError(
                    f"no TCAM entry matches key {keys_u[missed]}")
            out[s:s + chunk] = self.results[cs[ar, pick]]
        return out

    def entries(self) -> list[PrioritizedEntry]:
        """The scalar view: fields packed into one wide match, MSB first.

        Feeding these to :func:`repro.core.crc.lookup_prioritized` with the
        correspondingly packed key must reproduce :meth:`lookup` bit for bit
        — the cross-check the equivalence tests run.
        """
        width = self.n_fields * self.key_bits
        out = []
        for e in range(self.n_entries):
            value = mask = 0
            for f in range(self.n_fields):
                shift = (self.n_fields - 1 - f) * self.key_bits
                value |= int(self.values[e, f]) << shift
                mask |= int(self.masks[e, f]) << shift
            match = TernaryMatch(value=value, mask=mask, width=width)
            entry = PrioritizedEntry(
                match=match, priority=int(self.priorities[e]), result=int(self.results[e])
            )
            out.append(entry)
        return out

    def pack_keys(self, x: np.ndarray) -> list[int]:
        """Encode + pack raw keys into the scalar ints :meth:`entries` match."""
        enc = encode_keys(x, self.key_bits, self.signed)
        shifts = [(self.n_fields - 1 - f) * self.key_bits for f in range(self.n_fields)]
        return [sum(int(row[f]) << shifts[f] for f in range(self.n_fields)) for row in enc]


@dataclass
class LevelwiseNode:
    """One internal tree node as a single-field CRC table (0=left, 1=right)."""

    feature: int
    table: PackedTernaryTable
    left: "LevelwiseNode | int"
    right: "LevelwiseNode | int"


@dataclass
class TcamSegment:
    """One fuzzy segment compiled to its prioritized-TCAM execution form.

    ``lookup_indices`` answers a raw-domain key batch with the fuzzy (leaf)
    index per row — the drop-in TCAM replacement for
    :meth:`FuzzyTree.predict_index` that
    :meth:`repro.core.mapping.SegmentTable.lookup` dispatches to when
    ``lookup_backend="tcam"``.
    """

    key_bits: int
    signed: bool
    encoding: str
    n_leaves: int
    dim: int
    flat: PackedTernaryTable | None = None
    root: "LevelwiseNode | int | None" = None
    _flat_count: int = field(default=0, repr=False)
    _levelwise_count: int = field(default=0, repr=False)

    @classmethod
    def from_tree(
        cls, tree: FuzzyTree, key_bits: int = 8, signed: bool = False, encoding: str = "auto"
    ) -> "TcamSegment":
        """Compile a fitted clustering tree into TCAM form.

        ``encoding="auto"`` materializes whichever of flat / levelwise needs
        fewer entries — the same ``min`` the resource accounting
        (:meth:`FuzzyTree.tcam_entries`) charges for.
        """
        if encoding not in TCAM_ENCODINGS:
            msg = f"unknown TCAM encoding {encoding!r}; expected one of {TCAM_ENCODINGS}"
            raise CompilationError(msg)
        lo, hi = _domain(key_bits, signed)
        flat_count = tree._tcam_entries_flat(key_bits, signed)
        levelwise_count = tree._tcam_entries_levelwise(key_bits, signed)
        if encoding == "auto":
            encoding = "flat" if flat_count < levelwise_count else "levelwise"
        elif encoding == "pruned":
            # The pruned kernel needs one wide scan to prune, so it prefers
            # flat even where auto would pick levelwise (many tiny per-node
            # lookups cost more than one pruned wide lookup) — unless flat
            # blows up, in which case levelwise stays and pruning no-ops.
            encoding = ("flat" if flat_count <= PRUNED_MAX_FLAT_ENTRIES
                        else "levelwise")
        seg = cls(
            key_bits=key_bits,
            signed=signed,
            encoding=encoding,
            n_leaves=tree.n_leaves,
            dim=tree.dim,
        )
        seg._flat_count = flat_count
        seg._levelwise_count = levelwise_count
        if encoding == "flat":
            ternary = ternary_entries_for_tree(tree, key_bits=key_bits, signed=signed)
            if not ternary:
                raise CompilationError("flat expansion produced no entries")
            seg.flat = PackedTernaryTable(
                values=np.asarray([t.values for t in ternary]),
                masks=np.asarray([t.masks for t in ternary]),
                priorities=np.arange(len(ternary)),
                results=np.asarray([t.result for t in ternary]),
                key_bits=key_bits,
                signed=signed,
            )
        else:
            seg.root = cls._compile_levelwise(tree.root, key_bits, signed, lo, hi)
        return seg

    @staticmethod
    def _compile_levelwise(
        node: FuzzyNode | int, key_bits: int, signed: bool, lo: int, hi: int
    ) -> "LevelwiseNode | int":
        if isinstance(node, int):
            return node
        # Integer keys route left iff key <= floor(threshold); CRC codes
        # exactly that boundary in the encoded (excess-K) domain.
        boundary = int(np.clip(np.floor(node.threshold), lo, hi)) - lo
        table = PackedTernaryTable.from_prioritized(
            consecutive_range_coding([boundary], key_bits), key_bits, signed=signed
        )
        return LevelwiseNode(
            feature=node.feature,
            table=table,
            left=TcamSegment._compile_levelwise(node.left, key_bits, signed, lo, hi),
            right=TcamSegment._compile_levelwise(node.right, key_bits, signed, lo, hi),
        )

    @property
    def n_entries(self) -> int:
        """Materialized TCAM entry count (what the encoding actually costs)."""
        if self.encoding == "flat":
            return self._flat_count
        return self._levelwise_count

    def lookup_indices(self, x: np.ndarray, pruned: bool = False) -> np.ndarray:
        """Fuzzy (leaf) indices for a raw-domain key batch (N, dim).

        ``pruned=True`` runs the flat table through its candidate-pruned
        match kernel (bit-identical first-match results); levelwise
        segments ignore the flag — their per-node tables are already tiny.
        """
        x = np.asarray(x)
        if x.ndim == 1:
            x = x[None, :]
        if x.shape[1] != self.dim:
            raise ShapeError(f"expected dim {self.dim}, got {x.shape[1]}")
        enc = encode_keys(x, self.key_bits, self.signed)
        if self.encoding == "flat":
            return self.flat.lookup_encoded(enc, pruned=pruned)
        out = np.empty(len(enc), dtype=np.int64)
        self._walk(self.root, np.arange(len(enc)), enc, out)
        return out

    def _walk(
        self, node: "LevelwiseNode | int", rows: np.ndarray, enc: np.ndarray, out: np.ndarray
    ) -> None:
        if isinstance(node, int):
            out[rows] = node
            return
        if len(rows) == 0:
            return
        side = node.table.lookup_encoded(enc[rows, node.feature])
        self._walk(node.left, rows[side == 0], enc, out)
        self._walk(node.right, rows[side == 1], enc, out)

    def node_tables(self) -> list[PackedTernaryTable]:
        """Every materialized table (one for flat, one per node otherwise)."""
        if self.encoding == "flat":
            return [self.flat]
        tables: list[PackedTernaryTable] = []

        def walk(node):
            if isinstance(node, LevelwiseNode):
                tables.append(node.table)
                walk(node.left)
                walk(node.right)

        walk(self.root)
        return tables


def compile_segment_table(table, encoding: str = "auto") -> TcamSegment:
    """Compile a fuzzy :class:`~repro.core.mapping.SegmentTable` for TCAM.

    Duck-typed on purpose (``core.mapping`` must stay import-free of the
    dataplane): ``table`` needs ``kind``, ``tree``, ``in_bits``,
    ``in_signed``.
    """
    if table.kind != "fuzzy":
        msg = (
            "only fuzzy segment tables have a TCAM form; exact segments are "
            "direct-indexed SRAM on the hardware too"
        )
        raise CompilationError(msg)
    return TcamSegment.from_tree(
        table.tree, key_bits=table.in_bits, signed=table.in_signed, encoding=encoding
    )


def tcam_table_report(model) -> list[dict]:
    """Compile (and cache) every fuzzy table of a compiled model; summarize.

    Returns one row per fuzzy segment table with its chosen encoding and
    entry counts — the shape the equivalence report and the lookup benchmark
    print. Compiling here also warms the per-table cache, so a subsequent
    ``forward_int(..., lookup_backend="tcam")`` measures lookups, not
    compilation.
    """
    rows = []
    for li, layer in enumerate(model.layers):
        for table in layer.tables:
            if table.kind != "fuzzy":
                continue
            seg = table.tcam_segment()
            rows.append(
                {
                    "layer": li,
                    "segment": tuple(table.segment),
                    "encoding": seg.encoding,
                    "entries": seg.n_entries,
                    "entries_flat": seg._flat_count,
                    "entries_levelwise": seg._levelwise_count,
                    "leaves": seg.n_leaves,
                    "dim": seg.dim,
                }
            )
    return rows
