"""Table 5: classification accuracy of every method on every dataset.

Paper's shape: MLP-B > N3IC; RNN-B > BoS (avg); CNN-M >= CNN-B; CNN-L best
everywhere by a wide margin.
"""

import numpy as np

from repro.eval.reporting import render_table
from repro.eval.runner import run_table5, CLASSIFIERS
from repro.net import DATASET_NAMES


def _run(scale):
    return run_table5(flows_per_class=scale["flows_per_class"], seed=scale["seed"])


def test_table5(benchmark, bench_scale):
    results = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)

    headers = ["method", "input(b)", "model(Kb)"]
    for ds in DATASET_NAMES:
        headers += [f"{ds}-PR", f"{ds}-RC", f"{ds}-F1"]
    rows = []
    for name in CLASSIFIERS:
        entry = results[name]
        row = [name, entry["input_bits"], round(entry["model_kbits"], 1)]
        for ds in DATASET_NAMES:
            r = entry["rows"][ds]
            row += [r["PR"], r["RC"], r["F1"]]
        rows.append(row)
    print()
    print(render_table(headers, rows, title="Table 5 — classification accuracy"))

    def avg_f1(name):
        return np.mean([results[name]["rows"][d]["F1"] for d in DATASET_NAMES])

    # The paper's ordering claims (on averages across datasets).
    assert avg_f1("MLP-B") > avg_f1("N3IC")
    assert avg_f1("RNN-B") > avg_f1("BoS") - 0.05
    assert avg_f1("CNN-L") == max(avg_f1(m) for m in CLASSIFIERS)
    assert avg_f1("CNN-L") > 0.9
