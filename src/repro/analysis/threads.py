"""``thread-shared-state``: producer/consumer shared state must be guarded.

The :class:`repro.serving.openloop.OpenLoopPump` contract — and that of any
future thread-pumped component — is that state written from the spawned
thread and touched by the spawning side is either **lock-guarded** (both
sides access it under the same ``threading.Lock``) or **mediated by a
thread-safe object** (``queue.Queue``, ``threading.Event``, the locks
themselves).

Detection is reachability-based, from the ``threading.Thread(target=...)``
call site:

- ``target=self.method`` — the thread body is the set of methods reachable
  from ``method`` through ``self.x()`` calls; shared state is every
  ``self.attr`` those methods write that any *other* method of the class
  touches. Guarded means inside ``with self.<lock>:`` where ``<lock>`` is
  an attribute assigned ``threading.Lock()`` / ``RLock()`` (or whose name
  contains ``lock``).
- ``target=local_function`` (closure pump, the OpenLoopPump shape) — the
  thread body is the nested def; shared state is every enclosing-scope name
  it mutates (nonlocal rebinding, subscript/attribute stores, or mutating
  method calls such as ``.append``). Guarded means inside ``with <lock>:``
  for a local assigned ``threading.Lock()``. Consumer-side accesses that
  are lexically **before the thread is constructed** or **after
  ``<thread>.join()``** are sequential, not concurrent, and are exempt;
  accesses inside *other* nested helpers get no such exemption because
  their call time is unknowable statically.

The rule is deliberately conservative: publication ordering it cannot see
(e.g. an index handed over through a lock-guarded queue, then used to read
a side array without the lock) is a legitimate, *documented* suppression
(``reprolint: disable=thread-shared-state`` in a comment at the access).
"""

from __future__ import annotations

import ast

from repro.analysis.core import FileContext, Rule, dotted_name

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "remove", "discard", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "sort", "reverse", "__setitem__",
})

_LOCK_CTORS = frozenset({"threading.Lock", "threading.RLock"})
_SAFE_CTORS = frozenset({
    "threading.Event", "threading.Condition", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier", "threading.Lock",
    "threading.RLock", "queue.Queue", "queue.LifoQueue",
    "queue.PriorityQueue", "queue.SimpleQueue",
})


def _root_name(node: ast.AST) -> str | None:
    """The base Name of a Name/Attribute/Subscript chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _assigned_names(node: ast.AST, ctors: frozenset[str],
                    imports) -> set[str]:
    """Local names assigned a call to one of ``ctors`` anywhere in node."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
            dotted = dotted_name(sub.value.func)
            if dotted and imports.resolve(dotted) in ctors:
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        out.add(target.id)
    return out


def _local_names(func: ast.AST) -> set[str]:
    """Names bound locally in ``func`` (params, stores, loop/with targets),
    minus names it declares nonlocal/global."""
    local: set[str] = set()
    escaping: set[str] = set()
    args = func.args
    for a in (list(args.posonlyargs) + list(args.args)
              + list(args.kwonlyargs)
              + ([args.vararg] if args.vararg else [])
              + ([args.kwarg] if args.kwarg else [])):
        local.add(a.arg)
    for sub in ast.walk(func):
        if isinstance(sub, (ast.Nonlocal, ast.Global)):
            escaping.update(sub.names)
        elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            local.add(sub.id)
    return local - escaping


class _Access:
    __slots__ = ("name", "node", "locked", "nested")

    def __init__(self, name: str, node: ast.AST, locked: bool, nested: bool):
        self.name = name
        self.node = node
        self.locked = locked
        self.nested = nested


def _collect_accesses(body: ast.AST, names_of_interest, lock_names: set[str],
                      *, skip: ast.AST | None = None,
                      mutations_only: bool = False) -> list[_Access]:
    """Every access to a name of interest, with lock/nesting context.

    ``names_of_interest`` is a set, or None for "any name" (used on the
    thread side where the interest set is being discovered). With
    ``mutations_only`` reads are ignored; otherwise every Name touch
    counts. ``skip`` prunes a subtree (the thread target inside its
    enclosing function).
    """
    out: list[_Access] = []

    def interesting(name: str | None) -> bool:
        return name is not None and (names_of_interest is None
                                     or name in names_of_interest)

    root = body

    def visit(node: ast.AST, locked: bool, nested: bool) -> None:
        if node is skip:
            return
        if isinstance(node, ast.With):
            item_locked = locked or any(
                isinstance(item.context_expr, ast.Name)
                and item.context_expr.id in lock_names
                for item in node.items)
            for item in node.items:
                visit(item, locked, nested)
            for stmt in node.body:
                visit(stmt, item_locked, nested)
            return
        child_nested = nested or (node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)))
        if mutations_only:
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        base = _root_name(target)
                        if interesting(base):
                            out.append(_Access(base, target, locked, nested))
                    elif isinstance(target, ast.Name) \
                            and interesting(target.id):
                        out.append(_Access(target.id, target, locked, nested))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS:
                base = _root_name(node.func.value)
                if interesting(base):
                    out.append(_Access(base, node, locked, nested))
        elif isinstance(node, ast.Name) and interesting(node.id):
            out.append(_Access(node.id, node, locked, nested))
        for child in ast.iter_child_nodes(node):
            visit(child, locked, child_nested)

    visit(body, False, False)
    return out


class ThreadSharedStateRule(Rule):
    name = "thread-shared-state"
    description = ("state written by a threading.Thread target and touched "
                   "by the spawning side must be lock-guarded or mediated "
                   "by a thread-safe object (Queue/Event)")
    example = ("src/repro/serving/openloop.py:201: [thread-shared-state] "
               "self.admitted is written by the drain thread and read here "
               "without the lock that guards it elsewhere")

    def begin_file(self, ctx: FileContext) -> None:
        self._reported: set[tuple[int, str]] = set()

    def visitors(self):
        return {"Call": self.check_call}

    def check_call(self, ctx: FileContext, node: ast.Call) -> None:
        if ctx.resolve_call(node) != "threading.Thread":
            return
        target = next((kw.value for kw in node.keywords
                       if kw.arg == "target"), None)
        if target is None and node.args:
            target = node.args[1] if len(node.args) > 1 else None
        if isinstance(target, ast.Lambda):
            ctx.report(target, self.name,
                       "lambda thread target: name the function so its "
                       "shared-state accesses can be audited (and "
                       "tracebacks name it)")
            return
        if isinstance(target, ast.Attribute) \
                and isinstance(target.value, ast.Name) \
                and target.value.id == "self":
            self._check_method_case(ctx, target.attr)
        elif isinstance(target, ast.Name):
            func = ctx.enclosing_function()
            if func is not None:
                self._check_closure_case(ctx, node, func, target.id)

    def _report(self, ctx: FileContext, node: ast.AST, name: str, msg: str
                ) -> None:
        key = (getattr(node, "lineno", 0), name)
        if key not in self._reported:
            self._reported.add(key)
            ctx.report(node, self.name, msg)

    # -- closure pump ------------------------------------------------------

    def _check_closure_case(self, ctx: FileContext, thread_call: ast.Call,
                            func, target_name: str) -> None:
        thread_fn = next(
            (n for n in ast.walk(func)
             if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
             and n.name == target_name), None)
        if thread_fn is None:
            return
        lock_names = _assigned_names(func, _LOCK_CTORS, ctx.imports)
        safe_names = _assigned_names(func, _SAFE_CTORS, ctx.imports)
        thread_local = _local_names(thread_fn)
        thread_writes = _collect_accesses(
            thread_fn, None, lock_names, mutations_only=True)
        shared = {a.name for a in thread_writes
                  if a.name not in thread_local and a.name not in safe_names}
        if not shared:
            return
        for access in thread_writes:
            if access.name in shared and not access.locked:
                self._report(
                    ctx, access.node, access.name,
                    f"'{access.name}' is written by thread target "
                    f"'{target_name}' outside the pump lock; guard the "
                    f"write with the lock both sides share")
        # Consumer side: the enclosing function minus the thread body.
        # Sequential windows — before the Thread object exists, after
        # join() — cannot race; helper closures get no such window.
        created_at = thread_call.lineno
        join_line = None
        thread_var = self._thread_var(func, thread_call)
        if thread_var is not None:
            for sub in ast.walk(func):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and sub.func.attr == "join" \
                        and isinstance(sub.func.value, ast.Name) \
                        and sub.func.value.id == thread_var:
                    join_line = sub.lineno
        for access in _collect_accesses(func, shared, lock_names,
                                        skip=thread_fn):
            if access.locked:
                continue
            line = access.node.lineno
            if not access.nested and (line <= created_at or (
                    join_line is not None and line > join_line)):
                continue
            self._report(
                ctx, access.node, access.name,
                f"'{access.name}' is shared with thread target "
                f"'{target_name}' but accessed here without holding the "
                f"pump lock; guard it, mediate it through a queue, or "
                f"document why publication ordering makes it safe")

    @staticmethod
    def _thread_var(func, thread_call: ast.Call) -> str | None:
        for sub in ast.walk(func):
            if isinstance(sub, ast.Assign) and sub.value is thread_call:
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        return target.id
        return None

    # -- method pump -------------------------------------------------------

    def _check_method_case(self, ctx: FileContext, target_method: str
                           ) -> None:
        cls = ctx.enclosing_class()
        if cls is None:
            return
        methods = {n.name: n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))}
        if target_method not in methods:
            return
        # Methods reachable from the thread target via self.m() calls.
        reachable: set[str] = set()
        frontier = [target_method]
        while frontier:
            name = frontier.pop()
            if name in reachable or name not in methods:
                continue
            reachable.add(name)
            for sub in ast.walk(methods[name]):
                if isinstance(sub, ast.Call) \
                        and isinstance(sub.func, ast.Attribute) \
                        and isinstance(sub.func.value, ast.Name) \
                        and sub.func.value.id == "self":
                    frontier.append(sub.func.attr)
        lock_attrs, safe_attrs = self._class_sync_attrs(cls, ctx)
        thread_writes = [
            (m, a) for m in reachable
            for a in self._self_accesses(methods[m], lock_attrs,
                                         mutations_only=True)]
        written = {a.name for _, a in thread_writes} - safe_attrs - lock_attrs
        if not written:
            return
        consumer_methods = [m for m in methods
                            if m not in reachable and m != "__init__"]
        consumer_hits = [
            (m, a) for m in consumer_methods
            for a in self._self_accesses(methods[m], lock_attrs)
            if a.name in written]
        contested = {a.name for _, a in consumer_hits}
        for method, access in thread_writes:
            if access.name in contested and not access.locked:
                self._report(
                    ctx, access.node, access.name,
                    f"'self.{access.name}' is written in thread-reachable "
                    f"method '{method}' without holding the instance lock, "
                    f"but other methods read it; guard both sides or "
                    f"mediate through a queue")
        for method, access in consumer_hits:
            if not access.locked:
                self._report(
                    ctx, access.node, access.name,
                    f"'self.{access.name}' is written by the thread target "
                    f"'{target_method}' (via reachable methods) but "
                    f"accessed in '{method}' without the instance lock; "
                    f"guard it or mediate through a queue")

    @staticmethod
    def _class_sync_attrs(cls: ast.ClassDef, ctx: FileContext
                          ) -> tuple[set[str], set[str]]:
        lock_attrs: set[str] = set()
        safe_attrs: set[str] = set()
        for sub in ast.walk(cls):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                dotted = dotted_name(sub.value.func)
                resolved = ctx.imports.resolve(dotted) if dotted else None
                for target in sub.targets:
                    if isinstance(target, ast.Attribute) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id == "self":
                        if resolved in _LOCK_CTORS:
                            lock_attrs.add(target.attr)
                        if resolved in _SAFE_CTORS:
                            safe_attrs.add(target.attr)
        return lock_attrs, safe_attrs

    @staticmethod
    def _self_accesses(method, lock_attrs: set[str], *,
                       mutations_only: bool = False) -> list[_Access]:
        """``self.attr`` accesses in one method, with with-lock context."""
        out: list[_Access] = []

        def is_self_attr(node: ast.AST) -> str | None:
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                return node.attr
            return None

        def lockish(name: str) -> bool:
            return name in lock_attrs or "lock" in name.lower()

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.With):
                item_locked = locked or any(
                    (attr := is_self_attr(item.context_expr)) is not None
                    and lockish(attr)
                    for item in node.items)
                for stmt in node.body:
                    visit(stmt, item_locked)
                return
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    attr = is_self_attr(target)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = is_self_attr(target.value)
                    if attr is not None and not lockish(attr):
                        out.append(_Access(attr, target, locked, False))
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATORS:
                attr = is_self_attr(node.func.value)
                if attr is not None and not lockish(attr):
                    out.append(_Access(attr, node, locked, False))
            elif not mutations_only:
                attr = is_self_attr(node)
                if attr is not None and not lockish(attr):
                    out.append(_Access(attr, node, locked, False))
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        visit(method, False)
        return out
