"""Tests for the serving layer: scheduling, sharded dispatch, decision cache."""

import numpy as np
import pytest

from repro.dataplane.runtime import WindowedClassifierRuntime
from repro.net.packet import FlowKey, Packet
from repro.net.traces import Trace
from repro.serving import BatchScheduler, FlowDecisionCache, shard_hash
from repro.serving.dispatcher import ShardedDispatcher   # un-deprecated core


class TestBatchScheduler:
    def test_spans_partition_trace(self):
        ts = np.linspace(0.0, 1.0, 100)
        spans, _stats = BatchScheduler(batch_size=32).spans(ts)
        assert spans == [(0, 32), (32, 64), (64, 96), (96, 100)]

    def test_flush_on_batch_full(self):
        _spans, stats = BatchScheduler(batch_size=10).spans(np.linspace(0.0, 1.0, 30))
        assert stats.full == 3
        assert stats.timeout == 0

    def test_flush_on_timeout(self):
        # 0.1 s between packets, 0.25 s timeout: at most 3 packets per batch.
        ts = np.arange(20) * 0.1
        spans, stats = BatchScheduler(batch_size=256, timeout=0.25).spans(ts)
        assert all(stop - start <= 3 for start, stop in spans)
        assert stats.timeout > 0
        # Spans still partition the trace.
        flat = [i for start, stop in spans for i in range(start, stop)]
        assert flat == list(range(20))

    def test_timeout_always_makes_progress(self):
        # Timeout shorter than any gap: one-packet batches, never stuck.
        ts = np.arange(5) * 1.0
        spans, _stats = BatchScheduler(batch_size=4, timeout=1e-9).spans(ts)
        assert spans == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_scheduler_is_shareable_config(self):
        """One scheduler over many streams: stats never cross-contaminate."""
        sched = BatchScheduler(batch_size=10)
        _s1, stats1 = sched.spans(np.linspace(0.0, 1.0, 30))
        _s2, stats2 = sched.spans(np.linspace(0.0, 1.0, 5))
        assert (stats1.full, stats1.tail) == (3, 0)
        assert (stats2.full, stats2.tail) == (0, 1)
        with pytest.raises(AttributeError):
            sched.batch_size = 11        # frozen: no mutable shared state

    def test_adaptive_grows_to_max_with_headroom(self):
        # Eager consumption means ~zero measured service time: every span has
        # 2x headroom, so the batch doubles until max_batch_size.
        sched = BatchScheduler(batch_size=8, latency_target=10.0,
                               max_batch_size=32)
        spans, stats = sched.spans(np.linspace(0.0, 1.0, 200))
        widths = [stop - start for start, stop in spans]
        assert widths[0] == 8
        assert max(widths) == 32
        assert sorted(widths[:-1]) == widths[:-1]   # non-decreasing growth
        assert stats.grown == 2 and stats.shrunk == 0

    def test_adaptive_shrinks_to_min_on_overrun(self):
        # Any positive service time overruns a ~zero latency target: the
        # batch halves down to min_batch_size.
        sched = BatchScheduler(batch_size=16, latency_target=1e-15,
                               min_batch_size=2)
        stream = sched.iter_spans(np.linspace(0.0, 1.0, 100))
        widths = [stop - start for start, stop in stream]
        assert widths[0] == 16
        assert widths[-2] == 2                       # floor reached and held
        assert stream.stats.shrunk == 3
        assert stream.stats.grown == 0
        assert sum(widths) == 100                    # still a partition

    def test_stream_is_one_shot(self):
        stream = BatchScheduler(batch_size=50).iter_spans(np.linspace(0, 1, 100))
        assert list(stream) == [(0, 50), (50, 100)]
        assert list(stream) == []

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchScheduler(batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(timeout=-1.0)
        with pytest.raises(ValueError):
            BatchScheduler(latency_target=-0.1)
        with pytest.raises(ValueError):
            BatchScheduler(min_batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(batch_size=64, max_batch_size=32)


class TestShardedDispatcher:
    def _dispatcher(self, compiled16, n_shards, **sched_kwargs):
        return ShardedDispatcher(
            runtime_factory=lambda: WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=32),
            n_shards=n_shards,
            scheduler=BatchScheduler(batch_size=32, **sched_kwargs))

    def test_sharded_matches_unsharded(self, compiled16, replay_flows):
        """Shard counts that do not divide the 24-flow workload stay exact."""
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        assert ref
        for n_shards in (1, 5, 7):
            assert len(replay_flows) % n_shards != 0 or n_shards == 1
            got = self._dispatcher(compiled16, n_shards).serve_flows(replay_flows)
            assert got == ref

    def test_timeout_flushes_do_not_change_decisions(self, compiled16, replay_flows):
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        disp = self._dispatcher(compiled16, 3, timeout=0.01)
        assert disp.serve_flows(replay_flows) == ref
        # flush_stats aggregates every shard's own span stream.
        assert disp.flush_stats.total >= 3
        assert disp.flush_stats.tail >= 3     # each shard drains a tail batch

    def test_flows_pinned_to_one_shard(self, compiled16, replay_flows):
        disp = self._dispatcher(compiled16, 4)
        trace = Trace.from_flows(replay_flows)
        shard_of_key = {}
        for key in trace.canonical_keys():
            shard = disp.shard_of(key)
            assert shard_of_key.setdefault(key, shard) == shard
        # A sane hash spreads 24 flows over more than one replica.
        assert len(set(shard_of_key.values())) > 1

    def test_serve_trace_without_labels(self, compiled16, replay_flows):
        disp = self._dispatcher(compiled16, 2)
        decisions = disp.serve_trace(Trace.from_flows(replay_flows))
        assert decisions
        assert all(d.flow_label == -1 for d in decisions)
        seqs = [d.seq for d in decisions]
        assert seqs == sorted(seqs)

    def test_shard_hash_deterministic(self):
        key = FlowKey(0x0A000001, 0x0A000002, 443, 51234, 6)
        assert shard_hash(key) == shard_hash(FlowKey(*key))
        assert shard_hash(key) != shard_hash(key.reversed())

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedDispatcher(runtime_factory=lambda: None, n_shards=0)


def constant_rate_flow(n_packets=60, length=200, ipd=0.001, port=40000, ts0=0.0):
    """One flow whose every window repeats: the elephant the cache targets."""
    key = FlowKey(0x0A000001, 0x0A000002, port, 443, 6)
    return Trace([Packet(ts=ts0 + i * ipd, length=length, key=key)
                  for i in range(n_packets)])


class TestFlowDecisionCache:
    def test_lru_eviction_order(self):
        cache = FlowDecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1      # refreshes "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_hit_miss_stats_and_rate(self):
        cache = FlowDecisionCache(capacity=8)
        assert cache.stats.hit_rate == 0.0
        assert cache.get("x") is None
        cache.put("x", 7)
        assert cache.get("x") == 7
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.hit_rate == 0.5

    def test_put_existing_refreshes(self):
        cache = FlowDecisionCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 9)               # refresh, not insert: no eviction
        cache.put("c", 3)               # evicts "b", the LRU
        assert cache.get("a") == 9
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_clear_keeps_counters(self):
        cache = FlowDecisionCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            FlowDecisionCache(capacity=0)

    def test_cache_never_changes_decisions(self, compiled16, replay_flows):
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows(replay_flows)
        cache = FlowDecisionCache(capacity=4096)
        got = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            decision_cache=cache).process_flows(replay_flows)
        assert got == ref
        assert cache.stats.lookups == len(ref)

    def test_elephant_flow_hits(self, compiled16):
        """A constant-rate flow repeats its window: all but one lookup hit."""
        trace = constant_rate_flow(n_packets=60)
        cache = FlowDecisionCache(capacity=64)
        runtime = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=16,
            decision_cache=cache)
        decisions = runtime.process_trace(trace)
        assert len(decisions) == 60 - (runtime.window - 1)
        # Window 8 warms after 7 packets; after that the flow cycles through
        # a handful of distinct windows (the 64 us timestamp quantization
        # alternates 15/16-unit IPDs), each missing once — everything else
        # hits.
        assert cache.stats.misses <= 10
        assert cache.stats.hit_rate > 0.8

    def test_scalar_and_batched_share_cache_layout(self, compiled16):
        """Scalar replay primes the cache; batched replay hits it."""
        trace = constant_rate_flow(n_packets=40)
        cache = FlowDecisionCache(capacity=64)
        scalar_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", decision_cache=cache)
        ref = [scalar_rt.process_packet(p, -1) for p in trace.packets]
        ref = [d for d in ref if d is not None]
        primed_misses = cache.stats.misses
        batched_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=16,
            decision_cache=cache)
        got = batched_rt.process_trace(trace)
        assert [(d.predicted, d.ts) for d in got] == \
            [(d.predicted, d.ts) for d in ref]
        assert cache.stats.misses == primed_misses   # zero new misses

    def test_failed_model_invocation_leaves_no_pending(self, compiled16):
        """A mid-flush model failure must not strand PENDING placeholders:
        the cache stays clean and keeps producing correct decisions."""
        from repro.serving.cache import PENDING

        class FlakyModel:
            def __init__(self, inner):
                self.inner = inner
                self.fail_next = True

            def predict(self, x, **kw):
                if self.fail_next:
                    self.fail_next = False
                    raise RuntimeError("transient model failure")
                return self.inner.predict(x, **kw)

        trace = constant_rate_flow(n_packets=40)
        cache = FlowDecisionCache(capacity=64)
        flaky = WindowedClassifierRuntime(
            FlakyModel(compiled16), feature_mode="stats", batch_size=16,
            decision_cache=cache)
        with pytest.raises(RuntimeError, match="transient"):
            flaky.process_trace(trace)
        assert not any(v is PENDING for v in cache._entries.values())
        # The same (now-clean) cache serves a fresh replica correctly, on
        # both the batched and the scalar path.
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=16).process_trace(trace)
        got = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=16,
            decision_cache=cache).process_trace(trace)
        assert [(d.predicted, d.ts) for d in got] == \
            [(d.predicted, d.ts) for d in ref]
        scalar_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", decision_cache=cache)
        scal = [d for d in (scalar_rt.process_packet(p, -1)
                            for p in trace.packets) if d is not None]
        assert [(d.predicted, d.ts) for d in scal] == \
            [(d.predicted, d.ts) for d in ref]

    def test_fill_resolves_only_live_entries(self):
        from repro.serving.cache import PENDING
        cache = FlowDecisionCache(capacity=1)
        cache.put("a", PENDING)
        cache.put("b", PENDING)          # evicts the pending "a"
        cache.fill("a", 7)               # evicted: stays evicted, no insert
        cache.fill("b", 9)
        assert cache.get("a") is None
        assert cache.get("b") == 9
        # fill is value-only bookkeeping: no stat, no recency change.
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    @pytest.mark.parametrize("capacity", (2, 3, 64))
    @pytest.mark.parametrize("batch_size", (16, 64))
    def test_stats_scalar_faithful_under_dedup_and_eviction(
            self, compiled16, capacity, batch_size):
        """In-batch window dedup and LRU eviction in the same flush must not
        drift the counters: hits + misses == lookups, and the whole
        hit/miss/evict stream equals per-packet replay's exactly."""
        packets = []
        for port, ipd in ((40000, 0.001), (40001, 0.00064), (40002, 0.0017)):
            packets.extend(constant_rate_flow(n_packets=50, port=port,
                                              ipd=ipd).packets)
        packets.sort(key=lambda p: p.ts)
        trace = Trace(packets)

        scalar_cache = FlowDecisionCache(capacity=capacity)
        scalar_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", decision_cache=scalar_cache)
        ref = [d for d in (scalar_rt.process_packet(p, -1)
                           for p in trace.packets) if d is not None]

        batched_cache = FlowDecisionCache(capacity=capacity)
        batched_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=batch_size,
            decision_cache=batched_cache)
        got = batched_rt.process_trace(trace)

        assert [(d.predicted, d.ts) for d in got] == \
            [(d.predicted, d.ts) for d in ref]
        assert batched_cache.stats.hits + batched_cache.stats.misses \
            == batched_cache.stats.lookups == len(got)
        assert (batched_cache.stats.hits, batched_cache.stats.misses,
                batched_cache.stats.evictions) == \
            (scalar_cache.stats.hits, scalar_cache.stats.misses,
             scalar_cache.stats.evictions)
        if capacity < 64:
            assert batched_cache.stats.evictions > 0    # churn actually hit
        assert batched_cache.stats.hits > 0             # dedup actually hit


class TestCacheDegenerateCapacities:
    """Capacity 1 and 2: the LRU edge cases where every insert evicts.

    Driven by the Zipf-skewed ``heavy_hitters`` scenario (a few elephant
    keys carry most packets with repeating windows), so key reuse and
    same-flush eviction churn both actually occur.
    """

    @pytest.fixture(scope="class")
    def zipf_workload(self):
        from repro.net import build_scenario
        return build_scenario("heavy_hitters").generate(seed=7,
                                                        flows_scale=0.3)

    def test_capacity_one_lru_semantics(self):
        cache = FlowDecisionCache(capacity=1)
        cache.put("a", 1)
        cache.put("b", 2)                 # evicts "a" immediately
        assert len(cache) == 1
        assert cache.get("a") is None and cache.get("b") == 2
        cache.put("b", 5)                 # refresh in place: no eviction
        assert cache.get("b") == 5
        assert cache.stats.evictions == 1

    def test_capacity_one_pending_churn(self):
        from repro.serving.cache import PENDING
        cache = FlowDecisionCache(capacity=1)
        cache.put("a", PENDING)
        cache.put("b", PENDING)           # evicts the pending "a" in-flush
        cache.fill("a", 3)                # must stay evicted
        cache.discard_pending("b")        # exception-path cleanup
        assert len(cache) == 0
        assert cache.get("a") is None and cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_capacity_two_alternation_thrash(self):
        cache = FlowDecisionCache(capacity=2)
        for i in range(10):               # a,b,c round-robin over capacity 2:
            cache.put(("k", i % 3), i)    # every insert evicts, no hit ever
        assert cache.stats.evictions == 8
        assert len(cache) == 2

    @pytest.mark.parametrize("capacity", (1, 2))
    @pytest.mark.parametrize("batch_size", (16, 64))
    def test_zipf_replay_bit_identical_and_stats_faithful(
            self, compiled16, zipf_workload, capacity, batch_size):
        """At capacity 1 and 2, batched replay (PENDING placeholders evicted
        within their own flush) must still match per-packet replay decision-
        for-decision and counter-for-counter on a Zipf-skewed workload."""
        trace, labels = zipf_workload.trace, zipf_workload.labels

        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=batch_size).process_trace(trace, labels=labels)

        scalar_cache = FlowDecisionCache(capacity=capacity)
        scalar_rt = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", decision_cache=scalar_cache)
        scal = []
        for i, p in enumerate(trace.packets):
            d = scalar_rt.process_packet(p, int(labels[i]))
            if d is not None:
                d.seq = i
                scal.append(d)

        batched_cache = FlowDecisionCache(capacity=capacity)
        got = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=batch_size,
            decision_cache=batched_cache).process_trace(trace, labels=labels)

        assert got == scal == ref         # cache can never change decisions
        assert batched_cache.stats.lookups == len(got)
        assert (batched_cache.stats.hits, batched_cache.stats.misses,
                batched_cache.stats.evictions) == \
            (scalar_cache.stats.hits, scalar_cache.stats.misses,
             scalar_cache.stats.evictions)
        # the workload actually exercised the degenerate cache: at capacity
        # 1-2 nearly every insert evicts (interleaved flows thrash the LRU)
        assert batched_cache.stats.evictions > 100

    def test_zipf_hits_emerge_just_above_thrash(self, compiled16,
                                                zipf_workload):
        """Same workload, capacity 4: the Zipf elephants' repeating windows
        start hitting — confirming capacity 1-2 miss-storms above are the
        cache thrashing, not the workload lacking repetition."""
        cache = FlowDecisionCache(capacity=4)
        WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=64,
            decision_cache=cache).process_trace(zipf_workload.trace,
                                                labels=zipf_workload.labels)
        assert cache.stats.hits > 100
        assert cache.stats.evictions > 100


class TestAdaptiveClamp:
    def _drive(self, stream, service_seconds):
        for s in service_seconds:
            stream._observe(s)
            sched = stream.scheduler
            assert 1 <= stream.batch_size <= sched.effective_max_batch
            assert stream.batch_size >= sched.min_batch_size

    def test_pathological_latency_sequence_stays_clamped(self):
        sched = BatchScheduler(batch_size=8, latency_target=0.010,
                               min_batch_size=2, max_batch_size=64)
        stream = sched.iter_spans(np.arange(1000, dtype=np.float64))
        # 100 consecutive overruns: must floor at min_batch_size, never 0.
        self._drive(stream, [1.0] * 100)
        assert stream.batch_size == 2
        # 100 consecutive underruns: must cap at max_batch_size.
        self._drive(stream, [0.0] * 100)
        assert stream.batch_size == 64
        # Alternating thrash stays inside the clamp window throughout.
        self._drive(stream, [1.0, 0.0] * 200)

    def test_zero_latency_target_floors_at_one(self):
        sched = BatchScheduler(batch_size=4, latency_target=0.0)
        stream = sched.iter_spans(np.arange(100, dtype=np.float64))
        self._drive(stream, [0.5] * 50)
        assert stream.batch_size == 1
        spans = list(stream)
        assert spans[0] == (0, 1)       # batch_size 1 still makes progress

    def test_min_above_batch_size_rejected(self):
        with pytest.raises(ValueError, match="min_batch_size"):
            BatchScheduler(batch_size=4, min_batch_size=8)
