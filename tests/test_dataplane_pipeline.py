"""Tests for PHV allocation, TCAM expansion, placement, and pipeline execution."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ResourceExceededError
from repro.core import PegasusCompiler, CompilerConfig, FuzzyTree
from repro.dataplane import (
    TOFINO2, GENERIC_PISA, TargetConfig, PHVAllocator,
    ternary_entries_for_tree, tcam_lookup, place_model,
)


def _compiled_toy(seed=0, fuzzy_leaves=16):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        nn.Linear(8, 6, rng=0),
        nn.ReLU(),
        nn.Linear(6, 3, rng=1),
    )
    for p in model.parameters():
        p.data *= 0.1
    model.eval_mode()
    x = np.floor(rng.uniform(0, 255, size=(400, 8))).astype(np.int64)
    result = PegasusCompiler(CompilerConfig(fuzzy_leaves=fuzzy_leaves)).compile_sequential(model, x)
    return result.compiled, x


class TestPHV:
    def test_allocation(self):
        phv = PHVAllocator(capacity_bits=4096)
        f = phv.allocate("x", 12)
        assert f.container_bits == 16
        assert phv.used_bits == 16

    def test_wide_field_spans_containers(self):
        phv = PHVAllocator(capacity_bits=4096)
        f = phv.allocate("wide", 100)
        assert f.container_bits == 128

    def test_overflow_raises(self):
        phv = PHVAllocator(capacity_bits=1024, reserved_bits=0)
        phv.allocate("a", 512)
        with pytest.raises(ResourceExceededError):
            phv.allocate("b", 1024)

    def test_cnn_l_raw_input_does_not_fit_phv(self):
        """The paper's motivation: 3840-bit inputs exceed the 4096-bit PHV."""
        phv = PHVAllocator(capacity_bits=TOFINO2.phv_bits)
        with pytest.raises(ResourceExceededError):
            phv.allocate("raw_window", 3840)
            phv.allocate("activations", 512)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            PHVAllocator(capacity_bits=128).allocate("z", 0)


class TestTernaryExpansion:
    def test_tcam_matches_tree_exactly(self):
        rng = np.random.default_rng(0)
        x = np.floor(rng.uniform(0, 255, size=(300, 2)))
        tree = FuzzyTree.fit(x, n_leaves=8)
        entries = ternary_entries_for_tree(tree, key_bits=8)
        probe = np.floor(rng.uniform(0, 255, size=(200, 2)))
        for vec in probe:
            want = int(tree.predict_index(vec))
            got = tcam_lookup(entries, tuple(int(v) for v in vec))
            assert got == want

    def test_every_key_covered(self):
        rng = np.random.default_rng(1)
        x = np.floor(rng.uniform(0, 15, size=(100, 2)))
        tree = FuzzyTree.fit(x, n_leaves=4)
        entries = ternary_entries_for_tree(tree, key_bits=4)
        for a in range(16):
            for b in range(16):
                tcam_lookup(entries, (a, b))  # raises if uncovered

    def test_entry_count_matches_flat_accounting(self):
        rng = np.random.default_rng(2)
        x = np.floor(rng.uniform(0, 255, size=(300, 3)))
        tree = FuzzyTree.fit(x, n_leaves=8)
        # Emission uses the flat (single-lookup) expansion; the resource
        # model may pick the cheaper level-wise encoding.
        assert len(ternary_entries_for_tree(tree, 8)) == \
            tree._tcam_entries_flat(8, signed=False)
        assert tree.tcam_entries(key_bits=8) <= tree._tcam_entries_flat(8, False)


class TestPlacement:
    def test_layers_in_strictly_later_stages(self):
        compiled, _ = _compiled_toy()
        pipeline = place_model(compiled, TOFINO2)
        first_stage_of, last_stage_of = {}, {}
        for p in pipeline.placements:
            first_stage_of[p.layer_index] = min(
                first_stage_of.get(p.layer_index, p.start_stage), p.start_stage)
            last_stage_of[p.layer_index] = max(
                last_stage_of.get(p.layer_index, p.end_stage), p.end_stage)
        for layer in range(1, len(compiled.layers)):
            assert first_stage_of[layer] > last_stage_of[layer - 1]

    def test_all_tables_placed(self):
        compiled, _ = _compiled_toy()
        pipeline = place_model(compiled, TOFINO2)
        assert len(pipeline.placements) == compiled.num_tables

    def test_stage_budgets_respected(self):
        compiled, _ = _compiled_toy()
        pipeline = place_model(compiled, TOFINO2)
        sram_per_stage = {}
        tcam_per_stage = {}
        for p in pipeline.placements:
            for stage, sram, tcam in p.allocations:
                sram_per_stage[stage] = sram_per_stage.get(stage, 0) + sram
                tcam_per_stage[stage] = tcam_per_stage.get(stage, 0) + tcam
        assert all(v <= TOFINO2.sram_bits_per_stage for v in sram_per_stage.values())
        assert all(v <= TOFINO2.tcam_bits_per_stage for v in tcam_per_stage.values())

    def test_large_table_spans_stages(self):
        # A table bigger than one stage's SRAM must span multiple stages.
        from repro.core.mapping import CompiledModel, LookupLayer, SegmentTable
        from repro.utils.fixed_point import QFormat

        fmt = QFormat(16, 0)
        big = SegmentTable(
            segment=(0, 1), kind="exact",
            values_int=np.zeros((1 << 20, 2), dtype=np.int64),  # 33.5 Mb SRAM
            out_format=fmt, in_bits=8)
        model = CompiledModel(
            input_dim=1,
            layers=[LookupLayer(tables=[big], sum_reduce=False, out_format=fmt)])
        pipeline = place_model(model, TOFINO2)
        spans = [p.end_stage - p.start_stage for p in pipeline.placements]
        assert max(spans) >= 1

    def test_tiny_target_overflows(self):
        compiled, _ = _compiled_toy()
        tiny = TargetConfig(name="tiny", n_stages=1, sram_bits_per_stage=10_000,
                            tcam_bits_per_stage=100, action_bus_bits=64,
                            phv_bits=4096, line_rate_tbps=1.0)
        with pytest.raises(ResourceExceededError):
            place_model(compiled, tiny)

    def test_fits_generic_pisa(self):
        compiled, _ = _compiled_toy()
        pipeline = place_model(compiled, GENERIC_PISA)
        assert pipeline.n_stages_used <= GENERIC_PISA.n_stages


class TestPipelineExecution:
    def test_bit_exact_with_compiled_model(self):
        compiled, x = _compiled_toy()
        pipeline = place_model(compiled, TOFINO2)
        np.testing.assert_array_equal(pipeline.process(x[:100]),
                                      compiled.forward_int(x[:100]))

    def test_predict_agrees(self):
        compiled, x = _compiled_toy()
        pipeline = place_model(compiled, TOFINO2)
        np.testing.assert_array_equal(pipeline.predict(x[:50]), compiled.predict(x[:50]))

    def test_single_vector(self):
        compiled, x = _compiled_toy()
        pipeline = place_model(compiled, TOFINO2)
        out = pipeline.process(x[0])
        assert out.shape == (1, 3)

    def test_unfused_model_uses_more_stages(self):
        rng = np.random.default_rng(3)
        model = nn.Sequential(
            nn.BatchNorm1d(8), nn.Linear(8, 6, rng=0), nn.ReLU(),
            nn.BatchNorm1d(6), nn.Linear(6, 3, rng=1))
        for p in model.parameters():
            p.data *= 0.1
        model.eval_mode()
        x = np.floor(rng.uniform(0, 255, size=(300, 8))).astype(np.int64)
        unfused = PegasusCompiler(CompilerConfig(fusion="none", act_bits=8,
                                                 refine=False)).compile_sequential(model, x)
        fused = PegasusCompiler(CompilerConfig(refine=False)).compile_sequential(model, x)
        p_unfused = place_model(unfused.compiled, TOFINO2)
        p_fused = place_model(fused.compiled, TOFINO2)
        assert p_fused.n_stages_used < p_unfused.n_stages_used
