"""Tests for the P4 and eBPF emitters.

The key test interprets the emitted control-plane entries with reference
TCAM semantics and asserts bit-exact agreement with the compiled model —
the role BMv2 plays in the paper's toolchain.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import PegasusCompiler, CompilerConfig
from repro.backends import emit_p4, emit_table_entries, emit_ebpf
from repro.backends.p4 import interpret_entries


@pytest.fixture(scope="module")
def compiled_and_data():
    rng = np.random.default_rng(0)
    model = nn.Sequential(
        nn.Linear(6, 4, rng=0),
        nn.ReLU(),
        nn.Linear(4, 3, rng=1),
    )
    for p in model.parameters():
        p.data *= 0.1
    model.eval_mode()
    x = np.floor(rng.uniform(0, 255, size=(300, 6))).astype(np.int64)
    result = PegasusCompiler(CompilerConfig(fuzzy_leaves=8)).compile_sequential(
        model, x, name="toy")
    return result.compiled, x


class TestP4Emission:
    def test_source_structure(self, compiled_and_data):
        compiled, _ = compiled_and_data
        program = emit_p4(compiled)
        assert "control PegasusIngress_toy" in program.source
        assert program.source.count("table tbl_") == compiled.num_tables
        assert "|+|" in program.source  # saturating adds for SumReduce
        assert "ternary" in program.source

    def test_tables_have_entries(self, compiled_and_data):
        compiled, _ = compiled_and_data
        program = emit_p4(compiled)
        for li, layer in enumerate(compiled.layers):
            for ti in range(len(layer.tables)):
                assert program.entries_for(f"tbl_l{li}_s{ti}")

    def test_entry_count_matches_accounting(self, compiled_and_data):
        compiled, _ = compiled_and_data
        entries = emit_table_entries(compiled)
        want = 0
        for layer in compiled.layers:
            for t in layer.tables:
                if t.kind == "exact":
                    want += t.n_entries
                else:
                    # Emission always uses the flat single-lookup expansion.
                    want += t.tree._tcam_entries_flat(t.in_bits, t.in_signed)
        assert len(entries) == want

    def test_interpreted_entries_bit_exact(self, compiled_and_data):
        """The BMv2-surrogate check: entries reproduce the compiled model."""
        compiled, x = compiled_and_data
        program = emit_p4(compiled)
        probe = x[:40]
        np.testing.assert_array_equal(interpret_entries(program, compiled, probe),
                                      compiled.forward_int(probe))

    def test_interpreted_entries_on_unseen_inputs(self, compiled_and_data):
        compiled, _ = compiled_and_data
        program = emit_p4(compiled)
        rng = np.random.default_rng(99)
        probe = np.floor(rng.uniform(0, 255, size=(25, 6))).astype(np.int64)
        np.testing.assert_array_equal(interpret_entries(program, compiled, probe),
                                      compiled.forward_int(probe))

    def test_argmax_chain_present(self, compiled_and_data):
        compiled, _ = compiled_and_data
        program = emit_p4(compiled)
        assert "meta_class" in program.source
        assert program.source.count("if (meta.act") == 2  # 3 classes -> 2 compares


class TestEbpfEmission:
    def test_structure(self, compiled_and_data):
        compiled, _ = compiled_and_data
        source = emit_ebpf(compiled)
        assert 'SEC("xdp")' in source
        assert "values_l0_s0" in source
        assert "XDP_PASS" in source
        assert source.count("if (seg[") > 0  # comparison trees

    def test_value_tables_complete(self, compiled_and_data):
        compiled, _ = compiled_and_data
        source = emit_ebpf(compiled)
        for li, layer in enumerate(compiled.layers):
            for ti in range(len(layer.tables)):
                assert f"values_l{li}_s{ti}" in source

    def test_saturation_bounds_emitted(self, compiled_and_data):
        compiled, _ = compiled_and_data
        source = emit_ebpf(compiled)
        fmt = compiled.layers[0].out_format
        assert str(fmt.int_max) in source
        assert str(fmt.int_min) in source

    def test_balanced_braces(self, compiled_and_data):
        compiled, _ = compiled_and_data
        source = emit_ebpf(compiled)
        assert source.count("{") == source.count("}")
