"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class CrossEntropyLoss:
    """Softmax cross-entropy on raw logits with integer class targets."""

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        if logits.ndim != 2:
            raise ShapeError(f"expected (N, C) logits, got {logits.shape}")
        targets = np.asarray(targets, dtype=np.int64)
        n = logits.shape[0]
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=1))
        log_probs = shifted - log_z[:, None]
        loss = -log_probs[np.arange(n), targets].mean()
        probs = np.exp(log_probs)
        grad = probs
        grad[np.arange(n), targets] -= 1.0
        return float(loss), grad / n


class MSELoss:
    """Mean squared error."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        loss = float(np.mean(diff ** 2))
        return loss, 2.0 * diff / diff.size


class MAELoss:
    """Mean absolute error — the AutoEncoder's reconstruction metric."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        diff = pred - target
        loss = float(np.mean(np.abs(diff)))
        return loss, np.sign(diff) / diff.size
