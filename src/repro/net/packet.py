"""Packet and flow-key primitives."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

MAX_PACKET_LENGTH = 1500  # classic Ethernet MTU; generators stay within it


class FlowKey(NamedTuple):
    """The classic 5-tuple identifying a flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto)

    def canonical(self) -> "FlowKey":
        """Direction-independent form (smaller endpoint first)."""
        fwd = (self.src_ip, self.src_port)
        rev = (self.dst_ip, self.dst_port)
        return self if fwd <= rev else self.reversed()


@dataclass
class Packet:
    """A single packet: timestamp, size, payload bytes, and its 5-tuple."""

    ts: float
    length: int
    key: FlowKey
    payload: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.uint8))

    def __post_init__(self):
        if self.length < 0 or self.length > MAX_PACKET_LENGTH:
            raise ValueError(f"packet length {self.length} outside [0, {MAX_PACKET_LENGTH}]")
        self.payload = np.asarray(self.payload, dtype=np.uint8)

    @property
    def payload_len(self) -> int:
        return int(self.payload.size)
