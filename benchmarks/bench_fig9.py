"""Figure 9: Pegasus (switch) vs full-precision CPU/GPU.

(a-c) accuracy: the compiled pipelines track the float models closely
(paper: ~1% average loss). (d) throughput: line-rate inference beats the
measured CPU path by orders of magnitude, independent of model size.
"""

import numpy as np

from repro.eval.reporting import render_table
from repro.eval.runner import run_fig9, PEGASUS_MODELS
from repro.net import DATASET_NAMES


def _run(scale):
    return run_fig9(flows_per_class=scale["flows_per_class"], seed=scale["seed"])


def test_fig9(benchmark, bench_scale):
    results = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)

    rows = []
    for model in PEGASUS_MODELS:
        row = [model]
        for ds in DATASET_NAMES:
            acc = results["accuracy"][ds][model]
            row += [acc["pegasus"], acc["float"]]
        rows.append(row)
    headers = ["model"]
    for ds in DATASET_NAMES:
        headers += [f"{ds}-switch", f"{ds}-float"]
    print()
    print(render_table(headers, rows, title="Figure 9a-c — switch vs CPU/GPU F1"))

    tp_rows = [[m, f"{t['pegasus']:.2e}", f"{t['gpu']:.2e}", f"{t['cpu']:.2e}",
                f"{t['pegasus'] / t['cpu']:.0f}x"]
               for m, t in results["throughput"].items()]
    print()
    print(render_table(["model", "switch pps", "gpu", "cpu", "switch/cpu"],
                       tp_rows, title="Figure 9d — throughput (samples/s)"))

    # Accuracy loss vs float stays bounded on average (paper: ~1%, we allow
    # more because our datasets/models are far smaller).
    losses = [results["accuracy"][d][m]["float"] - results["accuracy"][d][m]["pegasus"]
              for d in DATASET_NAMES for m in PEGASUS_MODELS]
    assert np.mean(losses) < 0.05
    # CNN-L specifically is nearly lossless (paper: 0.2-0.9%).
    cnn_l_loss = np.mean([results["accuracy"][d]["CNN-L"]["float"]
                          - results["accuracy"][d]["CNN-L"]["pegasus"]
                          for d in DATASET_NAMES])
    assert cnn_l_loss < 0.02
    # Throughput: switch >> GPU > CPU for every model.
    for t in results["throughput"].values():
        assert t["pegasus"] > 100 * t["gpu"] > 100 * t["cpu"] / 100
