"""Feature extraction: the three input views the paper's models consume.

1. **Statistical features** (MLP-B, N3IC, Leo): 16 8-bit features = 128-bit
   input scale, built from max/min packet length and inter-packet delay plus
   the first packets' buckets — exactly the "fair" feature set the paper
   restricts itself to (§6.3).
2. **Sequence tokens** (RNN-B, CNN-B/M, BoS): a window of 8 packets encoded
   as 16 interleaved (length-bucket, IPD-bucket) 8-bit tokens = 128 bits.
3. **Raw bytes** (CNN-L): 60 raw payload bytes from each of 8 packets =
   3840-bit input scale.

All buckets are 8-bit so a mapping-table query needs at most 2^8 entries,
the property Pegasus's design ❸ relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.net.flow import Flow
from repro.net.packet import Packet, MAX_PACKET_LENGTH

N_STAT_FEATURES = 16          # 16 x 8b = 128-bit statistical input
SEQ_WINDOW = 8                # packets per classification window
SEQ_TOKENS = 2 * SEQ_WINDOW   # (length, IPD) token pair per packet
RAW_BYTES_PER_PACKET = 60     # CNN-L raw view: 60 B x 8 pkts = 3840 bits

_IPD_LOG_SCALE = 16.0         # buckets per doubling of microseconds


def length_bucket(length: int) -> int:
    """Quantize a packet length to 8 bits (linear over the MTU range)."""
    return min(int(length) * 255 // MAX_PACKET_LENGTH, 255)


def ipd_bucket(delta_seconds: float) -> int:
    """Quantize an inter-packet delay to 8 bits (log scale over us..s)."""
    micros = max(delta_seconds, 0.0) * 1e6
    return min(int(np.log2(micros + 1.0) * _IPD_LOG_SCALE / 2.0), 255)


def length_bucket_array(lengths: np.ndarray) -> np.ndarray:
    """Vectorized :func:`length_bucket`: bit-identical per element."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.minimum(lengths * 255 // MAX_PACKET_LENGTH, 255)


def ipd_bucket_array(delta_seconds: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ipd_bucket`: bit-identical per element.

    Uses the exact same float64 expression as the scalar form, so the
    batched runtimes make the same bucket decisions as per-packet replay.
    """
    micros = np.maximum(np.asarray(delta_seconds, dtype=np.float64), 0.0) * 1e6
    return np.minimum((np.log2(micros + 1.0) * _IPD_LOG_SCALE / 2.0).astype(np.int64),
                      255)


def _packet_buckets(packets: list[Packet]) -> tuple[list[int], list[int]]:
    lens = [length_bucket(p.length) for p in packets]
    times = [p.ts for p in packets]
    ipds = [ipd_bucket(b - a) for a, b in zip(times, times[1:])]
    return lens, ipds


def stats_from_buckets(lens: list[int], ipds: list[int]) -> np.ndarray:
    """16 uint8 statistical features from already-bucketed length/IPD lists.

    Layout: [max_len, min_len, max_ipd, min_ipd,
             len buckets of first 6 packets, ipd buckets of first 6 gaps].
    Shared by the offline extractor and the switch runtime so both compute
    the identical feature vector.
    """
    if not lens:
        raise ShapeError("cannot extract features from an empty window")
    if not ipds:
        ipds = [0]
    feats = [max(lens), min(lens), max(ipds), min(ipds)]
    feats += (list(lens) + [0] * 6)[:6]
    feats += (list(ipds) + [0] * 6)[:6]
    return np.asarray(feats, dtype=np.uint8)


def flow_statistical_features(packets: list[Packet]) -> np.ndarray:
    """16 uint8 statistical features from a packet window."""
    lens, ipds = _packet_buckets(packets)
    return stats_from_buckets(lens, ipds)


def sequence_tokens(packets: list[Packet]) -> np.ndarray:
    """Interleaved (length, IPD) 8-bit tokens for a window: shape (2*W,)."""
    if len(packets) != SEQ_WINDOW:
        raise ShapeError(f"sequence view needs exactly {SEQ_WINDOW} packets, got {len(packets)}")
    lens, ipds = _packet_buckets(packets)
    ipds = [0] + ipds  # first packet of the window has no preceding gap
    tokens = np.empty(SEQ_TOKENS, dtype=np.uint8)
    tokens[0::2] = lens
    tokens[1::2] = ipds
    return tokens


def raw_byte_matrix(packets: list[Packet], n_bytes: int = RAW_BYTES_PER_PACKET) -> np.ndarray:
    """First ``n_bytes`` payload bytes of each packet: shape (W, n_bytes) uint8."""
    if len(packets) != SEQ_WINDOW:
        raise ShapeError(f"raw-byte view needs exactly {SEQ_WINDOW} packets, got {len(packets)}")
    out = np.zeros((len(packets), n_bytes), dtype=np.uint8)
    for i, pkt in enumerate(packets):
        take = min(pkt.payload_len, n_bytes)
        out[i, :take] = pkt.payload[:take]
    return out


def dataset_views(flows: list[Flow], window: int = SEQ_WINDOW,
                  max_windows_per_flow: int = 3,
                  stride: int | None = None) -> dict[str, np.ndarray]:
    """Extract all three feature views plus labels for a list of flows.

    Returns arrays keyed ``stats`` (N, 16), ``seq`` (N, 16), ``raw``
    (N, 8, 60), ``y`` (N,) — one row per classification window. Capping
    windows per flow keeps classes balanced across flow lengths.
    """
    from repro.net.flow import flow_windows  # local import avoids a cycle

    if stride is None:
        stride = max(window // 2, 1)
    stats, seqs, raws, labels = [], [], [], []
    for flow in flows:
        for win in flow_windows(flow, window, stride)[:max_windows_per_flow]:
            stats.append(flow_statistical_features(win))
            seqs.append(sequence_tokens(win))
            raws.append(raw_byte_matrix(win))
            labels.append(flow.label)
    return {
        "stats": np.asarray(stats, dtype=np.uint8),
        "seq": np.asarray(seqs, dtype=np.uint8),
        "raw": np.asarray(raws, dtype=np.uint8),
        "y": np.asarray(labels, dtype=np.int64),
    }
