"""Differential replay harness: matrix identity, fault catching, shrinking."""

import json

import numpy as np
import pytest

from repro.eval import differential as dfl
from repro.net import build_scenario, read_trace, scenario_names
from repro.serving.engine import lookup_backends


@pytest.fixture(scope="module")
def sources():
    return dfl.default_sources(seed=0)


@pytest.fixture(scope="module")
def workload():
    return build_scenario("microburst").generate(seed=5, flows_scale=0.2)


class TestMatrix:
    def test_build_cases_covers_every_axis(self):
        cases = dfl.build_cases()
        assert {c.runtime for c in cases} == {"windowed", "two_stage"}
        assert {c.topology for c in cases} == {"local", "sharded", "parallel"}
        assert {c.lookup_backend for c in cases} == \
            {"index", "tcam", "tcam-pruned"}
        assert {c.cache_mode for c in cases} == {"off", "l1", "l1+l2"}
        assert all(c.n_workers == 1 for c in cases if c.topology == "local")
        assert len({c.label for c in cases}) == len(cases)
        # every (backend, cache) pair appears in some scaled-out topology
        scaled = {(c.lookup_backend, c.cache_mode) for c in cases
                  if c.topology != "local"}
        assert len(scaled) == 9

    def test_case_config_roundtrip(self):
        case = dfl.EngineCase("windowed", "sharded", 2, "tcam", True, 32)
        assert case.cache_mode == "l1" and case.cached   # bool back-compat
        config = case.config()
        assert (config.topology, config.n_workers) == ("sharded", 2)
        assert config.lookup_backend == "tcam"
        assert config.decision_cache == "l1" and config.batch_size == 32
        two = dfl.EngineCase(decision_cache="l1+l2")
        assert two.config().decision_cache == "l1+l2"
        off = dfl.EngineCase(decision_cache=False)
        assert off.cache_mode == "off" and not off.cached

    @pytest.mark.parametrize("family", ["heavy_hitters", "flow_churn"])
    def test_quick_matrix_bit_identical(self, sources, family):
        w = build_scenario(family).generate(seed=11, flows_scale=0.2)
        report = dfl.run_differential(w, sources=sources,
                                      cases=dfl.quick_cases())
        assert report.ok, report.summary()
        assert report.decisions_match and report.stats_consistent
        assert all(r["match"] for r in report.rows)

    def test_full_matrix_every_family(self, sources):
        """The acceptance bit: the FULL topology x cache x lookup_backend x
        runtime matrix (parallel workers included) is bit-identical to the
        scalar reference on every registered scenario family."""
        cases = dfl.build_cases()
        assert len(cases) == 54
        for family in scenario_names():
            w = build_scenario(family).generate(seed=13, flows_scale=0.12)
            report = dfl.run_differential(w, sources=sources, cases=cases)
            assert report.ok, (family, report.summary())

    def test_full_matrix_single_runtime(self, sources, workload):
        cases = dfl.build_cases(runtimes=("windowed",),
                                worker_counts=(1, 2),
                                include_parallel=False)
        report = dfl.run_differential(workload, sources=sources, cases=cases)
        assert report.ok, report.summary()
        cached = [r for r in report.rows if r["cache"] is not None]
        assert cached and all(len(r["cache"]) == 4 for r in cached)
        # one cache lookup per decision, split across exact/approx/miss
        for r in cached:
            exact, approx, misses, _ = r["cache"]
            assert exact + approx + misses == r["n_decisions"], r
        # eviction-free: every cached config agrees on exact (L1) hits,
        # whatever the backend, topology, or L2 setting
        assert len({r["cache"][0] for r in cached}) == 1
        # within one replica layout the FULL counter tuple is identical
        # across lookup backends (they never touch the cache)
        by_layout = {}
        for r in cached:
            key = (r["cache_mode"], r["topology"], r["n_workers"])
            by_layout.setdefault(key, set()).add(r["cache"])
        assert all(len(tuples) == 1 for tuples in by_layout.values()), \
            by_layout
        # the l1+l2 rows actually exercised the approximate path
        assert any(r["cache"][1] > 0 for r in cached
                   if r["cache_mode"] == "l1+l2")

    def test_report_summaries(self, sources, workload):
        report = dfl.run_differential(
            workload, sources=sources,
            cases=[dfl.EngineCase(batch_size=48)])
        s = report.summary()
        assert s["scenario"] == workload.scenario
        assert s["decisions_match"] and s["stats_consistent"]
        fuzz = dfl.FuzzReport(trials=[{"ok": True}], seconds=1.0)
        fs = fuzz.summary()
        assert fs["ok"] and fs["trials"] == 1

    def test_first_divergence_length_mismatch(self, sources, workload):
        ref = dfl.scalar_reference(sources["windowed"], "windowed",
                                   workload.trace, workload.labels)
        div = dfl.first_divergence(ref, ref[:-1], "case-x")
        assert div is not None and div.index == len(ref) - 1
        assert div.got is None and "case-x" in div.describe()
        assert dfl.first_divergence(ref, list(ref), "y") is None

    def test_stat_notes_flag_inconsistency(self):
        rows = [
            {"case": "a", "runtime": "windowed", "topology": "local",
             "n_workers": 1, "batch_size": 64, "cache_mode": "l1",
             "n_decisions": 10, "match": True, "cache": (4, 5, 0, 0),
             "flushes": 3},
            {"case": "b", "runtime": "windowed", "topology": "sharded",
             "n_workers": 1, "batch_size": 64, "cache_mode": "l1",
             "n_decisions": 9, "match": True, "cache": (3, 6, 0, 0),
             "flushes": 4},
        ]
        notes: list[str] = []
        dfl._check_stats(rows, notes)
        assert any("cache lookups" in n for n in notes)        # 4+5+0 != 10
        assert any("disagree" in n for n in notes)             # exact 4 vs 3
        assert any("counters diverge" in n for n in notes)     # same layout
        assert any("flush totals" in n for n in notes)


class TestScalarReference:
    def test_reference_matches_engine_local(self, sources, workload):
        ref = dfl.scalar_reference(sources["windowed"], "windowed",
                                   workload.trace, workload.labels)
        from repro.serving import PegasusEngine
        case = dfl.EngineCase()
        with PegasusEngine(source=sources["windowed"],
                           config=case.config()) as eng:
            got = eng.serve(workload.trace, labels=workload.labels)
        assert got.decisions == ref

    def test_two_stage_spec_deterministic(self):
        a = dfl.build_two_stage_spec(seed=3)
        b = dfl.build_two_stage_spec(seed=3)
        assert all(np.array_equal(x, y)
                   for x, y in zip(a["slot_values"], b["slot_values"]))


class TestFaultInjection:
    @pytest.fixture()
    def fault(self):
        name = dfl.install_fault_backend("index+fault-test", period=7,
                                         offset=3)
        yield name
        lookup_backends.unregister(name)

    def test_fault_is_caught(self, sources, workload, fault):
        case = dfl.EngineCase("windowed", "local", 1, fault, False, 64)
        report = dfl.run_differential(workload, sources=sources, cases=[case])
        assert not report.ok
        assert report.divergences and report.divergences[0].case == case.label
        assert "divergence at decision" in report.divergences[0].describe()

    def test_fault_shrinks_to_minimal_trace(self, sources, workload, fault):
        case = dfl.EngineCase("windowed", "local", 1, fault, False, 64)
        failing = dfl.make_failing_predicate(case, sources["windowed"])
        assert failing(workload.trace, workload.labels)
        shrunk, labels = dfl.shrink_failing_trace(
            workload.trace, workload.labels, failing, max_evals=150)
        # still failing, and minimal: a decision needs a full window-8 flow
        assert failing(shrunk, labels)
        assert len(shrunk.packets) < workload.n_packets
        assert len(shrunk.packets) <= 16
        assert len(labels) == len(shrunk.packets)

    def test_fuzz_finds_and_writes_artifact(self, sources, fault, tmp_path):
        cases = [dfl.EngineCase("windowed", "local", 1, "index", False, 64),
                 dfl.EngineCase("windowed", "local", 1, fault, False, 64)]
        report = dfl.fuzz_differential(
            n_seeds=0, budget_seconds=120.0, base_seed=5,
            scenarios=("diurnal",), cases=cases, sources=sources,
            flows_scale=0.2, out_dir=tmp_path, shrink_evals=120)
        assert not report.ok and len(report.findings) == 1
        finding = report.findings[0]
        assert finding.case == cases[1].label
        assert finding.shrunk_packets < finding.original_packets
        # artifact round-trips: committed trace re-fails the harness
        meta = json.loads((tmp_path / "finding0_diurnal_s5.json").read_text())
        assert meta["shrunk_packets"] == finding.shrunk_packets
        trace = read_trace(finding.trace_path)
        assert len(trace.packets) == finding.shrunk_packets
        assert dfl.trace_digest(trace) == meta["trace_sha256"]
        failing = dfl.make_failing_predicate(cases[1], sources["windowed"])
        assert failing(trace, np.asarray(meta["labels"], dtype=np.int64))


class TestFuzzClean:
    def test_fuzz_clean_matrix_passes(self, sources):
        rows = []
        report = dfl.fuzz_differential(
            n_seeds=1, budget_seconds=120.0, base_seed=0,
            scenarios=("flow_churn",),
            cases=[dfl.EngineCase("windowed", "local", 1, "index", True, 48),
                   dfl.EngineCase("windowed", "sharded", 2, "tcam", False, 48)],
            sources=sources, flows_scale=0.15,
            progress=rows.append)
        assert report.ok and len(report.trials) == 2 == len(rows)
        assert all(t["ok"] for t in report.trials)

    def test_fuzz_budget_timeboxed(self, sources):
        report = dfl.fuzz_differential(
            n_seeds=50, budget_seconds=0.0, base_seed=0,
            cases=[dfl.EngineCase()], sources=sources)
        assert report.budget_exhausted
        assert len(report.trials) == 0


class TestDigests:
    def test_decision_digest_sensitive(self, sources, workload):
        ref = dfl.scalar_reference(sources["windowed"], "windowed",
                                   workload.trace, workload.labels)
        d1 = dfl.decision_digest(ref)
        assert d1 == dfl.decision_digest(list(ref))
        import copy
        mutated = copy.deepcopy(ref)
        mutated[0].predicted ^= 1
        assert dfl.decision_digest(mutated) != d1

    def test_trace_digest_matches_file_bytes(self, workload, tmp_path):
        import hashlib

        from repro.net import write_trace
        path = tmp_path / "w.spcap"
        write_trace(workload.trace, path)
        assert hashlib.sha256(path.read_bytes()).hexdigest() == \
            dfl.trace_digest(workload.trace)


class TestCLI:
    def test_main_clean_exit(self, capsys):
        rc = dfl.main(["--seeds", "0", "--budget-seconds", "60",
                       "--flows-scale", "0.12", "--scenarios", "microburst"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bit-identical" in out

    def test_scenario_rotation_covers_families(self):
        # the CLI default rotates round-robin over every registered family
        assert len(scenario_names()) >= 6
