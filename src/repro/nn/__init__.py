"""A pure-NumPy neural-network substrate.

The paper trains its models in a conventional DL framework before compiling
them to the dataplane. No GPU framework is available offline, so this package
implements the needed subset from scratch: layers with explicit forward and
backward passes, losses, optimizers, and a training loop. It also provides
straight-through-estimator binarization used by the N3IC and BoS baselines.
"""

from repro.nn.module import Parameter, Module, Sequential
from repro.nn.layers import (
    Linear,
    Conv1d,
    BatchNorm1d,
    ReLU,
    Tanh,
    Sigmoid,
    Softmax,
    MaxPool1d,
    AvgPool1d,
    GlobalMaxPool1d,
    Embedding,
    Flatten,
    Transpose12,
)
from repro.nn.rnn import RNNCell, WindowedRNN
from repro.nn.binary import BinarizeSTE, BinaryLinear
from repro.nn.losses import CrossEntropyLoss, MSELoss, MAELoss
from repro.nn.optim import SGD, Adam
from repro.nn.train import fit, predict_classes, iterate_minibatches

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Linear",
    "Conv1d",
    "BatchNorm1d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Softmax",
    "MaxPool1d",
    "AvgPool1d",
    "GlobalMaxPool1d",
    "Embedding",
    "Flatten",
    "Transpose12",
    "RNNCell",
    "WindowedRNN",
    "BinarizeSTE",
    "BinaryLinear",
    "CrossEntropyLoss",
    "MSELoss",
    "MAELoss",
    "SGD",
    "Adam",
    "fit",
    "predict_classes",
    "iterate_minibatches",
]
