"""Classification and detection metrics.

The paper reports packet-level *macro-accuracy* — the unweighted mean
F1-score across classes (§7.1) — plus overall precision/recall, and AUC for
the unsupervised detector (§7.4).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray,
                     n_classes: int | None = None) -> np.ndarray:
    """Counts[i, j] = samples of true class i predicted as class j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ShapeError(f"label shapes differ: {y_true.shape} vs {y_pred.shape}")
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    counts = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(counts, (y_true, y_pred), 1)
    return counts


def macro_precision_recall_f1(y_true: np.ndarray, y_pred: np.ndarray,
                              n_classes: int | None = None
                              ) -> tuple[float, float, float]:
    """Macro-averaged (precision, recall, F1) — the paper's PR / RC / F1."""
    cm = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(cm).astype(np.float64)
    pred_pos = cm.sum(axis=0).astype(np.float64)
    true_pos = cm.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(pred_pos > 0, tp / pred_pos, 0.0)
        recall = np.where(true_pos > 0, tp / true_pos, 0.0)
        f1 = np.where(precision + recall > 0,
                      2 * precision * recall / (precision + recall), 0.0)
    present = true_pos > 0  # macro over classes that appear in the data
    if not present.any():
        return 0.0, 0.0, 0.0
    return (float(precision[present].mean()),
            float(recall[present].mean()),
            float(f1[present].mean()))


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray,
             n_classes: int | None = None) -> float:
    """The paper's headline metric."""
    return macro_precision_recall_f1(y_true, y_pred, n_classes)[2]


def roc_curve(labels: np.ndarray, scores: np.ndarray
              ) -> tuple[np.ndarray, np.ndarray]:
    """(false-positive rates, true-positive rates) over all thresholds.

    ``labels``: 1 = positive (attack), 0 = negative (benign).
    ``scores``: higher = more anomalous.
    """
    labels = np.asarray(labels, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ShapeError(f"shapes differ: {labels.shape} vs {scores.shape}")
    n_pos = int(labels.sum())
    n_neg = len(labels) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ShapeError("ROC needs both positive and negative samples")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(1 - sorted_labels)
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    return fpr, tpr


def auc_score(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr = roc_curve(labels, scores)
    return float(np.trapezoid(tpr, fpr))
