"""Tests for the serving layer: batch scheduling and sharded dispatch."""

import numpy as np
import pytest

from repro.dataplane.runtime import WindowedClassifierRuntime
from repro.net.traces import Trace
from repro.serving import BatchScheduler, ShardedDispatcher, shard_hash


class TestBatchScheduler:
    def test_spans_partition_trace(self):
        ts = np.linspace(0.0, 1.0, 100)
        spans = BatchScheduler(batch_size=32).spans(ts)
        assert spans == [(0, 32), (32, 64), (64, 96), (96, 100)]

    def test_flush_on_batch_full(self):
        sched = BatchScheduler(batch_size=10)
        sched.spans(np.linspace(0.0, 1.0, 30))
        assert sched.stats.full == 3
        assert sched.stats.timeout == 0

    def test_flush_on_timeout(self):
        # 0.1 s between packets, 0.25 s timeout: at most 3 packets per batch.
        ts = np.arange(20) * 0.1
        sched = BatchScheduler(batch_size=256, timeout=0.25)
        spans = sched.spans(ts)
        assert all(stop - start <= 3 for start, stop in spans)
        assert sched.stats.timeout > 0
        # Spans still partition the trace.
        flat = [i for start, stop in spans for i in range(start, stop)]
        assert flat == list(range(20))

    def test_timeout_always_makes_progress(self):
        # Timeout shorter than any gap: one-packet batches, never stuck.
        ts = np.arange(5) * 1.0
        spans = BatchScheduler(batch_size=4, timeout=1e-9).spans(ts)
        assert spans == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            BatchScheduler(batch_size=0)
        with pytest.raises(ValueError):
            BatchScheduler(timeout=-1.0)


class TestShardedDispatcher:
    def _dispatcher(self, compiled16, n_shards, **sched_kwargs):
        return ShardedDispatcher(
            runtime_factory=lambda: WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=32),
            n_shards=n_shards,
            scheduler=BatchScheduler(batch_size=32, **sched_kwargs))

    def test_sharded_matches_unsharded(self, compiled16, replay_flows):
        """Shard counts that do not divide the 24-flow workload stay exact."""
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        assert ref
        for n_shards in (1, 5, 7):
            assert len(replay_flows) % n_shards != 0 or n_shards == 1
            got = self._dispatcher(compiled16, n_shards).serve_flows(replay_flows)
            assert got == ref

    def test_timeout_flushes_do_not_change_decisions(self, compiled16, replay_flows):
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        disp = self._dispatcher(compiled16, 3, timeout=0.01)
        assert disp.serve_flows(replay_flows) == ref
        # flush_stats aggregates over all shards, not just the last one.
        assert disp.flush_stats.total >= disp.scheduler.stats.total > 0

    def test_flows_pinned_to_one_shard(self, compiled16, replay_flows):
        disp = self._dispatcher(compiled16, 4)
        trace = Trace.from_flows(replay_flows)
        shard_of_key = {}
        for key in trace.canonical_keys():
            shard = disp.shard_of(key)
            assert shard_of_key.setdefault(key, shard) == shard
        # A sane hash spreads 24 flows over more than one replica.
        assert len(set(shard_of_key.values())) > 1

    def test_serve_trace_without_labels(self, compiled16, replay_flows):
        disp = self._dispatcher(compiled16, 2)
        decisions = disp.serve_trace(Trace.from_flows(replay_flows))
        assert decisions
        assert all(d.flow_label == -1 for d in decisions)
        seqs = [d.seq for d in decisions]
        assert seqs == sorted(seqs)

    def test_shard_hash_deterministic(self):
        from repro.net.packet import FlowKey
        key = FlowKey(0x0A000001, 0x0A000002, 443, 51234, 6)
        assert shard_hash(key) == shard_hash(FlowKey(*key))
        assert shard_hash(key) != shard_hash(key.reversed())

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            ShardedDispatcher(runtime_factory=lambda: None, n_shards=0)
