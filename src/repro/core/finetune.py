"""Mapping optimization (paper §4.4): refine tables after materialization.

Fuzzy matching replaces inputs with centroids, which introduces
approximation error. The paper fine-tunes the stored centroids and cluster
parameters with backpropagation through a soft (differentiable) rendering of
the clustering tree, following Zhang'21's matrix formulation of decision
trees. Two refiners are provided:

- :func:`refine_values_least_squares` — with cluster assignments fixed, the
  optimal table *values* minimize a linear least-squares problem; this is
  the closed-form special case and the default because it is deterministic
  and fast.
- :class:`SoftTreeFineTuner` — full gradient refinement that relaxes each
  comparison ``x_f <= t`` into a sigmoid, so both table values *and*
  thresholds receive gradients (the paper's method).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CompilationError
from repro.core.fuzzy import FuzzyNode, FuzzyTree
from repro.core.mapping import LookupLayer


def refine_values_least_squares(layer: LookupLayer, calib_int: np.ndarray,
                                targets: np.ndarray, ridge: float = 1e-6) -> None:
    """Re-solve a sum-reduce layer's table values against float targets.

    With the fuzzy assignment of every calibration input fixed, the layer
    output is linear in the stored values, so the values minimizing
    ``||sum_s V_s[idx_s(x)] - target(x)||^2`` solve a ridge-regularized
    least-squares system. Values are updated in place (re-quantized).
    """
    if not layer.sum_reduce:
        raise CompilationError("least-squares refinement expects a SumReduce layer")
    calib_int = np.asarray(calib_int, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.float64)
    n = len(calib_int)

    # Design matrix: one-hot fuzzy index per segment, concatenated.
    blocks = []
    offsets = [0]
    for table in layer.tables:
        seg = calib_int[:, table.segment[0]:table.segment[1]]
        if table.kind == "fuzzy":
            idx = table.tree.predict_index(seg)
        else:
            idx = np.clip(seg[:, 0] - table.exact_lo, 0, table.n_entries - 1)
        hot = np.zeros((n, table.n_entries))
        hot[np.arange(n), idx] = 1.0
        blocks.append(hot)
        offsets.append(offsets[-1] + table.n_entries)
    design = np.concatenate(blocks, axis=1)

    gram = design.T @ design + ridge * np.eye(design.shape[1])
    solution = np.linalg.solve(gram, design.T @ targets)

    fmt = layer.out_format
    for table, start, stop in zip(layer.tables, offsets, offsets[1:]):
        table.values_int = fmt.quantize(solution[start:stop])


def _leaf_paths(tree: FuzzyTree) -> list[list[tuple[FuzzyNode, bool]]]:
    """Per-leaf list of (node, went_left) along the root-to-leaf path."""
    paths: list[list[tuple[FuzzyNode, bool]] | None] = [None] * tree.n_leaves

    def walk(node, path):
        if isinstance(node, int):
            paths[node] = path
            return
        walk(node.left, path + [(node, True)])
        walk(node.right, path + [(node, False)])

    walk(tree.root, [])
    return paths  # type: ignore[return-value]


@dataclass
class SoftTreeFineTuner:
    """Gradient refinement of one sum-reduce lookup layer.

    Each comparison relaxes to ``sigma((t - x_f) / temperature)``; leaf
    probabilities are path products; the layer output becomes a
    probability-weighted sum of table values, differentiable in both the
    values and the thresholds.
    """

    layer: LookupLayer
    temperature: float = 4.0
    lr_values: float = 0.1
    lr_thresholds: float = 0.5

    def _soft_assign(self, table, seg: np.ndarray) -> tuple[np.ndarray, list]:
        """Soft leaf probabilities (N, L) and the per-leaf paths."""
        paths = _leaf_paths(table.tree)
        n = len(seg)
        probs = np.ones((n, table.n_entries))
        for leaf, path in enumerate(paths):
            for node, went_left in path:
                s = 1.0 / (1.0 + np.exp(-(node.threshold - seg[:, node.feature])
                                        / self.temperature))
                probs[:, leaf] *= s if went_left else (1.0 - s)
        return probs, paths

    def fit(self, calib_int: np.ndarray, targets: np.ndarray,
            epochs: int = 30, tune_thresholds: bool = True) -> list[float]:
        """Minimize MSE to float targets; returns the loss curve."""
        if not self.layer.sum_reduce:
            raise CompilationError("soft-tree refinement expects a SumReduce layer")
        calib_int = np.asarray(calib_int, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        fmt = self.layer.out_format
        fuzzy_tables = [t for t in self.layer.tables if t.kind == "fuzzy"]

        # Work on float copies of the values.
        values = {id(t): fmt.dequantize(t.values_int) for t in self.layer.tables}
        losses: list[float] = []
        n = len(calib_int)
        for _ in range(epochs):
            # Forward: soft for fuzzy tables, hard for exact tables.
            pred = np.zeros_like(targets)
            cache = {}
            for table in self.layer.tables:
                seg = calib_int[:, table.segment[0]:table.segment[1]]
                if table.kind == "fuzzy":
                    probs, paths = self._soft_assign(table, seg)
                    cache[id(table)] = (probs, paths, seg)
                    pred += probs @ values[id(table)]
                else:
                    idx = np.clip(seg[:, 0].astype(np.int64) - table.exact_lo,
                                  0, table.n_entries - 1)
                    pred += values[id(table)][idx]
            err = pred - targets
            losses.append(float(np.mean(err ** 2)))
            grad_out = 2.0 * err / (n * max(targets.shape[-1], 1))

            for table in fuzzy_tables:
                probs, paths, seg = cache[id(table)]
                v = values[id(table)]
                # Value gradient: dL/dV = P^T grad.
                v -= self.lr_values * (probs.T @ grad_out)
                if not tune_thresholds:
                    continue
                # Threshold gradient via the path-product derivative.
                per_leaf = grad_out @ v.T           # (N, L) dL/dP
                node_grads: dict[int, float] = {}
                for leaf, path in enumerate(paths):
                    for node, went_left in path:
                        s = 1.0 / (1.0 + np.exp(
                            -(node.threshold - seg[:, node.feature]) / self.temperature))
                        ds_dt = s * (1.0 - s) / self.temperature
                        if went_left:
                            factor = probs[:, leaf] / np.maximum(s, 1e-12)
                        else:
                            factor = -probs[:, leaf] / np.maximum(1.0 - s, 1e-12)
                        g = float(np.sum(per_leaf[:, leaf] * factor * ds_dt))
                        node_grads[id(node)] = node_grads.get(id(node), 0.0) + g
                self._apply_threshold_grads(table.tree.root, node_grads)

        # Write back quantized values; recompute hard centroids' results.
        for table in self.layer.tables:
            table.values_int = fmt.quantize(values[id(table)])
        return losses

    def _apply_threshold_grads(self, node, node_grads) -> None:
        if isinstance(node, int):
            return
        g = node_grads.get(id(node))
        if g is not None:
            node.threshold = float(np.floor(node.threshold - self.lr_thresholds * g))
        self._apply_threshold_grads(node.left, node_grads)
        self._apply_threshold_grads(node.right, node_grads)
