"""Ablation: activation precision (design ❸ — full-precision weights with
fixed-point activations) and the §4.4 mapping optimization.

Shape: adaptive fixed-point formats dominate naive fixed formats; the
least-squares centroid refinement never hurts and usually helps.
"""

import numpy as np

from repro.core import PegasusCompiler, CompilerConfig
from repro.eval.metrics import macro_f1
from repro.eval.reporting import render_table
from repro.eval.runner import prepare_dataset
from repro.models import build_model


def _run(scale):
    train_v, _v, test_v, n_classes = prepare_dataset(
        "peerrush", scale["flows_per_class"], scale["seed"])
    model = build_model("MLP-B", n_classes, seed=scale["seed"])
    model.train(train_v)
    calib = train_v["stats"].astype(np.int64)
    test = test_v["stats"].astype(np.int64)
    rows = []
    for bits in (4, 6, 8, 16):
        for refine in (False, True):
            result = PegasusCompiler(CompilerConfig(
                act_bits=bits, fuzzy_leaves=256,
                refine=refine)).compile_sequential(model.net, calib)
            f1 = macro_f1(test_v["y"], result.compiled.predict(test), n_classes)
            rows.append({"act_bits": bits, "refine": refine, "F1": f1})
    return rows


def test_ablation_quantization(benchmark, bench_scale):
    rows = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    print(render_table(["act bits", "LS refine", "F1"],
                       [[r["act_bits"], r["refine"], r["F1"]] for r in rows],
                       title="Ablation — activation precision x refinement"))
    by_key = {(r["act_bits"], r["refine"]): r["F1"] for r in rows}
    # 4-bit activations are too coarse; 8-bit recovers most accuracy.
    assert by_key[(8, True)] > by_key[(4, True)] - 0.02
    # Refinement helps (or at least does not hurt) at the paper's 8 bits.
    assert by_key[(8, True)] >= by_key[(8, False)] - 0.02
