"""Open-loop serving suite: sustained pps at a fixed p99 latency target.

Replays the stress scenario families (microburst, attack flood) through
``PegasusEngine.serve(mode="open")`` at several offered-load multiples of
the engine's measured closed-loop service rate, once per admission policy.
The headline row is **sustained pps** — the highest admitted throughput
whose p99 sojourn still met the target — where the AIMD source throttle
must beat tail-drop: shedding at the source keeps admitted packets' queue
sojourn under the SLO instead of parking them behind a full buffer. Every
policy's highest-load run is differentially verified (the claimed admitted
subsequence replays bit-identically against the scalar reference), asserted
as a hard correctness bit and exported to the ``openloop`` section of
``BENCH_serving.json``.
"""

from repro.eval.reporting import (render_openloop_table, render_table,
                                  update_bench_json)
from repro.eval.runner import TAILDROP_ZERO, run_openloop_study

P99_TARGET_MS = 50.0


def _run(scale):
    return run_openloop_study(flows_per_class=scale["flows_per_class"],
                              seed=scale["seed"], flows_scale=1.0,
                              p99_target_ms=P99_TARGET_MS,
                              load_multipliers=(0.5, 2.0, 4.0))


def test_openloop_study(benchmark, bench_scale):
    res = benchmark.pedantic(_run, args=(bench_scale,), rounds=1,
                             iterations=1)
    print()
    for name, entry in res["scenarios"].items():
        rows = [[policy, run["load_multiplier"],
                 run["offered_pps"], run["admitted_pps"],
                 f"{run['shed_fraction']:.3f}", f"{run['p99_ms']:.1f}",
                 "MET" if run["meets_target"] else "missed"]
                for policy, prow in entry["policies"].items()
                for run in prow["runs"]]
        print(render_table(
            ["policy", "load", "offered_pps", "admitted_pps", "shed_frac",
             "p99_ms", "target"],
            rows, title=f"Open-loop {name!r} (service "
                        f"{entry['service_pps']:,.0f} pps, p99 target "
                        f"{P99_TARGET_MS:.0f}ms)"))
        summary = entry["policies"]["aimd"]["last_summary"]
        if summary:
            print()
            print(render_openloop_table(summary))
        print()

    # Hard gate: the claimed admitted subsequence of every policy's
    # highest-load run replays bit-identically against the per-packet
    # scalar reference — a fast wrong (or lying) answer is not a trade-off.
    assert res["verified_bit_identical"]

    for name, entry in res["scenarios"].items():
        td = entry["policies"]["tail-drop"]["sustained_pps"]
        ai = entry["policies"]["aimd"]["sustained_pps"]
        # The AIMD source throttle must sustain *some* load under the
        # target, and strictly more than tail-drop at the same p99:
        # shedding early beats queueing. (Tail-drop legitimately sustains
        # *zero* on bursty families — every burst parks its survivors
        # behind a full queue, so tail-drop misses the SLO at any load.)
        assert ai > 0, (name, ai)
        assert ai > td, (name, ai, td)
    # The min ratio is the TAILDROP_ZERO sentinel (never null) when every
    # scenario's tail-drop sustained 0 pps; only gate the bound when the
    # ratio is actually defined.
    ratio_min = res.get("aimd_over_taildrop_min")
    if isinstance(ratio_min, (int, float)):
        assert ratio_min > 1.0

    update_bench_json("openloop", {
        "p99_target_ms": res["p99_target_ms"],
        "verified_bit_identical": res["verified_bit_identical"],
        "aimd_beats_taildrop": all(
            entry["policies"]["aimd"]["sustained_pps"]
            > entry["policies"]["tail-drop"]["sustained_pps"]
            for entry in res["scenarios"].values()),
        "aimd_over_taildrop_min": res.get("aimd_over_taildrop_min",
                                          TAILDROP_ZERO),
        "per_scenario": {
            name: {
                "service_pps": entry["service_pps"],
                "queue_capacity": entry["queue_capacity"],
                "aimd_over_taildrop": entry.get("aimd_over_taildrop",
                                                TAILDROP_ZERO),
                "sustained_raw": entry.get("sustained_raw"),
                "sustained_pps": {
                    policy: prow["sustained_pps"]
                    for policy, prow in entry["policies"].items()
                },
            } for name, entry in res["scenarios"].items()
        },
    })
