"""Binarized layers for the N3IC and BoS baselines.

N3IC binarizes the *entire* model (weights and activations to ±1) so MatMul
reduces to XNOR + popcount on the SmartNIC. BoS binarizes only the input and
output activations of each per-timestep block. Both are trained with the
straight-through estimator (STE): forward uses ``sign``, backward passes the
gradient through wherever the pre-activation magnitude is below 1.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


def sign_pm1(x: np.ndarray) -> np.ndarray:
    """Binarize to ±1 (zero maps to +1, matching N3IC's convention)."""
    return np.where(x >= 0, 1.0, -1.0)


class BinarizeSTE(Module):
    """±1 binarization with a clipped straight-through gradient."""

    def __init__(self):
        super().__init__()
        self._x = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return sign_pm1(x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * (np.abs(self._x) <= 1.0)


class BinaryLinear(Module):
    """Linear layer whose weights are binarized to ±1 in the forward pass.

    Full-precision master weights are kept for the optimizer; the forward
    pass uses their sign, exactly what deploys as packed bits on the NIC.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = new_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            rng.uniform(-1, 1, (in_features, out_features)), "binlinear.weight")
        self._x = None
        self._w_bin = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        self._w_bin = sign_pm1(self.weight.data)
        return x @ self._w_bin

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        # STE on the weights: gradient flows to the master weights as if the
        # binarization were the identity (clipped to |w| <= 1).
        grad_w = self._x.reshape(-1, self.in_features).T @ grad_out.reshape(-1, self.out_features)
        self.weight.grad += grad_w * (np.abs(self.weight.data) <= 1.0)
        return grad_out @ self._w_bin.T

    def binary_weights(self) -> np.ndarray:
        """The deployed ±1 weight matrix."""
        return sign_pm1(self.weight.data)
