"""Pegasus: a universal framework for scalable DL inference on the dataplane.

This package reproduces the SIGCOMM 2025 Pegasus system end to end:

- :mod:`repro.nn` — a pure-NumPy neural network training substrate.
- :mod:`repro.net` — packets, flows, traces, features, synthetic datasets.
- :mod:`repro.core` — the Pegasus contribution: Partition / Map / SumReduce
  primitives, fuzzy matching, primitive fusion, fixed-point quantization,
  centroid fine-tuning, and the model-to-dataplane compiler.
- :mod:`repro.dataplane` — a PISA match-action pipeline simulator with a
  Tofino-2-like resource model.
- :mod:`repro.backends` — P4_16 and eBPF code emitters.
- :mod:`repro.models` — the paper's six models (MLP-B, RNN-B, CNN-B/M/L,
  AutoEncoder).
- :mod:`repro.baselines` — N3IC, BoS and Leo reimplementations.
- :mod:`repro.eval` — metrics and the experiment harness behind every table
  and figure in the paper's evaluation.
"""

from repro.errors import (
    PegasusError,
    ShapeError,
    QuantizationError,
    CompilationError,
    ResourceExceededError,
    PipelineError,
    TraceFormatError,
    TrainingError,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "PegasusError",
    "ShapeError",
    "QuantizationError",
    "CompilationError",
    "ResourceExceededError",
    "PipelineError",
    "TraceFormatError",
    "TrainingError",
]
