"""Pegasus Syntax: the declarative frontend of the paper's Figure 6.

The paper exposes a small configuration language whose expressions mirror
the primitives::

    meta.output_vec = SumReduce(
        Map(
            Partition(meta.input_vec, dim=2, stride=2),
            clustering_depth=4,
            ...
        )
    )

This module provides the same shape in Python. A syntax expression builds a
:class:`~repro.core.primitives.PrimitiveProgram` plus the materialization
options (clustering depth -> fuzzy leaves), which the compiler then turns
into tables::

    expr = SumReduce(Map(Partition(dim=2, stride=2), fn=partial_matmul,
                         out_dim=4, clustering_depth=4))
    compiled = expr.compile(calib_int)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import CompilationError
from repro.core.mapping import CompiledModel, MaterializeConfig, materialize
from repro.core.primitives import (
    General, MapStep, PrimitiveProgram, SumReduceStep,
)


@dataclass
class Partition:
    """Partition the input into segments of ``dim``, every ``stride`` units.

    ``stride`` defaults to ``dim`` (non-overlapping, as in the paper's
    example); other strides are rejected because MAT lookups cannot share
    key bytes across segments.
    """

    dim: int
    stride: int | None = None

    def __post_init__(self):
        if self.stride is None:
            self.stride = self.dim
        if self.stride != self.dim:
            raise CompilationError(
                "only non-overlapping partitions are realizable as MAT keys "
                f"(dim={self.dim}, stride={self.stride})")

    def segments(self, input_dim: int) -> list[tuple[int, int]]:
        if input_dim % self.dim:
            raise CompilationError(
                f"input dim {input_dim} is not divisible by partition dim {self.dim}")
        return [(s, s + self.dim) for s in range(0, input_dim, self.dim)]


@dataclass
class Map:
    """Apply ``fn`` (or one function per segment via ``fns``) to each segment.

    ``clustering_depth`` sets the fuzzy tree depth: 2^depth leaves per
    segment table, the knob the paper's syntax exposes.
    """

    partition: Partition
    out_dim: int
    fn: Callable[[np.ndarray], np.ndarray] | None = None
    fns: list[Callable[[np.ndarray], np.ndarray]] | None = None
    clustering_depth: int = 4

    def __post_init__(self):
        if (self.fn is None) == (self.fns is None):
            raise CompilationError("Map needs exactly one of fn= or fns=")

    def steps(self, input_dim: int) -> tuple[list, int]:
        segments = self.partition.segments(input_dim)
        fns = self.fns if self.fns is not None else [self.fn] * len(segments)
        if len(fns) != len(segments):
            raise CompilationError(
                f"{len(fns)} functions for {len(segments)} segments")
        specs = [General(fn=f, in_dim=stop - start, out_dim=self.out_dim,
                         name=f"syntax_map{i}")
                 for i, ((start, stop), f) in enumerate(zip(segments, fns))]
        return [MapStep(partition=segments, fns=specs)], len(segments)


@dataclass
class SumReduce:
    """Aggregate the Map's segment outputs by element-wise summation."""

    inner: Map

    def program(self, input_dim: int) -> PrimitiveProgram:
        steps, n_segments = self.inner.steps(input_dim)
        steps.append(SumReduceStep(n_segments=n_segments,
                                   seg_dim=self.inner.out_dim))
        program = PrimitiveProgram(input_dim=input_dim, steps=steps)
        program.validate()
        return program

    def compile(self, calib_int: np.ndarray, act_bits: int = 16,
                input_bits: int = 8, name: str = "pegasus-syntax") -> CompiledModel:
        """Materialize the expression into an executable lookup model."""
        calib_int = np.asarray(calib_int, dtype=np.int64)
        program = self.program(calib_int.shape[1])
        cfg = MaterializeConfig(
            fuzzy_leaves=1 << self.inner.clustering_depth, act_bits=act_bits)
        return materialize(program, calib_int, cfg,
                           input_bits=input_bits, name=name)
