"""Flow assembly and windowing."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.packet import Packet, FlowKey


@dataclass
class Flow:
    """An ordered sequence of packets sharing one (canonical) 5-tuple."""

    key: FlowKey
    packets: list[Packet] = field(default_factory=list)
    label: int = -1
    class_name: str = ""

    def __len__(self) -> int:
        return len(self.packets)

    def append(self, packet: Packet) -> None:
        self.packets.append(packet)

    @property
    def start_ts(self) -> float:
        return self.packets[0].ts if self.packets else 0.0

    @property
    def duration(self) -> float:
        if len(self.packets) < 2:
            return 0.0
        return self.packets[-1].ts - self.packets[0].ts

    def inter_packet_delays(self) -> list[float]:
        """IPD sequence in seconds; empty for single-packet flows."""
        times = [p.ts for p in self.packets]
        return [b - a for a, b in zip(times, times[1:])]


def assemble_flows(packets: list[Packet]) -> dict[FlowKey, Flow]:
    """Group packets into flows by canonical 5-tuple, preserving arrival order."""
    flows: dict[FlowKey, Flow] = {}
    for pkt in sorted(packets, key=lambda p: p.ts):
        key = pkt.key.canonical()
        flow = flows.get(key)
        if flow is None:
            flow = Flow(key=key)
            flows[key] = flow
        flow.append(pkt)
    return flows


def flow_windows(flow: Flow, window: int, stride: int | None = None) -> list[list[Packet]]:
    """Sliding packet windows over a flow (the unit the switch classifies on).

    A flow shorter than ``window`` yields nothing — on the switch, the first
    ``window - 1`` packets of a flow only populate per-flow state.
    """
    if stride is None:
        stride = window
    if window <= 0 or stride <= 0:
        raise ValueError("window and stride must be positive")
    out = []
    for start in range(0, len(flow.packets) - window + 1, stride):
        out.append(flow.packets[start:start + window])
    return out
