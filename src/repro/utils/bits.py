"""Bit-level helpers used by the dataplane simulator and binarized baselines.

The PISA dataplane works on fixed-width integers, and the N3IC baseline
replaces multiply-accumulate with XNOR + population count on packed bit
vectors. These helpers implement those operations efficiently in NumPy.
"""

from __future__ import annotations

import numpy as np

# 16-bit popcount lookup table; uint64 popcount folds through it.
_POP16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)


def popcount(values: np.ndarray | int) -> np.ndarray | int:
    """Population count (number of set bits) of unsigned integers.

    Accepts scalars or arrays of any unsigned integer dtype up to 64 bits.
    """
    scalar = np.isscalar(values)
    arr = np.asarray(values, dtype=np.uint64)
    total = np.zeros(arr.shape, dtype=np.int64)
    work = arr.copy()
    for _ in range(4):
        total += _POP16[(work & np.uint64(0xFFFF)).astype(np.int64)]
        work >>= np.uint64(16)
    if scalar:
        return int(total)
    return total


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Expand an unsigned integer into a most-significant-bit-first bit array."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Collapse a most-significant-bit-first bit array back into an integer."""
    out = 0
    for b in np.asarray(bits).ravel():
        out = (out << 1) | int(b)
    return out


def pack_signs(values: np.ndarray) -> np.ndarray:
    """Pack the sign pattern of ``values`` into uint64 words along the last axis.

    A non-negative entry becomes bit 1, a negative entry bit 0 — the binary
    encoding N3IC uses for weights and activations. The last axis is padded
    with zero bits up to a multiple of 64.
    """
    values = np.asarray(values)
    bits = (values >= 0).astype(np.uint64)
    n = bits.shape[-1]
    n_words = (n + 63) // 64
    padded = np.zeros(bits.shape[:-1] + (n_words * 64,), dtype=np.uint64)
    padded[..., :n] = bits
    words = padded.reshape(bits.shape[:-1] + (n_words, 64))
    shifts = np.arange(63, -1, -1, dtype=np.uint64)
    return (words << shifts).sum(axis=-1, dtype=np.uint64)


def xnor_popcount(a: np.ndarray, b: np.ndarray, n_bits: int) -> np.ndarray:
    """Binary dot product via XNOR + popcount over packed uint64 words.

    Computes ``sum_i sign(a_i) * sign(b_i)`` for ±1-encoded vectors that were
    packed with :func:`pack_signs`. ``n_bits`` is the unpadded vector length;
    padding bits cancel out because both operands pad with the same zeros,
    which XNOR turns into ones that we subtract off.
    """
    matches = popcount(~(a ^ b))
    matches = matches.sum(axis=-1)
    pad = a.shape[-1] * 64 - n_bits
    matches = matches - pad
    return 2 * matches - n_bits
