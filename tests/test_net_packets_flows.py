"""Tests for packets, flow assembly, windowing, and trace serialization."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceFormatError
from repro.net import (
    Packet, FlowKey, Flow, assemble_flows, flow_windows,
    Trace, write_trace, read_trace,
)


def _pkt(ts=0.0, length=100, sport=1000, dport=80, payload=()):
    key = FlowKey(0x0A000001, 0x0A000002, sport, dport, 6)
    return Packet(ts=ts, length=length, key=key, payload=np.array(payload, dtype=np.uint8))


class TestFlowKey:
    def test_reversed(self):
        key = FlowKey(1, 2, 10, 20, 6)
        assert key.reversed() == FlowKey(2, 1, 20, 10, 6)

    def test_canonical_is_direction_independent(self):
        key = FlowKey(5, 2, 10, 20, 6)
        assert key.canonical() == key.reversed().canonical()

    def test_canonical_idempotent(self):
        key = FlowKey(1, 2, 10, 20, 6).canonical()
        assert key.canonical() == key


class TestPacket:
    def test_rejects_oversized(self):
        with pytest.raises(ValueError):
            _pkt(length=2000)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            _pkt(length=-1)

    def test_payload_len(self):
        assert _pkt(payload=[1, 2, 3]).payload_len == 3


class TestFlowAssembly:
    def test_groups_by_canonical_key(self):
        fwd = _pkt(ts=0.0, sport=1000, dport=80)
        rev = Packet(ts=1.0, length=60, key=fwd.key.reversed())
        flows = assemble_flows([fwd, rev])
        assert len(flows) == 1
        assert len(next(iter(flows.values()))) == 2

    def test_orders_by_timestamp(self):
        pkts = [_pkt(ts=2.0), _pkt(ts=0.5), _pkt(ts=1.0)]
        flow = next(iter(assemble_flows(pkts).values()))
        assert [p.ts for p in flow.packets] == [0.5, 1.0, 2.0]

    def test_distinct_flows_stay_separate(self):
        flows = assemble_flows([_pkt(sport=1000), _pkt(sport=1001)])
        assert len(flows) == 2

    def test_ipds(self):
        flow = Flow(key=_pkt().key, packets=[_pkt(ts=0.0), _pkt(ts=0.3), _pkt(ts=1.0)])
        np.testing.assert_allclose(flow.inter_packet_delays(), [0.3, 0.7])

    def test_duration_single_packet(self):
        assert Flow(key=_pkt().key, packets=[_pkt()]).duration == 0.0


class TestFlowWindows:
    def _flow(self, n):
        return Flow(key=_pkt().key, packets=[_pkt(ts=float(i)) for i in range(n)])

    def test_short_flow_yields_nothing(self):
        assert flow_windows(self._flow(5), window=8) == []

    def test_exact_window(self):
        assert len(flow_windows(self._flow(8), window=8)) == 1

    def test_stride(self):
        wins = flow_windows(self._flow(16), window=8, stride=4)
        assert len(wins) == 3

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            flow_windows(self._flow(8), window=0)


class TestTraceSerialization:
    def test_roundtrip(self, tmp_path):
        pkts = [_pkt(ts=0.1, length=100, payload=[1, 2, 3]),
                _pkt(ts=0.2, length=200, sport=1001, payload=list(range(50)))]
        path = tmp_path / "t.spcap"
        write_trace(Trace(pkts), path)
        back = read_trace(path)
        assert len(back) == 2
        assert back.packets[0].ts == pytest.approx(0.1)
        assert back.packets[1].length == 200
        np.testing.assert_array_equal(back.packets[0].payload, [1, 2, 3])
        assert back.packets[1].key.src_port == 1001

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.spcap"
        path.write_bytes(b"NOTATRACE")
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_truncated(self, tmp_path):
        pkts = [_pkt(payload=[1] * 20)]
        path = tmp_path / "t.spcap"
        write_trace(Trace(pkts), path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_from_flows_interleaves(self):
        f1 = Flow(key=_pkt().key, packets=[_pkt(ts=0.0), _pkt(ts=2.0)])
        f2 = Flow(key=_pkt(sport=1001).key, packets=[_pkt(ts=1.0, sport=1001)])
        trace = Trace.from_flows([f1, f2])
        assert [p.ts for p in trace.packets] == [0.0, 1.0, 2.0]

    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=1500),
        st.integers(min_value=0, max_value=100)), min_size=0, max_size=20))
    def test_roundtrip_property(self, specs):
        import tempfile
        from pathlib import Path

        pkts = [_pkt(ts=ts, length=ln, payload=[7] * pl) for ts, ln, pl in specs]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "p.spcap"
            write_trace(Trace(pkts), path)
            back = read_trace(path)
        assert len(back) == len(pkts)
        for orig, rt in zip(pkts, back.packets):
            assert rt.length == orig.length
            assert rt.payload_len == orig.payload_len
