"""``repro.analysis``: the static invariant wall.

An AST-based linter (stdlib-only) that enforces, at the line that would
break them, the contracts the dynamic test wall assumes: RNG discipline,
wall-clock-free decision paths, pickle-safe registry entries, lock-guarded
thread-shared state, shim-free internal callers, and EngineConfig /
mirror-table coherence. See ``docs/ARCHITECTURE.md`` ("Invariants & static
analysis") for the rule table and suppression syntax.

Run it::

    python -m repro.analysis src/ scripts/ benchmarks/
    python -m repro.analysis --style          # + line length / compile smoke
"""

from repro.analysis.core import (Finding, ProjectRule, Rule, analyze_paths,
                                 analyze_source)
from repro.analysis.rules import default_rules
from repro.analysis.style import check_style

__all__ = [
    "Finding",
    "ProjectRule",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "check_style",
    "default_rules",
]
