"""The paper's six models: MLP-B, RNN-B, CNN-B, CNN-M, CNN-L, AutoEncoder.

Each model wraps (a) a full-precision NumPy network and its training loop,
(b) its Pegasus dataplane compilation path, and (c) the per-flow register
layout its deployment needs. ``build_model`` constructs any of them by name.
"""

from repro.models.base import TrafficModel
from repro.models.mlp import MLPB
from repro.models.rnn import RNNB
from repro.models.cnn import CNNB, CNNM, CNNL
from repro.models.autoencoder import AutoEncoderModel

MODEL_NAMES = ("MLP-B", "RNN-B", "CNN-B", "CNN-M", "CNN-L", "AutoEncoder")


def build_model(name: str, n_classes: int, seed: int = 0):
    """Construct a model by its paper name."""
    registry = {
        "MLP-B": MLPB,
        "RNN-B": RNNB,
        "CNN-B": CNNB,
        "CNN-M": CNNM,
        "CNN-L": CNNL,
        "AutoEncoder": AutoEncoderModel,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown model {name!r}; choose from {MODEL_NAMES}") from None
    return cls(n_classes=n_classes, seed=seed)


__all__ = [
    "TrafficModel",
    "MLPB",
    "RNNB",
    "CNNB",
    "CNNM",
    "CNNL",
    "AutoEncoderModel",
    "MODEL_NAMES",
    "build_model",
]
