"""Tests for the fuzzy-matching clustering tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.core.fuzzy import FuzzyTree, _best_split


class TestBestSplit:
    def test_two_point_split(self):
        x = np.array([[0.0], [10.0]])
        red, feature, threshold = _best_split(x)
        assert feature == 0
        assert 0.0 <= threshold < 10.0
        assert red == pytest.approx(50.0)  # SSE drops from 50 to 0

    def test_no_split_possible_on_identical(self):
        assert _best_split(np.full((5, 2), 3.0)) is None

    def test_single_point(self):
        assert _best_split(np.array([[1.0, 2.0]])) is None

    def test_picks_discriminative_feature(self):
        rng = np.random.default_rng(0)
        x = np.column_stack([rng.normal(0, 0.01, 100),
                             np.concatenate([rng.normal(0, 1, 50), rng.normal(50, 1, 50)])])
        _, feature, _ = _best_split(x)
        assert feature == 1


class TestFuzzyTreePaperExample:
    """The paper's Figure 3 worked example."""

    X = np.array([[1.0, 2], [2, 2], [2, 3], [1, 7], [3, 8], [4, 9], [5, 10]])

    def test_root_split_matches_figure(self):
        # Figure 3 first splits on x1 at threshold 5.
        _, feature, threshold = _best_split(self.X)
        assert feature == 1
        assert threshold == pytest.approx(5.0, abs=1.0)

    def test_four_leaf_centroids(self):
        tree = FuzzyTree.fit(self.X, n_leaves=4)
        cents = {tuple(np.round(c, 2)) for c in tree.centroids}
        # Figure 3's final centroids.
        assert (4.5, 9.5) in cents
        assert (1.0, 7.0) in cents or (2.0, 7.5) in cents

    def test_figure2_lookup(self):
        tree = FuzzyTree.fit(self.X, n_leaves=4)
        idx = tree.predict_index(np.array([3.0, 7.0]))
        centroid = tree.centroids[idx]
        # (3, 7) lands in a cluster near (2, 7.5) / (1, 7) per Figure 2.
        assert centroid[1] > 5.0


class TestFuzzyTree:
    def test_single_leaf_tree(self):
        x = np.random.default_rng(0).normal(size=(10, 3))
        tree = FuzzyTree.fit(x, n_leaves=1)
        assert tree.n_leaves == 1
        np.testing.assert_allclose(tree.centroids[0], x.mean(axis=0))
        assert (tree.predict_index(x) == 0).all()

    def test_leaf_count_respected(self):
        x = np.random.default_rng(1).normal(size=(200, 4)) * 20
        tree = FuzzyTree.fit(x, n_leaves=16)
        assert tree.n_leaves == 16

    def test_leaf_count_capped_by_data(self):
        x = np.array([[0.0], [1.0], [5.0]])
        tree = FuzzyTree.fit(x, n_leaves=10)
        assert tree.n_leaves <= 3

    def test_indices_in_range(self):
        x = np.random.default_rng(2).normal(size=(100, 2)) * 10
        tree = FuzzyTree.fit(x, n_leaves=8)
        idx = tree.predict_index(x)
        assert idx.min() >= 0 and idx.max() < tree.n_leaves

    def test_all_leaves_reachable_on_training_data(self):
        x = np.random.default_rng(3).normal(size=(300, 3)) * 10
        tree = FuzzyTree.fit(x, n_leaves=8)
        assert len(set(tree.predict_index(x))) == tree.n_leaves

    def test_sse_decreases_with_leaves(self):
        x = np.random.default_rng(4).normal(size=(300, 3)) * 10
        sses = [FuzzyTree.fit(x, n_leaves=k).sse(x) for k in (1, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(sses, sses[1:]))

    def test_separated_clusters_recovered(self):
        rng = np.random.default_rng(5)
        centers = np.array([[0.0, 0], [50, 0], [0, 50], [50, 50]])
        x = np.vstack([c + rng.normal(0, 1, (50, 2)) for c in centers])
        tree = FuzzyTree.fit(x, n_leaves=4)
        for center in centers:
            dist = np.linalg.norm(tree.centroids - center, axis=1).min()
            assert dist < 1.0

    def test_centroid_is_mean_of_assigned(self):
        x = np.random.default_rng(6).normal(size=(200, 2)) * 10
        tree = FuzzyTree.fit(x, n_leaves=4)
        idx = tree.predict_index(x)
        for leaf in range(tree.n_leaves):
            rows = x[idx == leaf]
            np.testing.assert_allclose(tree.centroids[leaf], rows.mean(axis=0), atol=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            FuzzyTree.fit(np.zeros((0, 2)), 4)

    def test_wrong_dim_raises(self):
        tree = FuzzyTree.fit(np.random.default_rng(7).normal(size=(20, 3)), 2)
        with pytest.raises(ShapeError):
            tree.predict_index(np.zeros((4, 2)))

    def test_min_cluster(self):
        x = np.random.default_rng(8).normal(size=(64, 2)) * 10
        tree = FuzzyTree.fit(x, n_leaves=64, min_cluster=8)
        idx = tree.predict_index(x)
        counts = np.bincount(idx, minlength=tree.n_leaves)
        assert counts.min() >= 1
        assert tree.n_leaves <= 8  # 64 points / 8 per cluster

    @settings(deadline=None, max_examples=25)
    @given(st.integers(1, 16), st.integers(0, 10_000))
    def test_partition_property(self, n_leaves, seed):
        """Every input maps to exactly one leaf (tree is a partition)."""
        rng = np.random.default_rng(seed)
        x = np.floor(rng.uniform(0, 255, size=(60, 2)))
        tree = FuzzyTree.fit(x, n_leaves=n_leaves)
        probe = np.floor(rng.uniform(0, 255, size=(30, 2)))
        idx = tree.predict_index(probe)
        assert ((idx >= 0) & (idx < tree.n_leaves)).all()


def _all_thresholds(tree):
    acc = []

    def walk(node):
        if isinstance(node, int):
            return
        acc.append(node.threshold)
        walk(node.left)
        walk(node.right)

    walk(tree.root)
    return acc


class TestLeafBoxes:
    def test_boxes_partition_space(self):
        rng = np.random.default_rng(9)
        x = np.floor(rng.uniform(0, 255, size=(200, 2)))
        tree = FuzzyTree.fit(x, n_leaves=8)
        boxes = tree.leaf_boxes(lo=0, hi=255)
        probe = np.floor(rng.uniform(0, 255, size=(100, 2)))
        idx = tree.predict_index(probe)
        for vec, leaf in zip(probe, idx):
            box = boxes[leaf]
            for d, (lo, hi) in enumerate(box):
                assert lo - 1e-9 <= vec[d] <= hi + 1e-9

    def test_boxes_disjoint_on_integer_grid(self):
        rng = np.random.default_rng(10)
        x = np.floor(rng.uniform(0, 15, size=(100, 2)))
        tree = FuzzyTree.fit(x, n_leaves=4)
        boxes = tree.leaf_boxes(lo=0, hi=15)
        for v0 in range(16):
            for v1 in range(16):
                hits = sum(1 for box in boxes
                           if box[0][0] <= v0 <= box[0][1] and box[1][0] <= v1 <= box[1][1])
                assert hits == 1

    def test_float_threshold_boxes_cover_every_integer_key(self):
        """Regression: trees fitted on float data carry non-integer
        thresholds; the right-child bound must be floor(t) + 1, or the
        integer keys in (t, t + 1) fall into no box — 'no TCAM entry
        matches' holes in the expanded table."""
        from repro.dataplane.tables import (encode_key,
                                            ternary_entries_for_tree,
                                            tcam_lookup)
        rng = np.random.default_rng(7)
        x = rng.uniform(0, 255, size=(200, 2))      # NOT floored: float thresholds
        tree = FuzzyTree.fit(x, n_leaves=8)
        assert any(float(t) != int(t)
                   for t in _all_thresholds(tree))  # premise: float thresholds
        boxes = tree.leaf_boxes(lo=0, hi=255)
        for v0 in range(0, 256, 3):
            for v1 in range(0, 256, 3):
                hits = sum(1 for box in boxes
                           if box[0][0] <= v0 <= box[0][1]
                           and box[1][0] <= v1 <= box[1][1])
                assert hits == 1
        entries = ternary_entries_for_tree(tree, key_bits=8)
        for v0 in range(0, 256, 7):
            for v1 in range(0, 256, 7):
                want = int(tree.predict_index(
                    np.array([v0, v1], dtype=np.float64)))
                assert tcam_lookup(entries, encode_key((v0, v1), 8, False)) \
                    == want

    def test_tcam_entries_positive_and_scales_with_leaves(self):
        rng = np.random.default_rng(11)
        x = np.floor(rng.uniform(0, 255, size=(400, 2)))
        small = FuzzyTree.fit(x, n_leaves=2).tcam_entries(key_bits=8)
        large = FuzzyTree.fit(x, n_leaves=16).tcam_entries(key_bits=8)
        assert small >= 2
        assert large > small

    def test_depth(self):
        x = np.random.default_rng(12).normal(size=(100, 2)) * 10
        tree = FuzzyTree.fit(x, n_leaves=8)
        assert 3 <= tree.depth() <= 7
