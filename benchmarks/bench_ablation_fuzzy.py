"""Ablation: fuzzy-matching depth (clusters per table) vs accuracy and TCAM.

Shape: accuracy rises with leaves and saturates; TCAM cost rises
monotonically — the trade-off fuzzy matching exposes (design ❹).
Also quantifies CRC's ternary-entry savings versus naive range expansion.
"""

import numpy as np

from repro.core import PegasusCompiler, CompilerConfig
from repro.core.crc import consecutive_range_coding, naive_partition_entries
from repro.eval.metrics import macro_f1
from repro.eval.reporting import render_table
from repro.eval.runner import prepare_dataset
from repro.models import build_model


def _run(scale):
    train_v, _v, test_v, n_classes = prepare_dataset(
        "peerrush", scale["flows_per_class"], scale["seed"])
    model = build_model("MLP-B", n_classes, seed=scale["seed"])
    model.train(train_v)
    calib = train_v["stats"].astype(np.int64)
    rows = []
    for leaves in (4, 16, 64, 256):
        result = PegasusCompiler(CompilerConfig(
            fuzzy_leaves=leaves)).compile_sequential(model.net, calib)
        f1 = macro_f1(test_v["y"],
                      result.compiled.predict(test_v["stats"].astype(np.int64)),
                      n_classes)
        rows.append({"leaves": leaves, "F1": f1,
                     "tcam_bits": result.compiled.tcam_bits(),
                     "sram_bits": result.compiled.sram_bits()})
    return rows


def test_ablation_fuzzy_depth(benchmark, bench_scale):
    rows = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    print(render_table(["leaves", "F1", "TCAM(b)", "SRAM(b)"],
                       [[r["leaves"], r["F1"], r["tcam_bits"], r["sram_bits"]]
                        for r in rows],
                       title="Ablation — fuzzy clusters per table"))
    f1s = [r["F1"] for r in rows]
    tcam = [r["tcam_bits"] for r in rows]
    assert f1s[-1] > f1s[0]                      # more clusters help
    assert all(a <= b for a, b in zip(tcam, tcam[1:]))  # and cost more TCAM


def _crc_counts():
    rng = np.random.default_rng(0)
    crc_total, naive_total = 0, 0
    for _ in range(50):
        bounds = sorted(rng.choice(np.arange(1, 255), size=7, replace=False))
        crc_total += len(consecutive_range_coding([int(b) for b in bounds], 8))
        naive_total += naive_partition_entries([int(b) for b in bounds], 8)
    return crc_total, naive_total


def test_crc_saves_entries(benchmark):
    """CRC vs naive per-range expansion on learned (non-aligned) thresholds."""
    crc_total, naive_total = benchmark.pedantic(_crc_counts, rounds=1, iterations=1)
    print(f"\nCRC entries: {crc_total}, naive entries: {naive_total} "
          f"({naive_total / crc_total:.2f}x saving)")
    assert crc_total < naive_total
