"""Table 6: hardware resource utilization per method on the Tofino-2 model.

Paper's shape: CNN-M costs less than CNN-B despite the larger model
(Advanced Fusion); CNN-L's per-flow state is the smallest of the Pegasus
models; RNN-B and the AutoEncoder are the register-heavy rows (240 b/flow).
"""

from repro.eval.reporting import render_table
from repro.eval.runner import run_table6


def _run(scale):
    return run_table6(flows_per_class=scale["flows_per_class"], seed=scale["seed"])


def test_table6(benchmark, bench_scale):
    rows = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    table = [[r["model"], r["bits/flow"], f"{r['SRAM']:.2%}",
              f"{r['TCAM']:.2%}", f"{r['Bus']:.2%}"] for r in rows]
    print()
    print(render_table(["model", "bits/flow", "SRAM", "TCAM", "Bus"],
                       table, title="Table 6 — resource utilization (Tofino 2)"))

    by_name = {r["model"]: r for r in rows}
    # Stateful budgets match the paper's rows.
    assert by_name["Leo"]["bits/flow"] == 80
    assert by_name["BoS"]["bits/flow"] == 72
    assert by_name["RNN-B"]["bits/flow"] == 240
    assert by_name["AutoEncoder"]["bits/flow"] == 240
    assert by_name["CNN-L"]["bits/flow"] <= 72
    # Everything fits the switch.
    for r in rows:
        assert r["SRAM"] < 1.0 and r["TCAM"] < 1.0 and r["Bus"] <= 1.0
