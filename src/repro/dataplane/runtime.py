"""End-to-end packet runtimes: per-flow state + compiled-model inference.

Two runtimes cover the paper's deployment shapes:

- :class:`WindowedClassifierRuntime` — RNN-B / CNN-B / CNN-M / MLP-B style:
  the switch stores each flow's recent (length, IPD) buckets in registers;
  once a full window is present every packet is classified from the window's
  feature view.
- :class:`TwoStageRuntime` — CNN-L style: a per-packet extractor maps the
  packet's raw bytes to a small *fuzzy index*; only indexes (4–8 bits each)
  are stored per flow, and a second stage classifies from the window of
  indexes (+ optional IPD buckets). This is the paper's "Flow Scalability"
  design that gets CNN-L to 28–72 stateful bits per flow.

Flow-state register layout
--------------------------

Both runtimes keep per-flow state in a :class:`VectorFlowState`: one
preallocated 2-D NumPy array per register field, rows indexed by a flow-slot
table (canonical 5-tuple -> row) with FIFO eviction at ``capacity``.

:class:`WindowedClassifierRuntime` (window ``W``, default 8)::

    prev_ts   16 bits        last packet's timestamp in 64 us units
    count      8 bits        packets seen (saturating at 255)
    len_hist   8 bits x W-1  length buckets of the last W-1 packets
    ipd_hist   8 bits x W-1  IPD buckets of the last W-1 packets
                             -> 16 + 8 + 7*8 + 7*8 = 136 bits/flow at W=8

:class:`TwoStageRuntime` (window ``W``, index width ``idx_bits``)::

    prev_ts   16 bits        only when ``needs_ipd``
    count      8 bits
    idx_hist  idx_bits x W-1 fuzzy indexes of the last W-1 packets
                             -> 16 + 4*7 = 44 bits/flow for the paper's
                                CNN-L 44-bit variant (count is control-plane
                                bookkeeping the paper folds into prev_ts)

Eviction: when a new flow arrives at capacity the *oldest inserted* flow is
dropped, its register rows are zeroed, and the slot is reused — so a
re-arriving evicted flow restarts its window from scratch, exactly the
state-loss the Figure-7 capacity ablation measures.

Batched replay
--------------

``process_flows`` / ``process_trace`` replay a trace in NumPy batches
(``batch_size`` packets at a time): per-flow state is gathered/scattered
with fancy indexing and the compiled model (:meth:`CompiledModel.forward_int`
or :meth:`Pipeline.process`) is invoked **once per batch**. Intra-batch
packets of the same flow are handled exactly (each packet's window may span
stored history and earlier in-batch packets), so batched decisions are
bit-identical to the per-packet reference path ``process_flows_scalar`` for
every batch size — a property the regression tests assert. Batches are cut
early only when a FIFO eviction would reuse a slot that still has unflushed
in-batch state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.fuzzy import FuzzyTree
from repro.core.mapping import (CompiledModel, _check_backend,
                                certified_decision_box)
from repro.errors import ConfigError
from repro.net.features import (length_bucket, ipd_bucket, stats_from_buckets,
                                length_bucket_array, ipd_bucket_array)
from repro.net.flow import Flow
from repro.net.packet import Packet
from repro.net.traces import Trace
from repro.dataplane.registers import (FlowStateLayout, RegisterField,
                                       VectorFlowState)

TS_UNIT_SECONDS = 64e-6     # 16-bit timestamp register in 64 us units
TS_MASK = 0xFFFF
DEFAULT_BATCH_SIZE = 256


def _ts_units(ts: float) -> int:
    return int(ts / TS_UNIT_SECONDS) & TS_MASK


def _ts_units_array(ts: np.ndarray) -> np.ndarray:
    return (np.asarray(ts, dtype=np.float64) / TS_UNIT_SECONDS).astype(np.int64) \
        & TS_MASK


def _ipd_bucket_from_units(cur_units: int, prev_units: int) -> int:
    delta_units = (cur_units - prev_units) & TS_MASK
    return ipd_bucket(delta_units * TS_UNIT_SECONDS)


@dataclass
class PacketDecision:
    """One per-packet classification the switch emitted.

    ``seq`` is the packet's position in the replayed trace — the merge key
    that lets sharded replicas reassemble one globally ordered decision
    stream.
    """

    flow_label: int
    predicted: int
    ts: float
    seq: int = -1


def flows_to_trace(flows: list[Flow]) -> tuple[Trace, list, np.ndarray]:
    """Interleave labelled flows into one trace with per-packet keys/labels.

    The single source of the flows -> (trace, canonical keys, label array)
    preamble shared by the batched path, the scalar reference path, and the
    serving dispatcher — so label lookup and key canonicalization can never
    diverge between them.
    """
    label_by_key = {f.key.canonical(): f.label for f in flows}
    trace = Trace.from_flows(flows)
    keys = trace.canonical_keys()
    labels = np.asarray([label_by_key[k] for k in keys], dtype=np.int64)
    return trace, keys, labels


def _group_structure(slots: np.ndarray):
    """Per-batch flow grouping: who else in this batch shares my flow slot.

    Returns ``(uniq, rank, counts, occ, prev_idx, last_idx)`` where ``uniq``
    are the distinct slots, ``rank[i]`` indexes packet i's slot in ``uniq``,
    ``occ[i]`` is packet i's occurrence number within its flow in this batch,
    ``prev_idx[i]`` is the batch index of the previous same-flow packet (or
    -1 when the previous packet predates the batch), and ``last_idx[u]`` is
    the batch index of each flow's final packet (whose post-state is written
    back).
    """
    uniq, rank, counts = np.unique(slots, return_inverse=True, return_counts=True)
    rank = rank.reshape(-1)
    order = np.argsort(rank, kind="stable")
    ends = np.cumsum(counts)
    occ_sorted = np.arange(len(slots), dtype=np.int64) - np.repeat(ends - counts, counts)
    occ = np.empty(len(slots), dtype=np.int64)
    occ[order] = occ_sorted
    prev_idx = np.full(len(slots), -1, dtype=np.int64)
    follow = np.nonzero(occ_sorted > 0)[0]
    prev_idx[order[follow]] = order[follow - 1]
    last_idx = order[ends - 1]
    return uniq, rank, counts, occ, prev_idx, last_idx


def _gather_windows(hist: np.ndarray, rank: np.ndarray, occ: np.ndarray,
                    vals: np.ndarray, counts: np.ndarray, window: int) -> np.ndarray:
    """Effective (N, window) per-packet windows for one register array.

    Packet i's window is the last ``window`` entries of the virtual sequence
    ``stored_history(flow) ++ in-batch values of flow`` ending at packet i —
    i.e. positions ``occ[i] .. occ[i]+window-1`` of that sequence. ``hist``
    is the (n_uniq, window-1) stored history gathered per unique slot.
    """
    hist_cols = window - 1
    occ_table = np.zeros((len(counts), int(counts.max())), dtype=np.int64)
    occ_table[rank, occ] = vals
    pos = occ[:, None] + np.arange(window, dtype=np.int64)[None, :]
    win = occ_table[rank[:, None], np.maximum(pos - hist_cols, 0)]
    if hist_cols:
        from_hist = pos < hist_cols
        stored = hist[rank[:, None], np.minimum(pos, hist_cols - 1)]
        win = np.where(from_hist, stored, win)
    return win


class _BatchedReplayMixin:
    """Shared trace-replay plumbing for the batched runtimes.

    Subclasses provide ``state`` (a :class:`VectorFlowState`), ``window``,
    ``batch_size``, ``required_columns`` (the per-packet columns their
    vectorized step consumes), ``process_packet`` (the scalar reference),
    ``_replay_columns`` (per-packet columnar inputs) and ``_process_batch``
    (the vectorized step). ``decision_cache`` (any object with the
    :class:`repro.serving.FlowDecisionCache` get/put interface) optionally
    short-circuits model invocation for repeating flow windows — exactly,
    since the cache key is the window's packed content.
    """

    required_columns: tuple[str, ...] = ("ts",)
    # FlushStats of the last replay's span stream (None when the replay ran
    # on precomputed spans or fixed batch cuts) — read by the serving engine
    # so a scheduler-driven replay needs no second timestamp pass.
    last_flush_stats = None

    def set_lookup_backend(self, lookup_backend: str) -> None:
        """Switch the model-lookup execution backend, with validation.

        The dispatchers use this to propagate their ``lookup_backend`` onto
        factory-built replicas; it is safe to call between serves (the
        backends are bit-identical, so flow state carries over unchanged).
        """
        _check_backend(lookup_backend)
        if lookup_backend != "index":
            self._enable_tcam(lookup_backend)
        self.lookup_backend = lookup_backend

    def _enable_tcam(self, lookup_backend: str = "tcam") -> None:
        """Subclass hook: validate the TCAM backend applies and compile its
        tables eagerly, so the first serve measures lookups, not compilation."""

    def process_flows(self, flows: list[Flow], batch_size: int | None = None
                      ) -> list[PacketDecision]:
        """Replay the interleaved trace of many labelled flows, batched."""
        trace, keys, labels = flows_to_trace(flows)
        return self.process_trace(trace, labels=labels, batch_size=batch_size,
                                  keys=keys)

    def process_trace(self, trace: Trace, labels: np.ndarray | None = None,
                      batch_size: int | None = None,
                      spans=None, scheduler=None, keys: list | None = None
                      ) -> list[PacketDecision]:
        """Replay a time-ordered trace in batches.

        ``labels`` are per-packet ground-truth labels (default -1); batch
        boundaries come from, in order of precedence: explicit ``spans``
        (an iterable of (start, stop) windows, e.g. a
        :class:`repro.serving.SpanStream`), a ``scheduler`` (a
        :class:`repro.serving.BatchScheduler` applied to the trace's own
        timestamp column), or fixed ``batch_size`` cuts. Decisions come
        back in trace order with ``seq`` set to the packet's trace position.
        """
        if keys is None:
            keys = trace.canonical_keys()
        cols = self._replay_columns(trace)
        return self._replay(
            cols, keys, labels, spans, scheduler, batch_size,
            lambda start, stop: self._batch_columns(cols, trace, start, stop))

    def process_columns(self, cols: dict[str, np.ndarray], keys: list,
                        labels: np.ndarray | None = None,
                        batch_size: int | None = None,
                        spans=None, scheduler=None) -> list[PacketDecision]:
        """Replay per-packet *columns* directly — no :class:`Trace` needed.

        The columnar entry point for shard payloads that crossed a process
        boundary as NumPy arrays (see :class:`repro.serving.ParallelDispatcher`):
        ``cols`` must hold this runtime's ``required_columns`` and ``keys``
        the per-packet canonical :class:`FlowKey` objects, all aligned.
        Identical semantics (and decisions) to :meth:`process_trace` on the
        equivalent trace.
        """
        missing = [c for c in self.required_columns if c not in cols]
        if missing:
            raise ValueError(f"missing replay columns: {missing}")
        if len(keys) != len(cols["ts"]):
            raise ValueError(
                f"{len(keys)} keys for {len(cols['ts'])} packets")
        return self._replay(
            cols, keys, labels, spans, scheduler, batch_size,
            lambda start, stop: {k: v[start:stop] for k, v in cols.items()})

    def _replay(self, cols, keys, labels, spans, scheduler, batch_size,
                batch_columns) -> list[PacketDecision]:
        """Shared core of the trace/columnar replay entry points."""
        n = len(cols["ts"])
        if labels is None:
            labels = np.full(n, -1, dtype=np.int64)
        else:
            labels = np.asarray(labels, dtype=np.int64)
        if spans is None and scheduler is not None:
            spans = scheduler.iter_spans(cols["ts"])
        if spans is None:
            b = int(self.batch_size if batch_size is None else batch_size)
            if b < 1:
                raise ConfigError("batch_size", b, allowed=">= 1")
            spans = [(i, min(i + b, n)) for i in range(0, n, b)]
        decisions: list[PacketDecision] = []
        for start, stop, slots in self._slot_batches(keys, spans):
            if stop == start:
                continue
            self._process_batch(slots, keys[start:stop],
                                batch_columns(start, stop),
                                labels[start:stop], start, decisions)
        self.last_flush_stats = getattr(spans, "stats", None)
        return decisions

    def _batch_columns(self, cols: dict[str, np.ndarray], trace: Trace,
                       start: int, stop: int) -> dict[str, np.ndarray]:
        """One batch's view of the replay columns (overridable for columns
        too large to materialize for the whole trace at once)."""
        return {name: col[start:stop] for name, col in cols.items()}

    def process_flows_scalar(self, flows: list[Flow]) -> list[PacketDecision]:
        """Per-packet reference replay (the pre-batching code path).

        Kept as the ground truth the batched path is regression-tested
        against: identical decisions, identical order, for any batch size.
        """
        trace, _keys, labels = flows_to_trace(flows)
        decisions = []
        for i, packet in enumerate(trace.packets):
            d = self.process_packet(packet, int(labels[i]))
            if d is not None:
                d.seq = i
                decisions.append(d)
        return decisions

    def _slot_batches(self, keys: list, spans: list[tuple[int, int]]):
        """Assign flow slots packet-by-packet, yielding processable batches.

        A requested span is cut early when a FIFO eviction would reuse a
        slot that still has unflushed packets in the pending batch — the
        pending batch is processed first (state written back), then the
        eviction proceeds, preserving scalar-replay semantics exactly.
        """
        state = self.state
        for start, stop in spans:
            i = start
            while i < stop:
                seen: set[int] = set()
                slots: list[int] = []
                j = i
                while j < stop:
                    slot = state.acquire(keys[j], blocked=seen)
                    if slot is None:
                        break
                    slots.append(slot)
                    seen.add(slot)
                    j += 1
                yield i, j, np.asarray(slots, dtype=np.int64)
                i = j

    def _cell_boxes(self, feats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (lo, hi) boxes on which the decision is provably constant.

        The certificate an L2 insert carries (see
        :class:`repro.serving.TwoLevelDecisionCache`). The default is the
        degenerate point box — always sound; runtimes whose model exposes a
        real decision-boundary structure override this with wider boxes.
        """
        feats = np.asarray(feats, dtype=np.int64)
        return feats.copy(), feats.copy()

    def _scalar_two_level(self, cache, ck, feats: np.ndarray, predict_one) -> int:
        """One packet's decision through a two-level cache (scalar path).

        L1 exact probe -> verified L2 probe (hit promotes into L1) -> model
        + insert at both levels. This is the reference op sequence the
        batched protocol below reproduces bit-identically.
        """
        from repro.serving.cache import _DEC

        got = cache.exact_get(ck)
        if got is not None:
            return int(got)
        feats = np.asarray(feats, dtype=np.int64)
        entry = cache.approx_get(feats)
        if entry is not None:
            pred = int(entry[_DEC])
            cache.promote(ck, pred)
            return pred
        cache.count_miss()
        pred = int(np.asarray(predict_one(feats[None, :]))[0])
        if getattr(cache, "l2_admit", True):
            box_lo, box_hi = self._cell_boxes(feats[None, :])
            cache.insert(ck, feats, box_lo[0], box_hi[0], pred)
        else:
            # L2 gate closed (cold phase): L1-only population, and the box
            # certificate — the expensive part of an insert — never runs.
            cache.insert_l1_only(ck, pred)
        return pred

    def _predict_ready(self, keys: list, ready_rows: np.ndarray,
                       windows: np.ndarray, predict_rows,
                       features_rows=None, predict_feats=None) -> np.ndarray:
        """Predictions for the window-complete rows, through the cache.

        ``keys`` are the batch's canonical flow keys, ``ready_rows`` the
        batch indices of the window-complete packets, ``windows`` the
        (n_ready, W) packed window contents (each row, as bytes, is the
        cache's *window index*), and ``predict_rows(rows)`` invokes the
        model on the given positions of ``ready_rows``. Without a cache the
        model runs on every ready row; with one it runs on misses only —
        bit-identical either way, because the model's decision is a pure
        function of the window. ``features_rows(rows)`` /
        ``predict_feats(feats)`` expose the feature view the two-level
        protocol probes its L2 with (and invokes the model on).
        """
        from repro.serving.cache import PENDING

        n_ready = len(ready_rows)
        cache = self.decision_cache
        if cache is None:
            return np.asarray(predict_rows(np.arange(n_ready, dtype=np.int64)),
                              dtype=np.int64)
        if getattr(cache, "two_level", False) and features_rows is not None:
            return self._predict_ready_two_level(
                keys, ready_rows, windows, features_rows, predict_feats)
        preds = np.empty(n_ready, dtype=np.int64)
        row_bytes = windows.shape[1] * windows.dtype.itemsize
        packed = np.ascontiguousarray(windows).tobytes()
        # The cache is driven in ready-row order, replaying exactly the
        # get/put sequence the scalar path would issue: a miss immediately
        # reserves its slot with a PENDING placeholder (the model's one
        # batched invocation fills the value afterwards), so in-batch window
        # repeats hit — or, when LRU eviction removed the placeholder within
        # this very flush, miss — precisely when the scalar replay's would.
        # Keeps hits + misses == lookups and the whole stat/eviction stream
        # bit-identical to per-packet replay, not just the decisions.
        miss_rows: dict[tuple, list[int]] = {}
        try:
            for r in range(n_ready):
                lo = r * row_bytes
                ck = (keys[int(ready_rows[r])], packed[lo:lo + row_bytes])
                got = cache.get(ck)
                if got is None:
                    miss_rows.setdefault(ck, []).append(r)
                    cache.put(ck, PENDING)
                elif got is PENDING:
                    # Hit on a window first missed earlier in this flush (an
                    # elephant repeating its window): stats already counted
                    # the hit; fan the pending prediction out to this row too.
                    miss_rows.setdefault(ck, []).append(r)
                else:
                    preds[r] = got
            if miss_rows:
                first = np.asarray([rows[0] for rows in miss_rows.values()],
                                   dtype=np.int64)
                got = np.asarray(predict_rows(first), dtype=np.int64)
        except BaseException:
            # A failed model invocation must not strand placeholders: a
            # stale PENDING would later be handed out as a decision (scalar
            # path) or mistaken for an in-flush repeat (batched path).
            for ck in miss_rows:
                cache.discard_pending(ck)
            raise
        for k, (ck, rows) in enumerate(miss_rows.items()):
            preds[rows] = got[k]
            cache.fill(ck, int(got[k]))
        return preds

    def _predict_ready_two_level(self, keys: list, ready_rows: np.ndarray,
                                 windows: np.ndarray, features_rows,
                                 predict_feats) -> np.ndarray:
        """Batched replay of the two-level scalar op sequence, in two passes.

        Pass 1 walks the ready rows in order, issuing exactly the scalar
        path's L1 probes and (for L1 misses) its L1 inserts — reserved with
        PENDING, since the decision may come from the L2 or the batch's one
        model call. A put's *value* never affects LRU recency or eviction
        choice, so the L1 state stream is bit-identical to per-packet
        replay. Pass 2 walks the L1-missing rows in the same order against
        the L2: verified hits resolve immediately (or join the pending
        entry's model group when the in-flush creator hasn't computed yet);
        double misses reserve a pending L2 entry and form a model group.
        One model invocation covers the group leaders; fills then resolve
        every reservation — again exactly the scalar insert stream, so
        exact/approx/miss counts, eviction counts, and decisions all match
        per-packet replay bit for bit (regression-tested).
        """
        from repro.serving.cache import PENDING, _DEC, _GROUP

        cache = self.decision_cache
        n_ready = len(ready_rows)
        preds = np.empty(n_ready, dtype=np.int64)
        row_bytes = windows.shape[1] * windows.dtype.itemsize
        packed = np.ascontiguousarray(windows).tobytes()
        cks: list = [None] * n_ready
        l2_rows: list[int] = []
        joiners: dict = {}       # L1 key -> rows that hit its PENDING entry
        miss_groups: dict = {}   # group L1 key -> rows one model row resolves
        try:
            for r in range(n_ready):
                lo_b = r * row_bytes
                ck = (keys[int(ready_rows[r])], packed[lo_b:lo_b + row_bytes])
                cks[r] = ck
                got = cache.exact_get(ck)
                if got is None:
                    cache.promote(ck, PENDING)
                    l2_rows.append(r)
                elif got is PENDING:
                    joiners.setdefault(ck, []).append(r)
                else:
                    preds[r] = got
            if l2_rows:
                rows_arr = np.asarray(l2_rows, dtype=np.int64)
                feats = np.asarray(features_rows(rows_arr), dtype=np.int64)
                l2_admit = getattr(cache, "l2_admit", True)
                if l2_admit:
                    box_lo, box_hi = self._cell_boxes(feats)
                j_of = {r: j for j, r in enumerate(l2_rows)}
                for j, r in enumerate(l2_rows):
                    entry = cache.approx_get(feats[j])
                    if entry is not None:
                        dec = entry[_DEC]
                        if dec is PENDING:
                            miss_groups.setdefault(entry[_GROUP], []).append(r)
                        else:
                            preds[r] = dec
                    else:
                        cache.count_miss()
                        if l2_admit:
                            cache.reserve_l2(cks[r], feats[j],
                                             box_lo[j], box_hi[j])
                        else:
                            # L2 gate closed: no reservation, no certificate;
                            # the row still leads its own model group, which
                            # is exactly what the gated scalar path does.
                            cache.skip_l2_insert()
                        miss_groups.setdefault(cks[r], []).append(r)
                if miss_groups:
                    leaders = np.asarray(
                        [j_of[rows[0]] for rows in miss_groups.values()],
                        dtype=np.int64)
                    got = np.asarray(predict_feats(feats[leaders]),
                                     dtype=np.int64)
        except BaseException:
            # A failed model invocation must not strand reservations at
            # either level (see the single-level path above).
            for r in l2_rows:
                cache.discard_pending(cks[r])
            raise
        for k, rows in enumerate(miss_groups.values()):
            preds[rows] = got[k]
        for r in l2_rows:
            cache.fill(cks[r], int(preds[r]))
        creator = {cks[r]: r for r in l2_rows}
        for ck, rows in joiners.items():
            preds[rows] = preds[creator[ck]]
        return preds


@dataclass
class WindowedClassifierRuntime(_BatchedReplayMixin):
    """Classify every packet once its flow has a full token window.

    ``model`` is anything exposing the integer decision interface
    ``predict(x_int) -> class ids`` — a :class:`CompiledModel` or a placed
    :class:`repro.dataplane.Pipeline`; the batched replay invokes it once
    per batch. See the module docstring for the per-flow register layout
    (136 bits/flow at the default window of 8) and eviction behavior.
    ``decision_cache`` (a :class:`repro.serving.FlowDecisionCache`) makes
    repeating windows of already-classified flows skip the model entirely.
    ``lookup_backend`` selects how a :class:`CompiledModel`'s fuzzy tables
    are answered — ``"index"`` (tree walk) or ``"tcam"`` (vectorized
    prioritized-TCAM emulation); both are bit-identical.
    """

    model: CompiledModel
    feature_mode: str = "seq"          # "seq" (interleaved tokens) | "stats"
    window: int = 8
    capacity: int = 1_000_000
    batch_size: int = DEFAULT_BATCH_SIZE
    decision_cache: object = None
    lookup_backend: str = "index"
    state: VectorFlowState = field(init=False)

    required_columns = ("ts", "length")

    def __post_init__(self):
        if self.feature_mode not in ("seq", "stats"):
            raise ConfigError("feature_mode", self.feature_mode,
                              allowed=("seq", "stats"))
        self.set_lookup_backend(self.lookup_backend)
        hist = self.window - 1
        layout = FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=hist),
            RegisterField("ipd_hist", 8, count=hist),
        ])
        self.state = VectorFlowState(layout, capacity=self.capacity)

    def _enable_tcam(self, lookup_backend: str = "tcam") -> None:
        if not isinstance(self.model, CompiledModel):
            raise ConfigError(
                "lookup_backend", lookup_backend,
                reason="requires a CompiledModel; a placed Pipeline executes "
                       "its own table layout")
        from repro.dataplane.tcam import tcam_table_report
        tcam_table_report(self.model)   # compile + cache every fuzzy table
        if lookup_backend == "tcam-pruned":
            # Warm the pruned-variant tables and their interval pre-indexes
            # too, so the first serve measures pruned lookups.
            for layer in self.model.layers:
                for table in layer.tables:
                    if table.kind != "fuzzy":
                        continue
                    seg = table.tcam_segment(pruned=True)
                    if seg.encoding == "flat":
                        seg.flat.pruned_index()

    def _model_predict(self, x: np.ndarray) -> np.ndarray:
        if self.lookup_backend == "index":
            return self.model.predict(x)
        return self.model.predict(x, lookup_backend=self.lookup_backend)

    def _cell_boxes(self, feats: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if isinstance(self.model, CompiledModel):
            cache = getattr(self, "decision_cache", None)
            shift = None
            if getattr(cache, "two_level", False):
                shift = cache.l2.quantize_shift
            return certified_decision_box(self.model, feats,
                                          quantize_shift=shift)
        return super()._cell_boxes(feats)

    @property
    def bits_per_flow(self) -> int:
        return self.state.layout.bits_per_flow

    def _features(self, lens: list[int], ipds: list[int]) -> np.ndarray:
        if self.feature_mode == "stats":
            return stats_from_buckets(lens, ipds).astype(np.int64)
        tokens = np.empty(2 * self.window, dtype=np.int64)
        tokens[0::2] = lens
        tokens[1::2] = ipds
        return tokens

    def _features_batch(self, win_len: np.ndarray, win_ipd: np.ndarray) -> np.ndarray:
        if self.feature_mode == "stats":
            n, w = win_len.shape
            take = min(6, w)
            first_len = np.zeros((n, 6), dtype=np.int64)
            first_len[:, :take] = win_len[:, :take]
            first_ipd = np.zeros((n, 6), dtype=np.int64)
            first_ipd[:, :take] = win_ipd[:, :take]
            return np.column_stack([
                win_len.max(axis=1), win_len.min(axis=1),
                win_ipd.max(axis=1), win_ipd.min(axis=1),
                first_len, first_ipd])
        n, w = win_len.shape
        tokens = np.empty((n, 2 * w), dtype=np.int64)
        tokens[:, 0::2] = win_len
        tokens[:, 1::2] = win_ipd
        return tokens

    def process_packet(self, packet: Packet, flow_label: int) -> PacketDecision | None:
        """Feed one packet; returns a decision when a window is available."""
        key = packet.key.canonical()
        slot = self.state.acquire(key)
        cols = self.state.columns
        count = int(cols["count"][slot, 0])
        cur_units = _ts_units(packet.ts)
        len_b = length_bucket(packet.length)
        ipd_b = (_ipd_bucket_from_units(cur_units, int(cols["prev_ts"][slot, 0]))
                 if count else 0)

        decision = None
        if count >= self.window - 1:
            lens = [int(v) for v in cols["len_hist"][slot]] + [len_b]
            ipds = [int(v) for v in cols["ipd_hist"][slot]] + [ipd_b]
            cache = self.decision_cache
            pred = None
            if cache is not None:
                # Same packed layout as the batched path: len window ++ ipd
                # window, one byte per bucket.
                ck = (key, np.asarray(lens + ipds, dtype=np.uint8).tobytes())
                if getattr(cache, "two_level", False):
                    pred = self._scalar_two_level(
                        cache, ck, self._features(lens, ipds),
                        self._model_predict)
                else:
                    pred = cache.get(ck)
            if pred is None:
                x = self._features(lens, ipds)[None, :]
                pred = int(self._model_predict(x)[0])
                if cache is not None:
                    cache.put(ck, pred)
            decision = PacketDecision(flow_label=flow_label, predicted=int(pred),
                                      ts=packet.ts)

        self.state.shift_in(key, "len_hist", len_b)
        self.state.shift_in(key, "ipd_hist", ipd_b)
        self.state.write(key, "prev_ts", cur_units)
        self.state.write(key, "count", min(count + 1, 255))
        return decision

    def _replay_columns(self, trace: Trace) -> dict[str, np.ndarray]:
        return trace.packet_columns()

    def _process_batch(self, slots: np.ndarray, keys: list,
                       cols: dict[str, np.ndarray], labels: np.ndarray,
                       base: int, out: list[PacketDecision]) -> None:
        ts = cols["ts"]
        cur_units = _ts_units_array(ts)
        len_b = length_bucket_array(cols["length"])
        uniq, rank, counts, occ, prev_idx, last_idx = _group_structure(slots)
        c = self.state.columns
        cnt0 = c["count"][uniq, 0].astype(np.int64)
        count_i = cnt0[rank] + occ
        prev0 = c["prev_ts"][uniq, 0].astype(np.int64)
        prev_units = np.where(prev_idx >= 0,
                              cur_units[np.maximum(prev_idx, 0)], prev0[rank])
        delta_units = (cur_units - prev_units) & TS_MASK
        ipd_b = np.where(count_i > 0,
                         ipd_bucket_array(delta_units * TS_UNIT_SECONDS), 0)

        hist_len = c["len_hist"][uniq].astype(np.int64)
        hist_ipd = c["ipd_hist"][uniq].astype(np.int64)
        win_len = _gather_windows(hist_len, rank, occ, len_b, counts, self.window)
        win_ipd = _gather_windows(hist_ipd, rank, occ, ipd_b, counts, self.window)

        ready_rows = np.nonzero(count_i >= self.window - 1)[0]
        if len(ready_rows):
            ready_len, ready_ipd = win_len[ready_rows], win_ipd[ready_rows]
            windows = np.concatenate([ready_len, ready_ipd],
                                     axis=1).astype(np.uint8)
            preds = self._predict_ready(
                keys, ready_rows, windows,
                lambda rows: self._model_predict(
                    self._features_batch(ready_len[rows], ready_ipd[rows])),
                features_rows=lambda rows: self._features_batch(
                    ready_len[rows], ready_ipd[rows]),
                predict_feats=self._model_predict)
            for k, i in enumerate(ready_rows):
                out.append(PacketDecision(flow_label=int(labels[i]),
                                          predicted=int(preds[k]),
                                          ts=float(ts[i]), seq=base + int(i)))

        c["len_hist"][uniq] = win_len[last_idx, 1:]
        c["ipd_hist"][uniq] = win_ipd[last_idx, 1:]
        c["prev_ts"][uniq, 0] = cur_units[last_idx]
        c["count"][uniq, 0] = np.minimum(cnt0 + counts, 255)


@dataclass
class TwoStageRuntime(_BatchedReplayMixin):
    """Per-packet fuzzy extraction + windowed index classification (CNN-L).

    ``extractor_tree`` (optionally behind a refined ``feature_fn``) maps
    each packet to a fuzzy index of ``idx_bits`` bits; only indexes — plus a
    16-bit previous timestamp when the feature uses IPD — are stored per
    flow. ``slot_values[s]`` is the (n_leaves, n_classes) int table the
    packet in window slot ``s`` contributes; logits are the SumReduce of all
    slot contributions, as in Advanced Primitive Fusion. This is the
    paper's "Flow Scalability" design that gets CNN-L to 28-72 stateful
    bits per flow (see the module docstring for the register layout).

    Batched replay extracts the whole batch's fuzzy indexes with one
    ``feature_fn`` / tree evaluation and one SumReduce gather per window
    slot; ``feature_fn`` must therefore accept (N, raw_bytes) inputs and an
    optional per-row IPD-bucket array (scalar calls pass a single row).
    """

    extractor_tree: FuzzyTree
    slot_values: list[np.ndarray]
    n_classes: int
    idx_bits: int = 4
    raw_bytes: int = 60
    window: int = 8
    capacity: int = 1_000_000
    needs_ipd: bool = False
    # Optional refined-feature stage applied to the raw bytes (and the IPD
    # bucket, when needs_ipd) before the fuzzy tree — the paper's NN feature
    # extraction, itself realized as per-segment tables on the switch.
    feature_fn: object = None
    batch_size: int = DEFAULT_BATCH_SIZE
    decision_cache: object = None
    # "tcam" runs the per-packet extractor tree — the table that *is* TCAM
    # range rules on the switch — through the vectorized emulation; the
    # window SumReduce stays SRAM gathers under either backend, as on the
    # hardware. Requires raw integer byte keys (no refined feature_fn).
    lookup_backend: str = "index"
    state: VectorFlowState = field(init=False)
    # Compiled extractor TCAM per encoding choice ("auto" | "pruned") —
    # the pruned variant usually stays levelwise (the 60-dim tree's flat
    # expansion blows past the pruning threshold), making prune a no-op.
    _extractor_tcam: dict = field(init=False, default_factory=dict, repr=False)

    required_columns = ("ts", "payload")

    def __post_init__(self):
        if len(self.slot_values) != self.window:
            raise ConfigError(
                "slot_values", len(self.slot_values),
                allowed=f"{self.window} tables (one per window slot)")
        self.set_lookup_backend(self.lookup_backend)
        fields = [RegisterField("count", 8),
                  RegisterField("idx_hist", self.idx_bits, count=self.window - 1)]
        if self.needs_ipd:
            fields.insert(0, RegisterField("prev_ts", 16))
        self.state = VectorFlowState(FlowStateLayout(fields=fields),
                                     capacity=self.capacity)

    @property
    def bits_per_flow(self) -> int:
        return self.state.layout.bits_per_flow

    @property
    def _win_dtype(self) -> np.dtype:
        """Narrowest dtype holding one fuzzy index (the cache-key packing)."""
        return np.dtype(np.uint8 if self.idx_bits <= 8 else np.uint16)

    def _enable_tcam(self, lookup_backend: str = "tcam") -> None:
        if self.feature_fn is not None:
            raise ConfigError(
                "lookup_backend", lookup_backend,
                reason="needs integer raw-byte keys; a refined feature_fn "
                       "produces float features the fixed-width TCAM key "
                       "cannot encode")
        enc = "pruned" if lookup_backend == "tcam-pruned" else "auto"
        if enc not in self._extractor_tcam:
            from repro.dataplane.tcam import TcamSegment
            self._extractor_tcam[enc] = TcamSegment.from_tree(
                self.extractor_tree, key_bits=8, signed=False, encoding=enc)

    def _tree_indices(self, feats: np.ndarray) -> np.ndarray:
        """Fuzzy extraction for a (N, raw_bytes) batch, backend-dispatched."""
        if self.lookup_backend != "index":
            pruned = self.lookup_backend == "tcam-pruned"
            seg = self._extractor_tcam["pruned" if pruned else "auto"]
            return seg.lookup_indices(feats, pruned=pruned)
        return self.extractor_tree.predict_index(feats)

    def _predict_windows(self, win_idx: np.ndarray) -> np.ndarray:
        """Decisions for a (N, window) batch of fuzzy-index windows.

        The model invocation of this runtime: per-slot SumReduce gathers +
        final argmax — also the ``predict_feats`` hook of the two-level
        cache protocol (its feature view *is* the index window).
        """
        win_idx = np.asarray(win_idx, dtype=np.int64)
        logits = np.zeros((len(win_idx), self.n_classes), dtype=np.int64)
        for slot_pos in range(self.window):
            logits += self.slot_values[slot_pos][win_idx[:, slot_pos]]
        return np.argmax(logits, axis=1)

    def _extract_index(self, packet: Packet, ipd_bucket: int | None) -> int:
        vec = np.zeros(self.raw_bytes, dtype=np.float64)
        take = min(packet.payload_len, self.raw_bytes)
        vec[:take] = packet.payload[:take]
        if self.feature_fn is not None:
            vec = np.asarray(self.feature_fn(vec[None, :], ipd_bucket))[0]
            idx = int(self.extractor_tree.predict_index(vec))
        else:
            idx = int(self._tree_indices(vec[None, :])[0])
        return min(idx, (1 << self.idx_bits) - 1)

    def process_packet(self, packet: Packet, flow_label: int) -> PacketDecision | None:
        key = packet.key.canonical()
        slot = self.state.acquire(key)
        cols = self.state.columns
        count = int(cols["count"][slot, 0])
        ipd_b = None
        if self.needs_ipd:
            cur_units = _ts_units(packet.ts)
            ipd_b = (_ipd_bucket_from_units(cur_units, int(cols["prev_ts"][slot, 0]))
                     if count else 0)
        idx = self._extract_index(packet, ipd_b)

        decision = None
        if count >= self.window - 1:
            indexes = [int(v) for v in cols["idx_hist"][slot]] + [idx]
            cache = self.decision_cache
            pred = None
            if cache is not None:
                ck = (key, np.asarray(indexes, dtype=self._win_dtype).tobytes())
                if getattr(cache, "two_level", False):
                    pred = self._scalar_two_level(
                        cache, ck, np.asarray(indexes, dtype=np.int64),
                        self._predict_windows)
                else:
                    pred = cache.get(ck)
            if pred is None:
                logits = np.zeros(self.n_classes, dtype=np.int64)
                for slot_pos, slot_idx in enumerate(indexes):
                    logits += self.slot_values[slot_pos][slot_idx]
                pred = int(np.argmax(logits))
                if cache is not None:
                    cache.put(ck, pred)
            decision = PacketDecision(flow_label=flow_label, predicted=int(pred),
                                      ts=packet.ts)

        self.state.shift_in(key, "idx_hist", idx)
        if self.needs_ipd:
            self.state.write(key, "prev_ts", cur_units)
        self.state.write(key, "count", min(count + 1, 255))
        return decision

    def _replay_columns(self, trace: Trace) -> dict[str, np.ndarray]:
        return {"ts": np.asarray([p.ts for p in trace.packets], dtype=np.float64)}

    def _batch_columns(self, cols: dict[str, np.ndarray], trace: Trace,
                       start: int, stop: int) -> dict[str, np.ndarray]:
        # Raw bytes are ~480 B/packet as float64: materialize per batch, not
        # for the whole trace.
        batch = super()._batch_columns(cols, trace, start, stop)
        batch["payload"] = trace.payload_matrix(self.raw_bytes, start, stop)
        return batch

    def _process_batch(self, slots: np.ndarray, keys: list,
                       cols: dict[str, np.ndarray], labels: np.ndarray,
                       base: int, out: list[PacketDecision]) -> None:
        ts = cols["ts"]
        uniq, rank, counts, occ, prev_idx, last_idx = _group_structure(slots)
        c = self.state.columns
        cnt0 = c["count"][uniq, 0].astype(np.int64)
        count_i = cnt0[rank] + occ
        ipd_b = None
        if self.needs_ipd:
            cur_units = _ts_units_array(ts)
            prev0 = c["prev_ts"][uniq, 0].astype(np.int64)
            prev_units = np.where(prev_idx >= 0,
                                  cur_units[np.maximum(prev_idx, 0)], prev0[rank])
            delta_units = (cur_units - prev_units) & TS_MASK
            ipd_b = np.where(count_i > 0,
                             ipd_bucket_array(delta_units * TS_UNIT_SECONDS), 0)

        feats = cols["payload"]
        if self.feature_fn is not None:
            feats = np.asarray(self.feature_fn(feats, ipd_b))
            idx = np.asarray(self.extractor_tree.predict_index(feats),
                             dtype=np.int64)
        else:
            idx = np.asarray(self._tree_indices(feats), dtype=np.int64)
        idx = np.minimum(idx, (1 << self.idx_bits) - 1)

        hist_idx = c["idx_hist"][uniq].astype(np.int64)
        win_idx = _gather_windows(hist_idx, rank, occ, idx, counts, self.window)

        ready_rows = np.nonzero(count_i >= self.window - 1)[0]
        if len(ready_rows):
            ready_win = win_idx[ready_rows]
            preds = self._predict_ready(
                keys, ready_rows, ready_win.astype(self._win_dtype),
                lambda rows: self._predict_windows(ready_win[rows]),
                features_rows=lambda rows: ready_win[rows],
                predict_feats=self._predict_windows)
            for k, i in enumerate(ready_rows):
                out.append(PacketDecision(flow_label=int(labels[i]),
                                          predicted=int(preds[k]),
                                          ts=float(ts[i]), seq=base + int(i)))

        c["idx_hist"][uniq] = win_idx[last_idx, 1:]
        if self.needs_ipd:
            c["prev_ts"][uniq, 0] = cur_units[last_idx]
        c["count"][uniq, 0] = np.minimum(cnt0 + counts, 255)
