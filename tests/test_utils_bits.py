"""Tests for bit-manipulation helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.bits import popcount, int_to_bits, bits_to_int, pack_signs, xnor_popcount


class TestPopcount:
    def test_scalar_zero(self):
        assert popcount(0) == 0

    def test_scalar_all_ones_32(self):
        assert popcount(0xFFFFFFFF) == 32

    def test_scalar_all_ones_64(self):
        assert popcount(0xFFFFFFFFFFFFFFFF) == 64

    def test_array(self):
        got = popcount(np.array([0, 1, 3, 7, 255], dtype=np.uint64))
        np.testing.assert_array_equal(got, [0, 1, 2, 3, 8])

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_matches_python_bin(self, v):
        assert popcount(v) == bin(v).count("1")


class TestBitsRoundtrip:
    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_roundtrip_16(self, v):
        assert bits_to_int(int_to_bits(v, 16)) == v

    def test_msb_first(self):
        np.testing.assert_array_equal(int_to_bits(0b100, 3), [1, 0, 0])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)


class TestXnorPopcount:
    def _binary_dot(self, a, b):
        return float(np.dot(np.where(a >= 0, 1, -1), np.where(b >= 0, 1, -1)))

    @given(st.integers(min_value=1, max_value=200), st.integers(0, 2**32))
    def test_matches_dense_dot(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        packed_a = pack_signs(a)
        packed_b = pack_signs(b)
        assert xnor_popcount(packed_a, packed_b, n) == self._binary_dot(a, b)

    def test_batched(self):
        rng = np.random.default_rng(7)
        a = rng.normal(size=(5, 130))
        b = rng.normal(size=130)
        packed_a = pack_signs(a)
        packed_b = pack_signs(b)
        got = xnor_popcount(packed_a, packed_b[None, :], 130)
        want = [self._binary_dot(a[i], b) for i in range(5)]
        np.testing.assert_array_equal(got, want)

    def test_identical_vectors_give_n(self):
        v = np.array([1.0, -2.0, 3.0, -4.0])
        p = pack_signs(v)
        assert xnor_popcount(p, p, 4) == 4
