"""Pegasus: a universal framework for scalable DL inference on the dataplane.

This package reproduces the SIGCOMM 2025 Pegasus system end to end:

- :mod:`repro.nn` — a pure-NumPy neural network training substrate.
- :mod:`repro.net` — packets, flows, traces, features, synthetic datasets.
- :mod:`repro.core` — the Pegasus contribution: Partition / Map / SumReduce
  primitives, fuzzy matching, primitive fusion, fixed-point quantization,
  centroid fine-tuning, and the model-to-dataplane compiler.
- :mod:`repro.dataplane` — a PISA match-action pipeline simulator with a
  Tofino-2-like resource model.
- :mod:`repro.backends` — P4_16 and eBPF code emitters.
- :mod:`repro.models` — the paper's six models (MLP-B, RNN-B, CNN-B/M/L,
  AutoEncoder).
- :mod:`repro.baselines` — N3IC, BoS and Leo reimplementations.
- :mod:`repro.eval` — metrics and the experiment harness behind every table
  and figure in the paper's evaluation.
- :mod:`repro.serving` — the production serving layer: batch scheduling,
  sharded/parallel dispatch, flow-decision caching, and the
  :class:`PegasusEngine` facade that builds the whole stack from one
  :class:`EngineConfig`.
"""

from repro.errors import (
    PegasusError,
    ConfigError,
    ShapeError,
    QuantizationError,
    CompilationError,
    ResourceExceededError,
    PipelineError,
    TraceFormatError,
    TrainingError,
)

# The public serving API: one engine, one config, one report. The dispatcher
# and runtime names are the deprecated direct entry points (still working,
# warning on construction) so users never need internal module paths.
from repro.serving import (
    BatchScheduler,
    EngineConfig,
    FlowDecisionCache,
    ParallelDispatcher,
    PegasusEngine,
    ServingReport,
    ShardedDispatcher,
)
from repro.dataplane import TwoStageRuntime, WindowedClassifierRuntime

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "PegasusError",
    "ConfigError",
    "ShapeError",
    "QuantizationError",
    "CompilationError",
    "ResourceExceededError",
    "PipelineError",
    "TraceFormatError",
    "TrainingError",
    "BatchScheduler",
    "EngineConfig",
    "FlowDecisionCache",
    "ParallelDispatcher",
    "PegasusEngine",
    "ServingReport",
    "ShardedDispatcher",
    "TwoStageRuntime",
    "WindowedClassifierRuntime",
]
