"""Evaluation harness: metrics, experiment runner, report rendering."""

from repro.eval.metrics import (
    confusion_matrix,
    macro_f1,
    macro_precision_recall_f1,
    roc_curve,
    auc_score,
)
from repro.eval.runner import (
    prepare_dataset,
    train_and_eval_model,
    run_table5,
    run_table6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_table2,
    run_batched_throughput,
)
from repro.eval.reporting import render_table

__all__ = [
    "confusion_matrix",
    "macro_f1",
    "macro_precision_recall_f1",
    "roc_curve",
    "auc_score",
    "prepare_dataset",
    "train_and_eval_model",
    "run_table5",
    "run_table6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_table2",
    "run_batched_throughput",
    "render_table",
]
