"""Scalability study: the knobs Pegasus trades accuracy against resources.

Sweeps, on one dataset:
1. fuzzy clustering depth (accuracy vs TCAM) — design ❹;
2. fusion level (lookup rounds / pipeline stages) — design ❺;
3. CNN-L per-flow storage variants (28 / 44 / 72 bits) — §7.3;
4. software-serving throughput of the batched runtime (batch size x shards);
5. parallel multi-process serving (measured concurrent wall clock) with the
   flow-decision cache on and off.

Run:  PYTHONPATH=src python examples/scalability_study.py
Expected runtime: ~2 minutes (documented in README.md).
"""

import numpy as np

from repro import EngineConfig, PegasusEngine
from repro.core import PegasusCompiler, CompilerConfig
from repro.dataplane import place_model, TOFINO2
from repro.eval.metrics import macro_f1
from repro.models import build_model
from repro.models.cnn import CNNL
from repro.net import make_dataset
from repro.net.features import dataset_views


def main():
    dataset = make_dataset("peerrush", flows_per_class=100, seed=0)
    train_flows, _val, test_flows = dataset.split(rng=0)
    train_views = dataset_views(train_flows)
    test_views = dataset_views(test_flows)
    model = build_model("MLP-B", dataset.n_classes, seed=0)
    model.train(train_views)
    calib = train_views["stats"].astype(np.int64)
    test = test_views["stats"].astype(np.int64)

    print("=== 1. fuzzy depth: accuracy vs TCAM (design ❹) ===")
    print(f"{'leaves':>7s} {'F1':>7s} {'TCAM bits':>10s}")
    for leaves in (4, 16, 64, 256):
        compiled = PegasusCompiler(CompilerConfig(fuzzy_leaves=leaves)) \
            .compile_sequential(model.net, calib).compiled
        f1 = macro_f1(test_views["y"], compiled.predict(test))
        print(f"{leaves:7d} {f1:7.4f} {compiled.tcam_bits():10d}")

    print("\n=== 2. fusion level: lookup rounds and pipeline stages (design ❺) ===")
    print(f"{'fusion':>11s} {'rounds':>7s} {'stages':>7s} {'F1':>7s}")
    for level in ("none", "basic", "linearized"):
        result = PegasusCompiler(CompilerConfig(fusion=level, fuzzy_leaves=256)) \
            .compile_sequential(model.net, calib)
        pipeline = place_model(result.compiled, TOFINO2)
        f1 = macro_f1(test_views["y"], result.compiled.predict(test))
        print(f"{level:>11s} {result.fused_lookup_rounds:7d} "
              f"{pipeline.n_stages_used:7d} {f1:7.4f}")

    print("\n=== 3. CNN-L per-flow storage variants (§7.3) ===")
    print(f"{'variant':>8s} {'bits/flow':>10s} {'SRAM@1M':>8s} {'F1':>7s}")
    for idx_bits, use_ipd in ((4, False), (4, True), (8, True)):
        cnn = CNNL(dataset.n_classes, seed=0, idx_bits=idx_bits, use_ipd=use_ipd)
        cnn.train(train_views)
        cnn.compile_dataplane(train_views)
        f1 = macro_f1(test_views["y"], cnn.predict_dataplane(test_views))
        layout = cnn.flow_layout()
        sram = layout.sram_fraction(1_000_000, TOFINO2.total_sram_bits)
        print(f"{layout.bits_per_flow:7d}b {layout.bits_per_flow:10d} "
              f"{sram:8.1%} {f1:7.4f}")

    print("\n=== 4. batched serving throughput (batch size x shards) ===")
    mlp = PegasusCompiler(CompilerConfig(fuzzy_leaves=256)) \
        .compile_sequential(model.net, calib).compiled
    print(f"{'config':>12s} {'pps':>12s} {'decisions':>10s}")
    for batch_size in (1, 32, 256, 1024):
        report = PegasusEngine.from_compiled(
            mlp, EngineConfig(feature_mode="stats", batch_size=batch_size)
        ).serve(test_flows)
        print(f"{'batch=' + str(batch_size):>12s} {report.pps:12.0f} "
              f"{report.n_decisions:10d}")
    # Throughput sweep: flush on batch-full only. A trace-time `timeout`
    # would trade decision latency for batch amortization (the synthetic
    # traces are slow enough that 50 ms holds only a handful of packets).
    for shards in (1, 4):
        report = PegasusEngine.from_compiled(
            mlp, EngineConfig(feature_mode="stats", batch_size=256,
                              topology="sharded", n_workers=shards)
        ).serve(test_flows)
        # Sharded replicas replay serially: pps_parallel models the parallel
        # wall clock as the slowest shard (section 5 measures the real one).
        print(f"{'shards=' + str(shards):>12s} {report.pps_parallel:12.0f} "
              f"{report.n_decisions:10d}")

    print("\n=== 5. parallel serving: measured wall clock + decision cache ===")
    print(f"{'config':>22s} {'pps':>12s} {'hit rate':>9s} {'decisions':>10s}")
    for workers in (1, 2, 4):
        for cached in (False, True):
            config = EngineConfig(feature_mode="stats", batch_size=256,
                                  decision_cache=cached,
                                  topology="parallel", n_workers=workers)
            with PegasusEngine.from_compiled(mlp, config) as engine:
                report = engine.serve(test_flows)
            hit = (f"{report.cache_stats.hit_rate:9.2%}"
                   if cached else f"{'-':>9s}")
            label = f"workers={workers}{'+cache' if cached else ''}"
            print(f"{label:>22s} {report.pps:12.0f} {hit} "
                  f"{report.n_decisions:10d}")


if __name__ == "__main__":
    main()
