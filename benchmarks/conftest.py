"""Shared benchmark configuration.

Every bench regenerates one table or figure of the paper. They are heavy
(each trains several models), so each runs exactly once per session via
``benchmark.pedantic(rounds=1)`` and prints its rendered table — the rows a
reader compares against the paper.

CI's bench-smoke job shrinks the workload via ``BENCH_FLOWS_PER_CLASS`` so
the serving benches finish in a couple of minutes while still producing the
trajectory JSON (``BENCH_serving.json``) the regression gate checks.
"""

import os

import pytest

# Dataset scale for the benches: large enough for stable orderings, small
# enough that the whole suite finishes in minutes.
FLOWS_PER_CLASS = int(os.environ.get("BENCH_FLOWS_PER_CLASS", "120"))
SEED = int(os.environ.get("BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_scale():
    return {"flows_per_class": FLOWS_PER_CLASS, "seed": SEED}
