"""Binary trace serialization (a minimal pcap stand-in).

Format ``SPCAP1``: a magic header, then one record per packet:
``<ts:f64><length:u16><payload_len:u16><5-tuple:u32 u32 u16 u16 u8><payload bytes>``
little-endian. Good enough to persist synthetic datasets and replay them
through the switch runtime deterministically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.net.packet import Packet, FlowKey

_MAGIC = b"SPCAP1\x00\x00"
_REC_HEADER = struct.Struct("<dHHIIHHB")

KEY_COLUMN_NAMES = ("src_ip", "dst_ip", "src_port", "dst_port", "proto")

_schema = None


def _wire_schema():
    """The columnar wire-format schema module, imported lazily.

    ``repro.dataplane.__init__`` imports the runtime, which imports this
    module — a top-level ``from repro.dataplane.schema import ...`` here
    would hit that half-initialized package. Deferring to first use breaks
    the cycle for every import order.
    """
    global _schema
    if _schema is None:
        from repro.dataplane import schema
        _schema = schema
    return _schema


def canonicalize_key_columns(cols: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Vectorized :meth:`FlowKey.canonical` over whole key columns.

    One boolean select pass instead of a Python call per packet; produces
    exactly the per-key canonical form (smaller (ip, port) endpoint first).
    """
    swap = (cols["src_ip"] > cols["dst_ip"]) | (
        (cols["src_ip"] == cols["dst_ip"])
        & (cols["src_port"] > cols["dst_port"]))
    return {
        "src_ip": np.where(swap, cols["dst_ip"], cols["src_ip"]),
        "dst_ip": np.where(swap, cols["src_ip"], cols["dst_ip"]),
        "src_port": np.where(swap, cols["dst_port"], cols["src_port"]),
        "dst_port": np.where(swap, cols["src_port"], cols["dst_port"]),
        "proto": np.asarray(cols["proto"]).copy(),
    }


def keys_from_columns(cols: dict[str, np.ndarray]) -> list[FlowKey]:
    """Rebuild per-packet :class:`FlowKey` objects from key columns.

    The worker-side inverse of :meth:`Trace.canonical_key_columns`: shard
    payloads cross the process boundary as five arrays and only become
    (plain-int) tuples again where the flow-slot table needs hashable keys.
    """
    return [FlowKey(*t) for t in zip(
        cols["src_ip"].tolist(), cols["dst_ip"].tolist(),
        cols["src_port"].tolist(), cols["dst_port"].tolist(),
        cols["proto"].tolist())]


@dataclass
class Trace:
    """A time-ordered packet sequence, as seen on the wire."""

    packets: list[Packet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.packets)

    def sort(self) -> "Trace":
        self.packets.sort(key=lambda p: p.ts)
        return self

    @staticmethod
    def from_flows(flows: list) -> "Trace":
        """Interleave the packets of many flows by timestamp."""
        packets = [p for f in flows for p in f.packets]
        return Trace(packets).sort()

    # -- columnar views for the batched runtimes ----------------------------

    def canonical_keys(self) -> list[FlowKey]:
        """Canonical 5-tuple of every packet, in trace order."""
        return [p.key.canonical() for p in self.packets]

    def packet_columns(self) -> dict[str, np.ndarray]:
        """Per-packet scalar columns (``ts`` float64, ``length`` int64).

        One pass over the packet objects; everything downstream of this
        (bucketing, flow-state gathers, model inference) runs on whole
        NumPy batches instead of per-packet Python.
        """
        sch = _wire_schema()
        return {
            "ts": np.asarray([p.ts for p in self.packets],
                             dtype=sch.wire_dtype("ts")),
            "length": np.asarray([p.length for p in self.packets],
                                 dtype=sch.wire_dtype("length")),
        }

    def key_columns(self) -> dict[str, np.ndarray]:
        """Raw (directional) per-packet 5-tuple columns, int64, trace order."""
        arr = np.asarray([p.key for p in self.packets],
                         dtype=_wire_schema().wire_dtype("src_ip")
                         ).reshape(-1, 5)
        return {name: arr[:, i] for i, name in enumerate(KEY_COLUMN_NAMES)}

    def canonical_key_columns(self) -> dict[str, np.ndarray]:
        """Canonical per-packet 5-tuple columns (vectorized canonicalization).

        Column-wise equivalent of :meth:`canonical_keys`; the form shard
        payloads ship across process boundaries (see
        :func:`keys_from_columns`).
        """
        return canonicalize_key_columns(self.key_columns())

    def to_columns(self, payload_bytes: int | None = None
                   ) -> dict[str, np.ndarray]:
        """The whole trace as a handful of arrays (the columnar wire form).

        ``ts``/``length`` scalars plus the raw 5-tuple columns; with
        ``payload_bytes`` set, also a zero-padded ``payload`` byte matrix.
        :meth:`from_columns` inverts it (up to payload truncation).
        """
        cols = self.packet_columns()
        cols.update(self.key_columns())
        if payload_bytes is not None:
            cols["payload"] = self.payload_matrix(payload_bytes)
        _wire_schema().WIRE_COLUMNS.validate_columns(
            cols, context="Trace.to_columns")
        return cols

    @staticmethod
    def from_columns(cols: dict[str, np.ndarray]) -> "Trace":
        """Rebuild packet objects from :meth:`to_columns` output."""
        _wire_schema().WIRE_COLUMNS.validate_columns(
            cols, context="Trace.from_columns")
        payload = cols.get("payload")
        packets = []
        for i in range(len(cols["ts"])):
            key = FlowKey(int(cols["src_ip"][i]), int(cols["dst_ip"][i]),
                          int(cols["src_port"][i]), int(cols["dst_port"][i]),
                          int(cols["proto"][i]))
            data = (payload[i].astype(np.uint8) if payload is not None
                    else np.zeros(0, dtype=np.uint8))
            packets.append(Packet(ts=float(cols["ts"][i]),
                                  length=int(cols["length"][i]),
                                  key=key, payload=data))
        return Trace(packets)

    def payload_matrix(self, n_bytes: int, start: int = 0,
                       stop: int | None = None) -> np.ndarray:
        """First ``n_bytes`` payload bytes of packets [start:stop]: (N, n_bytes) f64.

        Zero-padded, matching the per-packet raw view the two-stage runtime
        extracts fuzzy indexes from. The range arguments let batched replay
        materialize one batch at a time instead of the whole trace.
        """
        packets = self.packets[start:stop]
        out = np.zeros((len(packets), n_bytes),
                       dtype=_wire_schema().wire_dtype("payload"))
        for i, pkt in enumerate(packets):
            take = min(pkt.payload_len, n_bytes)
            if take:
                out[i, :take] = pkt.payload[:take]
        return out


def trace_to_bytes(trace: Trace) -> bytes:
    """The SPCAP1 serialization of a trace, as one bytes object.

    The canonical byte form: :func:`write_trace` writes exactly this, and
    golden-replay fixtures digest it (equal bytes <=> equal traces, payloads
    included).
    """
    chunks = [_MAGIC]
    for pkt in trace.packets:
        chunks.append(_REC_HEADER.pack(
            pkt.ts, pkt.length, pkt.payload_len,
            pkt.key.src_ip, pkt.key.dst_ip,
            pkt.key.src_port, pkt.key.dst_port, pkt.key.proto,
        ))
        chunks.append(pkt.payload.tobytes())
    return b"".join(chunks)


def write_trace(trace: Trace, path: str | Path) -> None:
    """Serialize a trace to the SPCAP1 binary format."""
    Path(path).write_bytes(trace_to_bytes(trace))


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    data = path.read_bytes()
    if not data.startswith(_MAGIC):
        raise TraceFormatError(f"{path} is not an SPCAP1 trace")
    offset = len(_MAGIC)
    packets: list[Packet] = []
    while offset < len(data):
        if offset + _REC_HEADER.size > len(data):
            raise TraceFormatError(f"{path}: truncated record header at byte {offset}")
        (ts, length, payload_len, src_ip, dst_ip,
         src_port, dst_port, proto) = _REC_HEADER.unpack_from(data, offset)
        offset += _REC_HEADER.size
        if offset + payload_len > len(data):
            raise TraceFormatError(f"{path}: truncated payload at byte {offset}")
        payload = np.frombuffer(data[offset:offset + payload_len], dtype=np.uint8).copy()
        offset += payload_len
        key = FlowKey(src_ip, dst_ip, src_port, dst_port, proto)
        packets.append(Packet(ts=ts, length=length, key=key, payload=payload))
    return Trace(packets)
