"""Network substrate: packets, flows, traces, features, synthetic datasets.

The paper's testbed replays pcap traces through a Tofino-2 switch. This
package provides the equivalent software substrate: packet and flow
abstractions, a binary trace format, flow assembly, the three feature views
the models consume (statistical, length/IPD sequence, raw bytes), and seeded
synthetic generators standing in for the PeerRush / CICIOT / ISCXVPN
datasets plus malware and DoS attack traffic.
"""

from repro.net.packet import Packet, FlowKey
from repro.net.flow import Flow, assemble_flows, flow_windows
from repro.net.traces import Trace, trace_to_bytes, write_trace, read_trace
from repro.net.features import (
    length_bucket,
    ipd_bucket,
    flow_statistical_features,
    sequence_tokens,
    raw_byte_matrix,
    N_STAT_FEATURES,
    SEQ_WINDOW,
    SEQ_TOKENS,
    RAW_BYTES_PER_PACKET,
)
from repro.net.synth import (
    ClassProfile,
    TrafficDataset,
    generate_flow,
    make_dataset,
    make_attack_flows,
    DATASET_NAMES,
    ATTACK_NAMES,
)
from repro.net.scenarios import (
    PhaseDef,
    PhaseSpan,
    Scenario,
    ScenarioTrace,
    TrafficBand,
    build_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "Packet",
    "FlowKey",
    "Flow",
    "assemble_flows",
    "flow_windows",
    "Trace",
    "trace_to_bytes",
    "write_trace",
    "read_trace",
    "length_bucket",
    "ipd_bucket",
    "flow_statistical_features",
    "sequence_tokens",
    "raw_byte_matrix",
    "N_STAT_FEATURES",
    "SEQ_WINDOW",
    "SEQ_TOKENS",
    "RAW_BYTES_PER_PACKET",
    "ClassProfile",
    "TrafficDataset",
    "generate_flow",
    "make_dataset",
    "make_attack_flows",
    "DATASET_NAMES",
    "ATTACK_NAMES",
    "PhaseDef",
    "PhaseSpan",
    "Scenario",
    "ScenarioTrace",
    "TrafficBand",
    "build_scenario",
    "register_scenario",
    "scenario_names",
]
