"""Common interface for the paper's traffic-analysis models."""

from __future__ import annotations

import numpy as np

from repro.errors import TrainingError
from repro.dataplane.registers import FlowStateLayout


class TrafficModel:
    """One model: float training + Pegasus compilation + deployment layout.

    ``feature_view`` names which array of
    :func:`repro.net.features.dataset_views` the model consumes:
    ``"stats"`` (16 x uint8), ``"seq"`` (16 interleaved tokens), or
    ``"raw"`` (8 x 60 payload bytes).
    """

    name: str = "model"
    feature_view: str = "stats"

    def __init__(self, n_classes: int, seed: int = 0):
        self.n_classes = n_classes
        self.seed = seed
        self.trained = False
        self.compiled = None

    # -- training ------------------------------------------------------------

    def train(self, views: dict[str, np.ndarray]) -> None:
        """Train the full-precision model on a views dict."""
        raise NotImplementedError

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        """Full-precision (control-plane / GPU) predictions."""
        raise NotImplementedError

    # -- dataplane -----------------------------------------------------------

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        """Compile to the dataplane using the views as calibration data."""
        raise NotImplementedError

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        """Integer-domain predictions of the compiled pipeline."""
        raise NotImplementedError

    # -- accounting ----------------------------------------------------------

    def model_size_kbits(self) -> float:
        """Model size in Kb: full-precision parameters at 32 bits each."""
        raise NotImplementedError

    def input_scale_bits(self) -> int:
        raise NotImplementedError

    def flow_layout(self) -> FlowStateLayout:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------

    def _require_trained(self) -> None:
        if not self.trained:
            raise TrainingError(f"{self.name} must be trained first")

    def _require_compiled(self) -> None:
        if self.compiled is None:
            raise TrainingError(f"{self.name} must be compiled first")

    @staticmethod
    def view(views: dict[str, np.ndarray], key: str) -> np.ndarray:
        try:
            return views[key]
        except KeyError:
            raise TrainingError(f"views dict is missing the {key!r} array") from None
