"""Experiment runner: one function per table / figure of the paper's §7.

Every function takes ``flows_per_class`` (dataset size) and ``seed`` so the
benchmarks can run the full-scale versions while tests run quick ones. All
randomness is seeded; results are plain dicts ready for rendering.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.baselines import build_baseline, BASELINE_NAMES
from repro.dataplane import TOFINO2, line_rate_pps
from repro.dataplane.resources import summarize_resources
from repro.dataplane.throughput import GPU_OVER_CPU
from repro.eval.metrics import macro_precision_recall_f1, roc_curve, auc_score
from repro.models import build_model
from repro.models.cnn import CNNL
from repro.net import make_dataset, make_attack_flows, DATASET_NAMES, ATTACK_NAMES
from repro.net.features import dataset_views

CLASSIFIERS = ("Leo", "N3IC", "MLP-B", "BoS", "RNN-B", "CNN-B", "CNN-M", "CNN-L")
PEGASUS_MODELS = ("MLP-B", "RNN-B", "CNN-B", "CNN-M", "CNN-L")


@lru_cache(maxsize=16)
def prepare_dataset(name: str, flows_per_class: int, seed: int):
    """Dataset -> (train/val/test views, n_classes). Cached per config."""
    ds = make_dataset(name, flows_per_class=flows_per_class, seed=seed)
    train, val, test = ds.split(rng=seed)
    return (dataset_views(train), dataset_views(val), dataset_views(test),
            ds.n_classes)


def _build(name: str, n_classes: int, seed: int):
    if name in BASELINE_NAMES:
        return build_baseline(name, n_classes, seed)
    return build_model(name, n_classes, seed)


def train_and_eval_model(model_name: str, dataset: str,
                         flows_per_class: int = 120, seed: int = 0,
                         include_float: bool = False) -> dict:
    """Train one model on one dataset; return PR/RC/F1 on the test split."""
    train_v, _val_v, test_v, n_classes = prepare_dataset(dataset, flows_per_class, seed)
    model = _build(model_name, n_classes, seed)
    model.train(train_v)
    model.compile_dataplane(train_v)
    pred = model.predict_dataplane(test_v)
    pr, rc, f1 = macro_precision_recall_f1(test_v["y"], pred, n_classes)
    row = {
        "model": model_name,
        "dataset": dataset,
        "PR": pr, "RC": rc, "F1": f1,
        "input_bits": model.input_scale_bits(),
        "model_kbits": model.model_size_kbits(),
        "_model": model,
    }
    if include_float:
        pred_f = model.predict_float(test_v)
        row["PR_float"], row["RC_float"], row["F1_float"] = \
            macro_precision_recall_f1(test_v["y"], pred_f, n_classes)
    return row


@lru_cache(maxsize=4)
def run_table5(flows_per_class: int = 120, seed: int = 0,
               models: tuple[str, ...] = CLASSIFIERS,
               datasets: tuple[str, ...] = DATASET_NAMES) -> dict:
    """Table 5: accuracy of every method on every dataset."""
    results: dict = {m: {"rows": {}} for m in models}
    for model_name in models:
        for dataset in datasets:
            row = train_and_eval_model(model_name, dataset, flows_per_class, seed)
            results[model_name]["rows"][dataset] = {
                k: row[k] for k in ("PR", "RC", "F1")}
            results[model_name]["input_bits"] = row["input_bits"]
            results[model_name]["model_kbits"] = row["model_kbits"]
    return results


def _resource_row(model, target=TOFINO2) -> dict:
    """Table-6 row for any trained+compiled model (duck-typed accounting)."""
    layout = model.flow_layout()
    compiled = model.compiled
    from repro.core.mapping import CompiledModel
    if isinstance(compiled, CompiledModel):
        report = summarize_resources(compiled, layout, target)
        return {"model": model.name,
                "bits/flow": report.stateful_bits_per_flow,
                "SRAM": report.sram_fraction,
                "TCAM": report.tcam_fraction,
                "Bus": report.bus_fraction}
    # Custom compiled artifacts (Leo, BoS, RNN-B, CNN-L) expose the
    # accounting methods on the artifact or on the model itself.
    acct = compiled if hasattr(compiled, "sram_bits") else model
    return {"model": model.name,
            "bits/flow": layout.bits_per_flow,
            "SRAM": acct.sram_bits() / target.total_sram_bits,
            "TCAM": acct.tcam_bits() / target.total_tcam_bits,
            "Bus": acct.bus_bits() / target.action_bus_bits}


def run_table6(flows_per_class: int = 120, seed: int = 0,
               dataset: str = "peerrush") -> list[dict]:
    """Table 6: hardware resource utilization per method.

    Like the paper, Leo is sized at 1024 nodes and BoS at hidden size 8; the
    accuracy models reuse their Table-5 configurations.
    """
    rows = []
    for name in ("Leo", "BoS", "MLP-B", "RNN-B", "CNN-B", "CNN-M", "CNN-L",
                 "AutoEncoder"):
        row = train_and_eval_model(name, dataset, flows_per_class, seed) \
            if name != "AutoEncoder" else None
        if name == "AutoEncoder":
            train_v, _v, _t, n_classes = prepare_dataset(dataset, flows_per_class, seed)
            model = build_model("AutoEncoder", n_classes, seed)
            model.train(train_v)
            model.compile_dataplane(train_v)
        else:
            model = row["_model"]
        rows.append(_resource_row(model))
    return rows


def run_fig7(flows_per_class: int = 120, seed: int = 0,
             datasets: tuple[str, ...] = DATASET_NAMES) -> list[dict]:
    """Figure 7: CNN-L accuracy vs per-flow storage (28 / 44 / 72 bits)."""
    variants = [
        {"label": "28b", "idx_bits": 4, "use_ipd": False},
        {"label": "44b", "idx_bits": 4, "use_ipd": True},
        {"label": "72b", "idx_bits": 8, "use_ipd": True},
    ]
    out = []
    for variant in variants:
        entry = {"label": variant["label"], "f1": {}}
        for dataset in datasets:
            train_v, _v, test_v, n_classes = prepare_dataset(
                dataset, flows_per_class, seed)
            model = CNNL(n_classes=n_classes, seed=seed,
                         idx_bits=variant["idx_bits"], use_ipd=variant["use_ipd"])
            model.train(train_v)
            model.compile_dataplane(train_v)
            pred = model.predict_dataplane(test_v)
            _, _, f1 = macro_precision_recall_f1(test_v["y"], pred, n_classes)
            entry["f1"][dataset] = f1
            entry["bits_per_flow"] = model.flow_layout().bits_per_flow
            entry["sram_frac_1m"] = model.flow_layout().sram_fraction(
                1_000_000, TOFINO2.total_sram_bits)
        out.append(entry)
    return out


def run_fig8(flows_per_class: int = 120, seed: int = 0,
             attack_flows: int = 40,
             datasets: tuple[str, ...] = DATASET_NAMES,
             attacks: tuple[str, ...] = ATTACK_NAMES) -> dict:
    """Figure 8: AutoEncoder ROC / AUC against unknown attacks.

    Benign training only; attacks injected into the test set at the paper's
    1:4 attack-to-benign ratio.
    """
    results: dict = {}
    for dataset in datasets:
        train_v, _v, test_v, n_classes = prepare_dataset(dataset, flows_per_class, seed)
        model = build_model("AutoEncoder", n_classes, seed)
        model.train(train_v)
        model.compile_dataplane(train_v)
        benign_scores = model.score_dataplane(test_v)
        n_benign = len(benign_scores)
        per_attack = {}
        for i, attack in enumerate(attacks):
            flows = make_attack_flows(attack, n_flows=attack_flows, seed=seed + i)
            attack_v = dataset_views(flows)
            scores = model.score_dataplane(attack_v)
            # 1:4 mixture: subsample attacks to a quarter of benign count.
            take = min(len(scores), max(n_benign // 4, 1))
            scores = scores[:take]
            labels = np.concatenate([np.zeros(n_benign), np.ones(take)])
            mixed = np.concatenate([benign_scores, scores])
            fpr, tpr = roc_curve(labels, mixed)
            per_attack[attack] = {"auc": auc_score(labels, mixed),
                                  "fpr": fpr, "tpr": tpr}
        results[dataset] = per_attack
    return results


def run_fig9(flows_per_class: int = 120, seed: int = 0,
             models: tuple[str, ...] = PEGASUS_MODELS,
             datasets: tuple[str, ...] = DATASET_NAMES) -> dict:
    """Figure 9: switch vs CPU/GPU accuracy (a-c) and throughput (d)."""
    accuracy: dict = {d: {} for d in datasets}
    throughput: dict = {}
    for model_name in models:
        for dataset in datasets:
            row = train_and_eval_model(model_name, dataset, flows_per_class,
                                       seed, include_float=True)
            accuracy[dataset][model_name] = {
                "pegasus": row["F1"], "float": row["F1_float"]}
            if dataset == datasets[0]:
                model = row["_model"]
                _t, _v, test_v, _n = prepare_dataset(dataset, flows_per_class, seed)
                cpu = _cpu_throughput(model, test_v)
                throughput[model_name] = {
                    "pegasus": line_rate_pps(TOFINO2),
                    "cpu": cpu,
                    "gpu": cpu * GPU_OVER_CPU,
                }
    return {"accuracy": accuracy, "throughput": throughput}


def _serving_mix(dataset: str, flows_per_class: int, seed: int,
                 attack_flows: int, elephant_flows: int = 0,
                 elephant_packets: int = 400) -> tuple[list, object]:
    """The Figure-8 serving workload plus a compiled MLP-B to serve it with.

    Benign test split + every unknown-attack flow set, shared by the batched
    and parallel throughput studies so their numbers are comparable.
    ``elephant_flows`` additionally injects constant-rate heavy hitters
    (fixed packet length, fixed inter-packet delay — flood/stream-shaped
    traffic): their feature windows repeat packet after packet, which is the
    case the flow-decision cache short-circuits.
    """
    from repro.net.flow import Flow
    from repro.net.packet import FlowKey, Packet

    row = train_and_eval_model("MLP-B", dataset, flows_per_class, seed)
    compiled = row["_model"].compiled
    ds = make_dataset(dataset, flows_per_class=flows_per_class, seed=seed)
    _train, _val, test_flows = ds.split(rng=seed)
    flows = list(test_flows)
    for i, attack in enumerate(ATTACK_NAMES):
        flows.extend(make_attack_flows(attack, n_flows=attack_flows, seed=seed + i))
    for e in range(elephant_flows):
        key = FlowKey(0xC0A80000 + e, 0x08080808, 50000 + e, 443, 6)
        ipd = 0.00064 * (1 + e % 3)        # exact 64 us multiples: stable IPDs
        length = 1200 - 100 * (e % 4)
        packets = [Packet(ts=i * ipd, length=length, key=key)
                   for i in range(elephant_packets)]
        flows.append(Flow(key=key.canonical(), packets=packets, label=0))
    return flows, compiled


def run_batched_throughput(flows_per_class: int = 120, seed: int = 0,
                           batch_sizes: tuple[int, ...] = (1, 32, 256, 1024),
                           shard_counts: tuple[int, ...] = (1, 4),
                           dataset: str = "peerrush",
                           attack_flows: int = 30,
                           repeats: int = 2) -> dict:
    """Software-dataplane packets/sec of the batched runtime (serving study).

    Replays the Figure-8 serving mix — the benign test split plus every
    unknown-attack flow set — through a ``local``-topology
    :class:`~repro.serving.PegasusEngine` at several batch sizes, then
    through the ``sharded`` topology at several shard counts (batch 256,
    flush on batch-full; a trace-time timeout would trade latency for
    amortization). Each measurement rebuilds a fresh engine so flow state
    starts cold; best of ``repeats`` runs. Returns per-config pps plus
    ``speedup_256_vs_1``, the tentpole's batching win.
    """
    from repro.serving import EngineConfig, PegasusEngine

    flows, compiled = _serving_mix(dataset, flows_per_class, seed, attack_flows)
    n_packets = sum(len(f) for f in flows)

    results: dict = {"n_packets": n_packets, "batch": {}, "shards": {}}
    for b in batch_sizes:
        best, n_dec = float("inf"), 0
        for _ in range(repeats):
            report = PegasusEngine.from_compiled(
                compiled, EngineConfig(feature_mode="stats", batch_size=b)
            ).serve(flows)
            best = min(best, report.wall_seconds)
            n_dec = report.n_decisions
        results["batch"][b] = {"pps": n_packets / max(best, 1e-9),
                               "decisions": n_dec}
    for s in shard_counts:
        best_wall, best_critical, n_dec = float("inf"), float("inf"), 0
        for _ in range(repeats):
            report = PegasusEngine.from_compiled(
                compiled, EngineConfig(feature_mode="stats", batch_size=256,
                                       topology="sharded", n_workers=s)
            ).serve(flows)
            best_wall = min(best_wall, report.wall_seconds)
            best_critical = min(best_critical, report.critical_seconds)
            n_dec = report.n_decisions
        results["shards"][s] = {
            "pps": n_packets / max(best_wall, 1e-9),
            # Replicas run concurrently in a real deployment: wall clock is
            # the slowest shard, not the serial sum.
            "pps_parallel": n_packets / max(best_critical, 1e-9),
            "decisions": n_dec}
    if 1 in results["batch"] and 256 in results["batch"]:
        results["speedup_256_vs_1"] = \
            results["batch"][256]["pps"] / results["batch"][1]["pps"]
    return results


def run_parallel_throughput(flows_per_class: int = 120, seed: int = 0,
                            worker_counts: tuple[int, ...] = (1, 2, 4),
                            dataset: str = "peerrush",
                            attack_flows: int = 30,
                            repeats: int = 2,
                            batch_size: int = 256,
                            cache_capacity: int = 1 << 16,
                            elephant_flows: int = 12) -> dict:
    """Measured concurrent serving throughput (parallel dispatcher study).

    Replays the Figure-8 serving mix — plus ``elephant_flows`` constant-rate
    heavy hitters, the flood/stream-shaped traffic whose repeating windows
    the decision cache short-circuits — through a ``parallel``-topology
    :class:`~repro.serving.PegasusEngine` at several worker counts, with and
    without the per-replica flow-decision cache, and through the ``sharded``
    topology with the same shard count as the serial reference. Every
    parallel run is checked **bit-identical** to its serial reference
    (``all_match_serial``). Each measurement rebuilds a fresh engine so flow
    state starts cold; workers are started before timing so ``wall_seconds``
    is pure serve time; best of ``repeats`` runs. ``speedup_4_vs_1``
    compares measured wall clock at 4 workers vs 1 — real concurrency, not
    the sharded topology's ``max(shard_seconds)`` model (expect ~1x on a
    single-core host).
    """
    from dataclasses import replace

    from repro.serving import EngineConfig, PegasusEngine

    flows, compiled = _serving_mix(dataset, flows_per_class, seed, attack_flows,
                                   elephant_flows=elephant_flows)
    n_packets = sum(len(f) for f in flows)
    base = EngineConfig(feature_mode="stats", batch_size=batch_size,
                        cache_capacity=cache_capacity)

    results: dict = {"n_packets": n_packets, "workers": {}}
    all_match = True
    for n in worker_counts:
        serial_wall = float("inf")
        reference = None
        for _ in range(repeats):
            report = PegasusEngine.from_compiled(
                compiled, replace(base, topology="sharded", n_workers=n)
            ).serve(flows)
            reference = report.decisions
            serial_wall = min(serial_wall, report.wall_seconds)
        entry: dict = {
            "serial_pps": n_packets / max(serial_wall, 1e-9),
            "decisions": len(reference),
        }
        for label, cached in (("parallel", False), ("parallel_cached", True)):
            best_wall, decisions, hit_rate = float("inf"), None, 0.0
            for _ in range(repeats):
                with PegasusEngine.from_compiled(
                        compiled, replace(base, topology="parallel",
                                          n_workers=n, decision_cache=cached)
                ) as engine:
                    report = engine.serve(flows)
                    decisions = report.decisions
                    best_wall = min(best_wall, report.wall_seconds)
                    hit_rate = report.cache_stats.hit_rate
            matches = decisions == reference
            all_match = all_match and matches
            entry[label] = {
                "pps": n_packets / max(best_wall, 1e-9),
                "wall_seconds": best_wall,
                "matches_serial": matches,
            }
            if cached:
                entry[label]["cache_hit_rate"] = hit_rate
        results["workers"][n] = entry
    results["all_match_serial"] = all_match
    if 1 in results["workers"] and 4 in results["workers"]:
        one, four = results["workers"][1], results["workers"][4]
        results["speedup_4_vs_1"] = \
            four["parallel"]["pps"] / one["parallel"]["pps"]
        results["speedup_4_vs_1_cached"] = \
            four["parallel_cached"]["pps"] / one["parallel_cached"]["pps"]
        results["cache_hit_rate"] = four["parallel_cached"]["cache_hit_rate"]
    return results


def run_tcam_equivalence(flows_per_class: int = 120, seed: int = 0,
                         worker_counts: tuple[int, ...] = (1, 2, 4),
                         dataset: str = "peerrush",
                         attack_flows: int = 30,
                         elephant_flows: int = 8,
                         batch_size: int = 256,
                         cache_capacity: int = 1 << 16,
                         sample_keys: int = 256) -> dict:
    """Hardware-fidelity report: emulated TCAM vs index lookups, end to end.

    Three nested equivalence checks on the Figure-8 serving mix (benign test
    split + unknown attacks + constant-rate elephants), all required to hold
    bit-exactly:

    1. **entry level** — every fuzzy table's packed (value, mask, priority)
       rows, fed scalar through :func:`repro.core.crc.lookup_prioritized`,
       agree with the vectorized masked-compare engine on sampled keys;
    2. **table level** — TCAM fuzzy indices equal the tree walk on in-domain
       *and* out-of-domain keys (the fixed-width key clamp);
    3. **serving level** — the full matrix of workers {1,2,4} x cache on/off
       x ``sharded``/``parallel`` :class:`~repro.serving.PegasusEngine`
       topologies with ``lookup_backend="tcam"`` reproduces the
       index-backend reference decision stream exactly.

    Returns per-table encoding/entry rows plus ``all_match`` — the bit the
    CI equivalence gate (and the README fidelity claim) rests on.
    """
    from dataclasses import replace

    from repro.dataplane.tcam import tcam_table_report
    from repro.core.crc import lookup_prioritized
    from repro.serving import EngineConfig, PegasusEngine

    flows, compiled = _serving_mix(dataset, flows_per_class, seed, attack_flows,
                                   elephant_flows=elephant_flows)
    rng = np.random.default_rng(seed)
    tables = tcam_table_report(compiled)

    entry_match = True
    table_match = True
    ti = 0
    for layer in compiled.layers:
        for table in layer.tables:
            if table.kind != "fuzzy":
                continue
            seg = table.tcam_segment()
            lo = -(1 << (table.in_bits - 1)) if table.in_signed else 0
            hi = lo + (1 << table.in_bits) - 1
            d = table.segment[1] - table.segment[0]
            keys = rng.integers(lo, hi + 1, size=(sample_keys, d))
            keys_out = rng.integers(lo - 2 * (hi - lo), hi + 2 * (hi - lo),
                                    size=(sample_keys // 4, d))
            want = table.tree.predict_index(keys)
            got = table.tcam_indices(keys)
            table_match &= bool(np.array_equal(got, want))
            table_match &= bool(np.array_equal(
                table.tcam_indices(keys_out),
                table.tree.predict_index(np.clip(keys_out, lo, hi))))
            # Pruned kernel: candidate-subset matching must agree with the
            # full prioritized scan on the same keys (in- and out-of-domain).
            table_match &= bool(np.array_equal(
                table.tcam_indices(keys, pruned=True), want))
            table_match &= bool(np.array_equal(
                table.tcam_indices(keys_out, pruned=True),
                table.tree.predict_index(np.clip(keys_out, lo, hi))))
            # Scalar TCAM reference on a sub-sample, per materialized table.
            for packed in seg.node_tables():
                sub = rng.integers(lo, hi + 1,
                                   size=(32, packed.n_fields))
                entries = packed.entries()
                scalar = [lookup_prioritized(entries, k)
                          for k in packed.pack_keys(sub)]
                entry_match &= bool(
                    np.array_equal(scalar, packed.lookup(sub)))
            tables[ti]["table_match"] = bool(np.array_equal(got, want))
            ti += 1

    base = EngineConfig(feature_mode="stats", batch_size=batch_size,
                        cache_capacity=cache_capacity)

    matrix: dict = {}
    serving_match = True
    for n in worker_counts:
        reference = PegasusEngine.from_compiled(
            compiled, replace(base, topology="sharded", n_workers=n)
        ).serve(flows).decisions
        entry: dict = {"decisions": len(reference)}
        for cached in ("off", "l1", "l1+l2"):
            # Rotate the TCAM flavor so the pruned kernel is exercised in
            # the serving matrix without doubling it: the two-level cache
            # config (the one that could mask a lookup bug behind hits)
            # serves through the pruned path.
            backend = "tcam-pruned" if cached == "l1+l2" else "tcam"
            def tcam(topology):
                return replace(base, lookup_backend=backend, n_workers=n,
                               decision_cache=cached, topology=topology)
            sharded_ok = PegasusEngine.from_compiled(
                compiled, tcam("sharded")
            ).serve(flows).decisions == reference
            with PegasusEngine.from_compiled(
                    compiled, tcam("parallel")) as engine:
                parallel_ok = engine.serve(flows).decisions == reference
            entry[f"cache_{cached}"] = {
                "lookup_backend": backend,
                "sharded_match": sharded_ok, "parallel_match": parallel_ok}
            serving_match = serving_match and sharded_ok and parallel_ok
        matrix[n] = entry

    return {
        "tables": tables,
        "tcam_entries_total": int(sum(t["entries"] for t in tables)),
        "entry_match": bool(entry_match),
        "table_match": bool(table_match),
        "serving_match": bool(serving_match),
        "all_match": bool(entry_match and table_match and serving_match),
        "matrix": matrix,
    }


def run_tcam_throughput(flows_per_class: int = 120, seed: int = 0,
                        dataset: str = "peerrush",
                        attack_flows: int = 30,
                        elephant_flows: int = 8,
                        batch_size: int = 256,
                        repeats: int = 2,
                        model_batch: int = 4096) -> dict:
    """Packets/sec of the lookup backends (TCAM-vs-index bench).

    Measures ``index``, the full-scan ``tcam`` emulation, and the
    ``tcam-pruned`` candidate-subset kernel. Two measurements per backend,
    best of ``repeats`` runs each:

    - **model level** — ``forward_int`` rows/sec on one large random batch,
      isolating pure lookup-engine cost (tree walk vs masked-compare +
      priority reduction over the packed entries);
    - **serving level** — end-to-end ``local``-topology
      :class:`~repro.serving.PegasusEngine` replay pps on the Figure-8
      serving mix, the number that tells you what hardware-faithful
      emulation costs in the serving path.

    Decisions are asserted identical across backends (``matches_index``);
    TCAM compilation is warmed up-front so timings exclude it.
    """
    import time

    from repro.dataplane.tcam import tcam_table_report
    from repro.serving import EngineConfig, PegasusEngine

    flows, compiled = _serving_mix(dataset, flows_per_class, seed, attack_flows,
                                   elephant_flows=elephant_flows)
    n_packets = sum(len(f) for f in flows)
    tables = tcam_table_report(compiled)    # compile + warm every fuzzy table

    rng = np.random.default_rng(seed)
    x = rng.integers(0, 1 << compiled.input_bits,
                     size=(model_batch, compiled.input_dim))
    results: dict = {
        "n_packets": n_packets,
        "model_batch": model_batch,
        "tcam_entries_total": int(sum(t["entries"] for t in tables)),
        "tcam_tables": len(tables),
        "model_rows_per_s": {},
        "serving_pps": {},
    }
    matches = True
    reference = None
    ref_forward = None
    for backend in ("index", "tcam", "tcam-pruned"):
        compiled.forward_int(x[:64], lookup_backend=backend)    # warm-up
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            out = compiled.forward_int(x, lookup_backend=backend)
            best = min(best, time.perf_counter() - start)
        if ref_forward is None:
            ref_forward = out
        else:
            matches = matches and bool(np.array_equal(out, ref_forward))
        results["model_rows_per_s"][backend] = model_batch / max(best, 1e-9)

        best = float("inf")
        decisions = None
        for _ in range(repeats):
            report = PegasusEngine.from_compiled(
                compiled, EngineConfig(feature_mode="stats",
                                       batch_size=batch_size,
                                       lookup_backend=backend)
            ).serve(flows)
            decisions = report.decisions
            best = min(best, report.wall_seconds)
        if reference is None:
            reference = decisions
        else:
            matches = matches and decisions == reference
        results["serving_pps"][backend] = n_packets / max(best, 1e-9)

    results["decisions"] = len(reference)
    results["matches_index"] = bool(matches)
    results["serving_slowdown_tcam"] = \
        results["serving_pps"]["index"] / max(results["serving_pps"]["tcam"], 1e-9)
    results["serving_slowdown_tcam_pruned"] = \
        results["serving_pps"]["index"] / \
        max(results["serving_pps"]["tcam-pruned"], 1e-9)
    return results


def run_scenario_suite(flows_per_class: int = 120, seed: int = 0,
                       dataset: str = "peerrush",
                       scenarios: tuple[str, ...] | None = None,
                       flows_scale: float = 1.0,
                       batch_size: int = 256,
                       decision_cache: bool | str = "l1+l2",
                       differential_seeds: int = 0,
                       differential_budget: float = 300.0) -> dict:
    """Serve every registered scenario family, reported per phase.

    Trains + compiles the serving MLP-B once, then replays each scenario
    through a ``local``-topology :class:`~repro.serving.PegasusEngine` via
    :meth:`~repro.serving.PegasusEngine.serve`, collecting the
    per-phase accuracy/pps/cache breakdown (an attack flood shows up as an
    accuracy cliff in its own phase, a heavy-hitter phase as a cache
    hit-rate spike). Because the default cache mode serves *approximate*
    L2 hits, every cached scenario replay is digest-compared against an
    uncached serve of the same workload — the suite's
    ``decisions_bit_identical`` bit. With ``differential_seeds >= 0`` the
    quick differential matrix (see :mod:`repro.eval.differential`) also
    replays the fixed seed plus that many random seeds, contributing the
    suite's ``differential_ok`` correctness bit.
    """
    from dataclasses import replace

    from repro.eval.differential import decision_digest, fuzz_differential
    from repro.net import build_scenario, scenario_names
    from repro.serving import EngineConfig, PegasusEngine

    row = train_and_eval_model("MLP-B", dataset, flows_per_class, seed)
    compiled = row["_model"].compiled
    config = EngineConfig(feature_mode="stats", batch_size=batch_size,
                          decision_cache=decision_cache)
    names = scenarios if scenarios is not None else scenario_names()

    results: dict = {"dataset": dataset, "model_f1": row["F1"],
                     "scenarios": {}, "cache_mode": config.decision_cache,
                     "decision_digests": {}}
    bit_identical = True
    for name in names:
        workload = build_scenario(name).generate(seed=seed,
                                                 flows_scale=flows_scale)
        with PegasusEngine.from_compiled(compiled, config) as engine:
            report = engine.serve(workload)
        digest = decision_digest(report.overall.decisions)
        if config.decision_cache != "off":
            with PegasusEngine.from_compiled(
                    compiled, replace(config, decision_cache="off")) as eng:
                plain = eng.serve(workload)
            bit_identical &= digest == decision_digest(plain.overall.decisions)
        results["scenarios"][name] = report.summary()
        results["decision_digests"][name] = digest
    results["decisions_bit_identical"] = bool(bit_identical)
    # The differential pass honors the same narrowing knobs as the serving
    # loop, so a restricted suite stays proportionally quick.
    fuzz = fuzz_differential(n_seeds=differential_seeds, base_seed=seed,
                             scenarios=tuple(names),
                             flows_scale=min(flows_scale, 0.5),
                             budget_seconds=differential_budget)
    results["differential_ok"] = fuzz.ok
    results["differential_trials"] = len(fuzz.trials)
    return results


#: Sentinel recorded in place of ``aimd_over_taildrop`` when tail-drop
#: sustained 0 pps (the ratio is undefined; the raw pair rides alongside).
TAILDROP_ZERO = "taildrop_zero"


def run_openloop_study(flows_per_class: int = 120, seed: int = 0,
                       dataset: str = "peerrush",
                       scenarios: tuple[str, ...] = ("microburst",
                                                     "attack_flood"),
                       flows_scale: float = 1.0,
                       batch_size: int = 32,
                       p99_target_ms: float = 50.0,
                       load_multipliers: tuple[float, ...] = (0.5, 2.0, 4.0),
                       policies: tuple[str, ...] = ("none", "tail-drop",
                                                    "aimd"),
                       max_gap: float = 0.25,
                       verify: bool = True) -> dict:
    """Sustained open-loop pps at a fixed p99 latency target, per policy.

    The open-loop serving study: each stress scenario is replayed through
    ``serve(mode="open")`` at several offered-load multiples of the
    engine's *measured* closed-loop service rate (the study self-calibrates,
    so the same code stresses a fast or slow host equally). Per admission
    policy, **sustained pps** is the highest admitted throughput among runs
    whose p99 sojourn met the target — the number a capacity planner wants.
    The ingress queue is sized at ~2x the target's worth of service, so a
    saturated tail-drop queue *clearly* misses the target (sojourn ~2x
    target) while the AIMD source throttle bounds queued delay and stays
    under it. The headline claim is AIMD sustaining strictly more than
    tail-drop; on bursty families tail-drop legitimately sustains *zero*
    (every burst fills the queue at any offered load), in which case the
    ``aimd_over_taildrop`` ratio is omitted.

    With ``verify=True`` every policy's highest-load run is checked by
    :func:`~repro.eval.differential.verify_open_loop`: the claimed admitted
    subsequence must replay bit-identically against the per-packet scalar
    reference (``verified_bit_identical``).
    """
    from repro.eval.differential import verify_open_loop
    from repro.net import build_scenario
    from repro.serving import EngineConfig, PegasusEngine

    row = train_and_eval_model("MLP-B", dataset, flows_per_class, seed)
    compiled = row["_model"].compiled
    target_s = p99_target_ms / 1e3

    results: dict = {"dataset": dataset, "p99_target_ms": p99_target_ms,
                     "scenarios": {}}
    verified = True
    for name in scenarios:
        workload = build_scenario(name).generate(seed=seed,
                                                 flows_scale=flows_scale)
        n = workload.n_packets
        # Calibrate: the open-loop consumer's own service rate on this
        # exact workload (admission="none", time_scale=0 — an unpaced
        # drain through the same pump/chunk path the paced runs use;
        # closed-loop pps would overstate it and skew the multipliers).
        with PegasusEngine.from_compiled(
                compiled, EngineConfig(feature_mode="stats",
                                       batch_size=batch_size)) as eng:
            service_pps = eng.serve(workload, mode="open").admitted_pps
        ts = workload.ts_column()
        span_s = float(ts[-1] - ts[0]) if n > 1 else 1.0
        queue_capacity = max(128, int(2 * target_s * service_pps))
        entry: dict = {"n_packets": n, "service_pps": service_pps,
                       "queue_capacity": queue_capacity,
                       "policies": {}}
        for policy in policies:
            runs = []
            sustained = 0.0
            last_report = None
            for mult in load_multipliers:
                offered_pps = mult * service_pps
                time_scale = n / max(span_s * offered_pps, 1e-9)
                config = EngineConfig(
                    feature_mode="stats", batch_size=batch_size,
                    admission=policy, queue_capacity=queue_capacity,
                    p99_target_ms=p99_target_ms, time_scale=time_scale)
                with PegasusEngine.from_compiled(compiled, config) as eng:
                    report = eng.serve(workload, mode="open",
                                       max_gap=max_gap)
                last_report = report
                meets = bool(report.meets_target)
                if meets:
                    sustained = max(sustained, report.admitted_pps)
                runs.append({"load_multiplier": mult,
                             "offered_pps": report.offered_pps,
                             "admitted_pps": report.admitted_pps,
                             "shed_fraction": report.shed_fraction,
                             "p99_ms": report.latency.p99_ms,
                             "meets_target": meets})
            policy_row = {"runs": runs, "sustained_pps": sustained,
                          "last_summary": (last_report.summary()
                                           if last_report else None)}
            if verify and last_report is not None:
                notes = verify_open_loop(workload, last_report, compiled)
                policy_row["verify_notes"] = notes
                verified = verified and not notes
            entry["policies"][policy] = policy_row
        td = entry["policies"].get("tail-drop", {}).get("sustained_pps", 0.0)
        ai = entry["policies"].get("aimd", {}).get("sustained_pps", 0.0)
        entry["sustained_raw"] = {"aimd": ai, "tail_drop": td}
        # Tail-drop legitimately sustains *zero* pps on bursty families
        # (every burst parks its survivors behind a full queue), which makes
        # the ratio undefined — record the explicit sentinel plus the raw
        # pair above instead of omitting the key, so downstream gates can
        # tell "undefined, aimd still wins" from "never measured".
        entry["aimd_over_taildrop"] = ai / td if td else TAILDROP_ZERO
        results["scenarios"][name] = entry
    results["verified_bit_identical"] = bool(verified)
    ratios = [e["aimd_over_taildrop"]
              for e in results["scenarios"].values()]
    numeric = [r for r in ratios if not isinstance(r, str)]
    if numeric:
        results["aimd_over_taildrop_min"] = min(numeric)
    elif ratios:
        results["aimd_over_taildrop_min"] = TAILDROP_ZERO
    return results


def _cpu_throughput(model, views) -> float:
    """Measured full-precision inference throughput on this host."""
    import time
    model_views = {k: v for k, v in views.items()}
    model.predict_float(model_views)  # warm-up
    start = time.perf_counter()
    model.predict_float(model_views)
    elapsed = time.perf_counter() - start
    return len(views["y"]) / max(elapsed, 1e-9)


def run_table2(table5: dict) -> dict:
    """Table 2: Pegasus's headline ratios versus each prior work."""
    def avg_f1(name):
        rows = table5[name]["rows"]
        return float(np.mean([r["F1"] for r in rows.values()]))

    cnn_l = table5["CNN-L"]
    out = {}
    for prior in ("N3IC", "BoS", "Leo"):
        if prior not in table5:
            continue
        entry = {"accuracy_gain": avg_f1("CNN-L") - avg_f1(prior)}
        if table5[prior].get("model_kbits"):
            entry["model_size_ratio"] = cnn_l["model_kbits"] / table5[prior]["model_kbits"]
        if table5[prior].get("input_bits"):
            entry["input_scale_ratio"] = cnn_l["input_bits"] / table5[prior]["input_bits"]
        out[prior] = entry
    return out
