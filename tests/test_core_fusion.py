"""Tests for Basic and Advanced Primitive Fusion."""

import numpy as np
import pytest

from repro import nn
from repro.core.fusion import additive_program, fuse_basic, remove_nonlinear
from repro.core.operators import lower_sequential
from repro.core.primitives import (
    Affine, ElementwiseAffine, ElementwiseFunc, MapStep, PrimitiveProgram,
    SumReduceStep, even_partition,
)


def _rand_affine(rng, d_in, d_out):
    return Affine(rng.normal(size=(d_in, d_out)), rng.normal(size=d_out))


def _mlp_two_hidden(rng_seed=0):
    """The paper's Figure 5 example: 2 hidden layers of [BN, FC, ReLU] + head."""
    model = nn.Sequential(
        nn.BatchNorm1d(8),
        nn.Linear(8, 6, rng=0),
        nn.ReLU(),
        nn.BatchNorm1d(6),
        nn.Linear(6, 6, rng=1),
        nn.ReLU(),
        nn.Linear(6, 3, rng=2),
    )
    rng = np.random.default_rng(rng_seed)
    model.train_mode(True)
    for _ in range(5):
        model.forward(rng.normal(size=(32, 8)))
    model.eval_mode()
    return model


class TestBasicFusion:
    def test_semantics_preserved(self):
        model = _mlp_two_hidden()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        fused = fuse_basic(program)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 8))
        np.testing.assert_allclose(fused.evaluate(x), program.evaluate(x), atol=1e-9)

    def test_figure5_seven_to_two(self):
        """7 operator lookups collapse to 2 fused Map rounds (Fig. 5 ❶)."""
        model = _mlp_two_hidden()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        assert program.num_map_steps == 7
        fused = fuse_basic(program)
        assert fused.num_map_steps == 2

    def test_fused_structure(self):
        model = _mlp_two_hidden()
        fused = fuse_basic(lower_sequential(model, input_dim=8, input_segment_dim=2))
        # [Map(per-segment BN+FC1), SumReduce, Map(whole nonlinear tail)]
        assert isinstance(fused.steps[0], MapStep)
        assert fused.steps[0].n_segments == 4
        assert isinstance(fused.steps[1], SumReduceStep)
        assert isinstance(fused.steps[2], MapStep)
        assert fused.steps[2].is_whole

    def test_merge_consecutive_elementwise(self):
        d = 4
        program = PrimitiveProgram(
            input_dim=d,
            steps=[MapStep([(0, d)], [ElementwiseAffine(np.full(d, 2.0), np.zeros(d))]),
                   MapStep([(0, d)], [ElementwiseAffine(np.full(d, 3.0), np.ones(d))])])
        fused = fuse_basic(program)
        assert fused.num_map_steps == 1
        x = np.random.default_rng(0).normal(size=(5, d))
        np.testing.assert_allclose(fused.evaluate(x), 6.0 * x + 1.0)

    def test_linear_reordering(self):
        """SumReduce followed by an affine Map commutes into the segments."""
        rng = np.random.default_rng(2)
        partition = even_partition(6, 2)
        fns = [_rand_affine(rng, 2, 4) for _ in partition]
        tail = _rand_affine(rng, 4, 3)
        program = PrimitiveProgram(
            input_dim=6,
            steps=[MapStep(partition, fns), SumReduceStep(3, 4),
                   MapStep([(0, 4)], [tail])])
        fused = fuse_basic(program)
        # The affine tail disappears into the per-segment maps.
        assert fused.num_map_steps == 1
        assert isinstance(fused.steps[-1], SumReduceStep)
        x = rng.normal(size=(10, 6))
        np.testing.assert_allclose(fused.evaluate(x), program.evaluate(x), atol=1e-9)

    def test_nonlinear_blocks_reordering(self):
        rng = np.random.default_rng(3)
        partition = even_partition(4, 2)
        fns = [_rand_affine(rng, 2, 3) for _ in partition]
        relu = ElementwiseFunc(lambda v: np.maximum(v, 0), 3, name="relu")
        program = PrimitiveProgram(
            input_dim=4,
            steps=[MapStep(partition, fns), SumReduceStep(2, 3),
                   MapStep([(0, 3)], [relu])])
        fused = fuse_basic(program)
        # ReLU cannot slide before the sum: still 2 map rounds.
        assert fused.num_map_steps == 2
        x = rng.normal(size=(8, 4))
        np.testing.assert_allclose(fused.evaluate(x), program.evaluate(x), atol=1e-9)

    def test_trivial_sumreduce_dropped(self):
        program = PrimitiveProgram(
            input_dim=2,
            steps=[MapStep([(0, 2)], [Affine(np.eye(2), np.zeros(2))]),
                   SumReduceStep(1, 2)])
        fused = fuse_basic(program)
        assert not any(isinstance(s, SumReduceStep) for s in fused.steps)

    def test_fusion_idempotent(self):
        model = _mlp_two_hidden()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        once = fuse_basic(program)
        twice = fuse_basic(once)
        assert twice.num_map_steps == once.num_map_steps


class TestAdvancedFusion:
    def test_remove_nonlinear_collapses_to_single_lookup(self):
        model = _mlp_two_hidden()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        linear = fuse_basic(remove_nonlinear(program))
        assert linear.num_map_steps == 1

    def test_remove_nonlinear_is_lossy(self):
        model = _mlp_two_hidden()
        program = lower_sequential(model, input_dim=8, input_segment_dim=2)
        linear = remove_nonlinear(program)
        x = np.random.default_rng(4).normal(size=(30, 8)) - 2.0  # push into ReLU cut
        assert not np.allclose(linear.evaluate(x), program.evaluate(x))

    def test_additive_program(self):
        rng = np.random.default_rng(5)
        partition = even_partition(8, 4)
        w = [rng.normal(size=(4, 3)) for _ in partition]

        def make_fn(wi):
            return lambda seg: np.tanh(seg @ wi)

        program = additive_program(8, partition, [make_fn(wi) for wi in w], out_dim=3)
        assert program.num_map_steps == 1
        x = rng.normal(size=(6, 8))
        want = sum(np.tanh(x[:, s:e] @ wi) for (s, e), wi in zip(partition, w))
        np.testing.assert_allclose(program.evaluate(x), want, atol=1e-12)

    def test_additive_program_mismatched_fns(self):
        from repro.errors import CompilationError
        with pytest.raises(CompilationError):
            additive_program(4, [(0, 2), (2, 4)], [lambda v: v], out_dim=2)
