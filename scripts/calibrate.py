"""Dev helper: check stats-MLP separability per dataset."""
import numpy as np
from repro.net import make_dataset
from repro.net.features import dataset_views
from repro import nn

def check(name, seed=0):
    ds = make_dataset(name, flows_per_class=120, seed=seed)
    tr, va, te = ds.split(rng=0)
    vtr, vte = dataset_views(tr), dataset_views(te)
    x = vtr["stats"].astype(np.float64) / 32.0
    model = nn.Sequential(nn.Linear(16, 48, rng=0), nn.ReLU(), nn.Linear(48, ds.n_classes, rng=1))
    nn.fit(model, x, vtr["y"], nn.CrossEntropyLoss(), nn.Adam(model.parameters(), lr=0.01),
           epochs=40, batch_size=64, rng=0)
    pred = nn.predict_classes(model, vte["stats"].astype(np.float64) / 32.0)
    return (pred == vte["y"]).mean()

if __name__ == "__main__":
    for name in ("peerrush", "ciciot", "iscxvpn"):
        print(name, round(check(name), 3))
