"""Flow generation machinery shared by all synthetic datasets."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.net.flow import Flow
from repro.net.packet import Packet, FlowKey, MAX_PACKET_LENGTH
from repro.utils.rng import new_rng

_MIN_LEN = 40
_PAYLOAD_CAP = 200  # bytes of payload we synthesize (models read at most 60)


@dataclass
class ClassProfile:
    """Everything that characterizes one traffic class.

    ``len_modes`` is a mixture of (mean, std, weight) packet-length modes.
    ``len_period`` / ``len_amp`` superimpose a periodic modulation on the
    length *sequence* — the temporal signature RNN/CNN models can exploit.
    ``ipd_mu`` / ``ipd_sigma`` parameterize a lognormal inter-packet delay in
    seconds. ``corr`` couples length and IPD obliquely (rotated covariance),
    which axis-aligned trees split poorly. ``header_template`` is the noisy
    per-class payload header; ``motif`` a byte signature inserted with
    probability ``motif_prob`` inside the first 60 payload bytes.
    """

    name: str
    len_modes: list[tuple[float, float, float]]
    ipd_mu: float
    ipd_sigma: float
    len_period: float = 0.0
    len_amp: float = 0.0
    corr: float = 0.0
    header_template: bytes = b""
    header_noise: float = 0.05
    motif: bytes = b""
    motif_prob: float = 0.9
    min_packets: int = 12
    max_packets: int = 24
    label: int = -1
    extra_len_jitter: float = 0.0

    def sample_length_base(self, rng: np.random.Generator) -> float:
        weights = np.array([w for _, _, w in self.len_modes], dtype=np.float64)
        weights /= weights.sum()
        idx = rng.choice(len(self.len_modes), p=weights)
        mean, std, _ = self.len_modes[idx]
        return rng.normal(mean, std)


def random_flow_key(rng: np.random.Generator) -> FlowKey:
    """One random (directional) flow 5-tuple from the generator's key space.

    Public so scenario workloads can pre-draw heavy-hitter key pools and
    pin many flowlets onto the same canonical key.
    """
    return FlowKey(
        src_ip=int(rng.integers(0x0A000000, 0x0AFFFFFF)),
        dst_ip=int(rng.integers(0xC0A80000, 0xC0A8FFFF)),
        src_port=int(rng.integers(1024, 65535)),
        dst_port=int(rng.choice([80, 443, 53, 4662, 6881, 1900, 5060])),
        proto=int(rng.choice([6, 17])),
    )


_random_key = random_flow_key     # internal alias, kept for call sites below


def _make_payload(profile: ClassProfile, rng: np.random.Generator, size: int) -> np.ndarray:
    payload = rng.integers(0, 256, size=size, dtype=np.int64).astype(np.uint8)
    header = np.frombuffer(profile.header_template, dtype=np.uint8)
    take = min(header.size, size)
    if take:
        noisy = header[:take].copy()
        flips = rng.random(take) < profile.header_noise
        noisy[flips] = rng.integers(0, 256, size=int(flips.sum()), dtype=np.int64).astype(np.uint8)
        payload[:take] = noisy
    motif = np.frombuffer(profile.motif, dtype=np.uint8)
    if motif.size and rng.random() < profile.motif_prob:
        # Keep the motif within the first 60 bytes so CNN-L's raw view sees it.
        limit = min(60, size) - motif.size
        if limit >= take:
            offset = int(rng.integers(take, limit + 1))
            payload[offset:offset + motif.size] = motif
    return payload


def generate_flow(profile: ClassProfile, rng: np.random.Generator | int | None = None,
                  start_ts: float = 0.0, key: FlowKey | None = None) -> Flow:
    """Generate one flow following a class profile.

    ``key`` overrides the randomly drawn 5-tuple (the same number of RNG
    draws is consumed either way, so keyed and unkeyed flows generated from
    the same stream position carry identical packet sequences).
    """
    rng = new_rng(rng)
    drawn = _random_key(rng)
    key = drawn if key is None else key
    n = int(rng.integers(profile.min_packets, profile.max_packets + 1))
    flow = Flow(key=key.canonical(), label=profile.label, class_name=profile.name)

    # Oblique length/IPD coupling: draw a latent z per flow and tilt both.
    z = rng.normal()
    phase = rng.uniform(0, 2 * np.pi)
    ts = start_ts
    for i in range(n):
        base = profile.sample_length_base(rng)
        if profile.len_period > 0:
            base += profile.len_amp * np.sin(2 * np.pi * i / profile.len_period + phase)
        base += profile.corr * 120.0 * z
        if profile.extra_len_jitter:
            base += rng.normal(0, profile.extra_len_jitter)
        length = int(np.clip(base, _MIN_LEN, MAX_PACKET_LENGTH))
        payload = _make_payload(profile, rng, min(length, _PAYLOAD_CAP))
        flow.append(Packet(ts=ts, length=length, key=key, payload=payload))
        ipd = rng.lognormal(profile.ipd_mu - profile.corr * 0.5 * z, profile.ipd_sigma)
        ts += float(ipd)
    return flow


@dataclass
class TrafficDataset:
    """A labelled collection of flows plus split bookkeeping."""

    name: str
    class_names: list[str]
    flows: list[Flow] = field(default_factory=list)

    @property
    def n_classes(self) -> int:
        return len(self.class_names)

    def split(self, train: float = 0.75, val: float = 0.10,
              rng: np.random.Generator | int | None = None
              ) -> tuple[list[Flow], list[Flow], list[Flow]]:
        """Split flows (by flow, per class) into train/val/test like the paper."""
        rng = new_rng(rng)
        train_set: list[Flow] = []
        val_set: list[Flow] = []
        test_set: list[Flow] = []
        for label in range(self.n_classes):
            members = [f for f in self.flows if f.label == label]
            order = rng.permutation(len(members))
            n_train = int(round(train * len(members)))
            n_val = int(round(val * len(members)))
            for pos, idx in enumerate(order):
                if pos < n_train:
                    train_set.append(members[idx])
                elif pos < n_train + n_val:
                    val_set.append(members[idx])
                else:
                    test_set.append(members[idx])
        return train_set, val_set, test_set
