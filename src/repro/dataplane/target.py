"""Hardware target descriptions."""

from __future__ import annotations

from dataclasses import dataclass

MBIT = 1_000_000


@dataclass(frozen=True)
class TargetConfig:
    """Resource budget of one programmable-switch pipeline.

    Numbers for Tofino 2 follow the paper's §2: 20 MAT stages, 10 Mb SRAM and
    0.5 Mb TCAM per stage, a 1024-bit action data bus, and a 4096-bit PHV.
    """

    name: str
    n_stages: int
    sram_bits_per_stage: int
    tcam_bits_per_stage: int
    action_bus_bits: int
    phv_bits: int
    line_rate_tbps: float

    @property
    def total_sram_bits(self) -> int:
        return self.n_stages * self.sram_bits_per_stage

    @property
    def total_tcam_bits(self) -> int:
        return self.n_stages * self.tcam_bits_per_stage


TOFINO2 = TargetConfig(
    name="tofino2",
    n_stages=20,
    sram_bits_per_stage=10 * MBIT,
    tcam_bits_per_stage=MBIT // 2,
    action_bus_bits=1024,
    phv_bits=4096,
    line_rate_tbps=12.8,
)

GENERIC_PISA = TargetConfig(
    name="generic-pisa",
    n_stages=12,
    sram_bits_per_stage=6 * MBIT,
    tcam_bits_per_stage=MBIT // 4,
    action_bus_bits=512,
    phv_bits=2048,
    line_rate_tbps=3.2,
)
