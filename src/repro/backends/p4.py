"""P4_16 code generation for compiled Pegasus models.

Each :class:`~repro.core.mapping.SegmentTable` becomes one MAT:

- fuzzy tables match their segment's fields *ternary* (the clustering tree's
  leaf boxes expanded to prefixes — §6.1's range-to-ternary conversion);
- exact tables match their single 8-bit field *exact*;
- every entry's action carries the precomputed result vector as action data
  and adds it into the layer's accumulator metadata (SumReduce), or writes
  it to the layer output fields (concat).

The module also emits the control-plane entry list that a driver would
install; tests interpret this list with reference TCAM semantics to prove it
agrees bit-for-bit with the compiled model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mapping import CompiledModel
from repro.dataplane.tables import ternary_entries_for_tree


@dataclass
class P4TableEntry:
    """One control-plane entry: match spec + action parameters."""

    table: str
    match_kind: str                    # "ternary" | "exact"
    key_values: tuple[int, ...]
    key_masks: tuple[int, ...]         # all-ones for exact entries
    action: str
    action_params: tuple[int, ...]
    priority: int = 0


@dataclass
class P4Program:
    """Generated source plus its control-plane entries."""

    name: str
    source: str
    entries: list[P4TableEntry] = field(default_factory=list)

    @property
    def n_tables(self) -> int:
        return self.source.count("table ")

    def entries_for(self, table: str) -> list[P4TableEntry]:
        return [e for e in self.entries if e.table == table]


def _field_width(bits: int) -> int:
    """Round to a P4-friendly container width."""
    for w in (8, 16, 32, 64):
        if bits <= w:
            return w
    return ((bits + 63) // 64) * 64


def _signed_cast(value: int, bits: int) -> int:
    """Two's-complement encode a possibly negative action parameter."""
    return value & ((1 << bits) - 1)


def emit_table_entries(model: CompiledModel, table_names: list[list[str]] | None = None
                       ) -> list[P4TableEntry]:
    """Control-plane entries for every segment table of the model."""
    entries: list[P4TableEntry] = []
    for layer_idx, layer in enumerate(model.layers):
        out_bits = layer.out_format.total_bits
        for t_idx, table in enumerate(layer.tables):
            name = (table_names[layer_idx][t_idx] if table_names
                    else f"tbl_l{layer_idx}_s{t_idx}")
            action = f"act_l{layer_idx}_s{t_idx}"
            if table.kind == "exact":
                full_mask = (1 << table.in_bits) - 1
                for entry_i in range(table.n_entries):
                    key = table.exact_lo + entry_i
                    params = tuple(_signed_cast(int(v), out_bits)
                                   for v in table.values_int[entry_i])
                    entries.append(P4TableEntry(
                        table=name, match_kind="exact",
                        key_values=(_signed_cast(key, table.in_bits),),
                        key_masks=(full_mask,), action=action,
                        action_params=params))
            else:
                for tern in ternary_entries_for_tree(table.tree, key_bits=table.in_bits,
                                                     signed=table.in_signed):
                    params = tuple(_signed_cast(int(v), out_bits)
                                   for v in table.values_int[tern.result])
                    entries.append(P4TableEntry(
                        table=name, match_kind="ternary",
                        key_values=tern.values, key_masks=tern.masks,
                        action=action, action_params=params, priority=1))
    return entries


def _emit_metadata(model: CompiledModel, lines: list[str]) -> None:
    in_w = _field_width(model.input_bits)
    lines.append("struct pegasus_metadata_t {")
    for i in range(model.input_dim):
        lines.append(f"    bit<{in_w}> in{i};")
    for layer_idx, layer in enumerate(model.layers):
        w = _field_width(layer.out_format.total_bits)
        for j in range(layer.out_dim):
            lines.append(f"    int<{w}> act{layer_idx}_{j};")
    lines.append("}")
    lines.append("")


def _emit_layer_tables(model: CompiledModel, layer_idx: int,
                       lines: list[str]) -> list[str]:
    layer = model.layers[layer_idx]
    out_w = _field_width(layer.out_format.total_bits)
    in_prefix = "in" if layer_idx == 0 else f"act{layer_idx - 1}_"
    names = []
    concat_base = 0
    for t_idx, table in enumerate(layer.tables):
        name = f"tbl_l{layer_idx}_s{t_idx}"
        action = f"act_l{layer_idx}_s{t_idx}"
        names.append(name)
        params = ", ".join(f"int<{out_w}> v{j}" for j in range(table.out_dim))
        lines.append(f"    action {action}({params}) {{")
        for j in range(table.out_dim):
            if layer.sum_reduce:
                # Saturating add into the layer accumulator (SumReduce).
                lines.append(f"        meta.act{layer_idx}_{j} = "
                             f"meta.act{layer_idx}_{j} |+| v{j};")
            else:
                lines.append(f"        meta.act{layer_idx}_{concat_base + j} = v{j};")
        lines.append("    }")
        start, stop = table.segment
        match_kind = "exact" if table.kind == "exact" else "ternary"
        lines.append(f"    table {name} {{")
        lines.append("        key = {")
        for d in range(start, stop):
            field_name = f"meta.{in_prefix}{d}" if layer_idx == 0 else f"meta.{in_prefix}{d}"
            lines.append(f"            {field_name}: {match_kind};")
        lines.append("        }")
        lines.append(f"        actions = {{ {action}; NoAction; }}")
        size = table.n_entries if table.kind == "exact" else \
            table.tree.tcam_entries(key_bits=table.in_bits, signed=table.in_signed)
        lines.append(f"        size = {max(size, 1)};")
        lines.append("        default_action = NoAction();")
        lines.append("    }")
        if not layer.sum_reduce:
            concat_base += table.out_dim
    return names


def _emit_decision(model: CompiledModel, lines: list[str]) -> None:
    """Argmax over the final layer's scores via a compare chain."""
    final = len(model.layers) - 1
    n = model.layers[final].out_dim
    lines.append("    action set_class(bit<8> cls) { meta_class = cls; }")
    lines.append("    apply {")
    for layer_idx, layer in enumerate(model.layers):
        for t_idx in range(len(layer.tables)):
            lines.append(f"        tbl_l{layer_idx}_s{t_idx}.apply();")
    lines.append("        // argmax over final scores")
    lines.append("        meta_class = 0;")
    lines.append(f"        int<{_field_width(model.out_format.total_bits)}> best = "
                 f"meta.act{final}_0;")
    for j in range(1, n):
        lines.append(f"        if (meta.act{final}_{j} > best) "
                     f"{{ best = meta.act{final}_{j}; meta_class = {j}; }}")
    lines.append("    }")


def emit_p4(model: CompiledModel, program_name: str | None = None) -> P4Program:
    """Generate a P4_16 ingress control implementing the compiled model."""
    name = program_name or model.name
    lines: list[str] = [
        "/* Auto-generated by the Pegasus compiler. Do not edit. */",
        "#include <core.p4>",
        "#include <tna.p4>",
        "",
    ]
    _emit_metadata(model, lines)
    lines.append(f"control PegasusIngress_{name.replace('-', '_')}(")
    lines.append("        inout pegasus_metadata_t meta) {")
    lines.append("    bit<8> meta_class;")
    table_names: list[list[str]] = []
    for layer_idx in range(len(model.layers)):
        table_names.append(_emit_layer_tables(model, layer_idx, lines))
    _emit_decision(model, lines)
    lines.append("}")
    source = "\n".join(lines)
    return P4Program(name=name, source=source,
                     entries=emit_table_entries(model, table_names))


def interpret_entries(program: P4Program, model: CompiledModel,
                      x_int: np.ndarray) -> np.ndarray:
    """Reference interpreter for the emitted entries (plays BMv2's role).

    Executes the control-plane entry list with TCAM/exact match semantics
    and saturating adds; used by tests to prove emit fidelity.
    """
    x = np.asarray(x_int, dtype=np.int64)
    if x.ndim == 1:
        x = x[None, :]
    current = x
    for layer_idx, layer in enumerate(model.layers):
        out_bits = layer.out_format.total_bits
        sign_bit = 1 << (out_bits - 1)
        full = 1 << out_bits
        outs = []
        for t_idx, table in enumerate(layer.tables):
            name = f"tbl_l{layer_idx}_s{t_idx}"
            entries = program.entries_for(name)
            seg = current[:, table.segment[0]:table.segment[1]]
            in_mask = (1 << table.in_bits) - 1
            bias = (1 << (table.in_bits - 1)) if (table.in_signed and
                                                  table.kind == "fuzzy") else 0
            result = np.zeros((len(x), table.out_dim), dtype=np.int64)
            for row in range(len(x)):
                key = tuple((int(v) + bias) & in_mask for v in seg[row])
                hit = None
                for e in entries:
                    if all((k & m) == (v & m) for k, v, m in
                           zip(key, e.key_values, e.key_masks)):
                        hit = e
                        break
                if hit is None:
                    raise LookupError(f"{name}: no entry for key {key}")
                vals = [(p - full) if p & sign_bit else p for p in hit.action_params]
                result[row] = vals
            outs.append(result)
        if layer.sum_reduce:
            acc = np.zeros((len(x), layer.out_dim), dtype=np.int64)
            for o in outs:
                acc += o
            current = np.clip(acc, layer.out_format.int_min, layer.out_format.int_max)
        else:
            current = np.concatenate(outs, axis=1)
    return current
