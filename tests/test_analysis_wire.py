"""The interprocedural layer and the wire-format rules.

Four layers:

1. **Call graph** — module functions, methods, ``self.``/constructor-typed
   resolution, and the real edges the wire rules depend on
   (``ParallelDispatcher.serve_trace -> shard_hash_columns``).
2. **Dtype dataflow** — the promotion lattice, per-function summaries on
   the shipped tree (``shard_hash_columns`` must summarize as
   ``array[uint64]``), and schema-seeded subscripts.
3. **Rules** — true-positive and clean-negative fixtures for
   ``columnar-schema``, ``hidden-copy-on-hot-path``, ``dtype-promotion``,
   via ``analyze_paths`` on temp trees carrying their own schema copy.
4. **CLI mutations** — the acceptance gates: dtype drift injected into a
   temp copy of ``parallel.py`` and a copying ``.astype`` injected into
   the zero-copy zone of ``dispatcher.py`` both fail ``--select`` runs
   naming rule + line; unmutated copies pass; the shipped tree is clean.
"""

from __future__ import annotations

import ast
import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis.callgraph import build_callgraph, constructor_locals
from repro.analysis.cli import main as cli_main
from repro.analysis.core import FileContext, analyze_paths, iter_python_files
from repro.analysis.dtypeflow import (DtypeFlow, join, promote_dtype,
                                      render_av, summarize)
from repro.analysis.wire import (WIRE_MODULES, ColumnarSchemaRule,
                                 DtypePromotionRule, HiddenCopyRule,
                                 load_schema, parse_schema_tree, zone_of)

REPO = Path(__file__).resolve().parent.parent
WIRE_RULES = [ColumnarSchemaRule, HiddenCopyRule, DtypePromotionRule]
SELECT = "columnar-schema,hidden-copy-on-hot-path,dtype-promotion"


def contexts_for(paths: list[Path]) -> list[FileContext]:
    out = []
    for path, display in iter_python_files(paths):
        source = path.read_text(encoding="utf-8")
        out.append(FileContext(path, display, source, ast.parse(source)))
    return out


@pytest.fixture(scope="module")
def repo_contexts():
    return contexts_for([REPO / "src"])


@pytest.fixture(scope="module")
def repo_graph(repo_contexts):
    return build_callgraph(repo_contexts)


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for rel, body in files.items():
        dest = root / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        dest.write_text(textwrap.dedent(body), encoding="utf-8")
    return root


MINI_SCHEMA = """
    WIRE_COLUMNS = ColumnSchema("wire", {
        "ts": ColumnSpec("float64", 1),
        "length": ColumnSpec("int64", 1),
        "payload": ColumnSpec("float64", 2, nullable=True),
    })
    DECISION_COLUMNS = ColumnSchema("decision", {
        "seq": ColumnSpec("int64", 1),
    })
"""


def wire_findings(root: Path) -> list:
    return analyze_paths([root], rules=[cls() for cls in WIRE_RULES],
                         report_unused=False)


# ---------------------------------------------------------------------------
# call graph
# ---------------------------------------------------------------------------

class TestCallGraph:
    def test_collects_functions_and_methods(self, repo_graph):
        assert "repro.serving.dispatcher.shard_hash_columns" \
            in repo_graph.functions
        info = repo_graph.functions["repro.net.traces.Trace.to_columns"]
        assert info.cls == "repro.net.traces.Trace"
        assert info.module == "repro.net.traces"

    def test_parallel_serve_trace_reaches_the_hash(self, repo_graph):
        edges = repo_graph.edges[
            "repro.serving.parallel.ParallelDispatcher.serve_trace"]
        assert "repro.serving.dispatcher.shard_hash_columns" in edges
        # The ring write/read seams resolve cross-module: the pump gathers
        # into ingress slots, the absorb scatters egress slots.
        pump_edges = repo_graph.edges[
            "repro.serving.parallel.ParallelDispatcher._pump"]
        assert "repro.serving.rings.write_ingress_chunk" in pump_edges
        absorb_edges = repo_graph.edges[
            "repro.serving.parallel.ParallelDispatcher._absorb"]
        assert "repro.serving.rings.scatter_decision_chunk" in absorb_edges

    def test_self_method_resolution(self, repo_graph):
        edges = repo_graph.edges[
            "repro.serving.parallel.ParallelDispatcher.serve_trace"]
        assert any(e.startswith(
            "repro.serving.parallel.ParallelDispatcher.") for e in edges)

    def test_constructor_locals(self, tmp_path):
        root = write_tree(tmp_path, {"repro/mod.py": """
            class Thing:
                def ping(self):
                    return 1

            def use():
                t = Thing()
                return t.ping()

            def reassigned():
                t = Thing()
                t = 3
                return t
        """})
        graph = build_callgraph(contexts_for([root]))
        use = graph.functions["repro.mod.use"]
        assert constructor_locals(graph, use) == {"t": "repro.mod.Thing"}
        assert "repro.mod.Thing.ping" in graph.edges["repro.mod.use"]
        re_info = graph.functions["repro.mod.reassigned"]
        assert constructor_locals(graph, re_info) == {}

    def test_import_alias_resolution(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/a.py": "def helper():\n    return 0\n",
            "repro/b.py": ("from repro.a import helper as h\n\n\n"
                           "def caller():\n    return h()\n"),
        })
        graph = build_callgraph(contexts_for([root]))
        assert graph.edges["repro.b.caller"] == {"repro.a.helper"}


# ---------------------------------------------------------------------------
# dtype dataflow
# ---------------------------------------------------------------------------

class TestPromotionLattice:
    @pytest.mark.parametrize("a,b,expected", [
        ("int64", "int64", "int64"),
        ("int32", "int64", "int64"),
        ("uint8", "uint64", "uint64"),
        ("int64", "uint64", "float64"),      # no signed superset
        ("int64", "float64", "float64"),
        ("float32", "float64", "float64"),
        ("int64", "object", "object"),
        ("bool", "int64", "int64"),
    ])
    def test_promote_dtype(self, a, b, expected):
        assert promote_dtype(a, b) == expected
        assert promote_dtype(b, a) == expected

    def test_join_arrays(self):
        assert join(("array", "int64"), ("array", "int64")) \
            == ("array", "int64")
        assert join(("array", "int64"), ("array", "float64")) \
            == ("array", None)

    def test_render(self):
        assert render_av(("array", "uint64")) == "array[uint64]"
        assert render_av(("top",)) == "top"


class TestDtypeFlowOnShippedTree:
    @pytest.fixture(scope="class")
    def flow(self, repo_contexts):
        flow = DtypeFlow(repo_contexts,
                         schema={"ts": "float64", "src_ip": "int64"})
        flow.compute(modules=WIRE_MODULES)
        return flow

    def test_hash_summary_is_uint64(self, flow):
        summary = summarize(flow, modules=WIRE_MODULES)
        fn = summary["functions"][
            "repro.serving.dispatcher.shard_hash_columns"]
        assert fn["returns"] == "array[uint64]"

    def test_summary_counts(self, flow):
        summary = summarize(flow, modules=WIRE_MODULES)
        assert summary["n_functions"] > 10
        assert all(info["module"] in WIRE_MODULES
                   for info in summary["functions"].values())

    def test_schema_seeded_subscript(self, tmp_path):
        root = write_tree(tmp_path, {"repro/mod.py": """
            def f(cols):
                return cols["ts"] + cols["ts"]
        """})
        contexts = contexts_for([root])
        flow = DtypeFlow(contexts, schema={"ts": "float64"})
        flow.compute()
        info = flow.graph.functions["repro.mod.f"]
        assert flow.analyze(info) == ("array", "float64")

    def test_interprocedural_summary_flows_through_call(self, tmp_path):
        root = write_tree(tmp_path, {"repro/mod.py": """
            import numpy as np


            def make(n):
                return np.zeros(n, dtype=np.uint64)


            def use(n):
                return make(n)
        """})
        flow = DtypeFlow(contexts_for([root]))
        flow.compute()
        assert flow.analyze(flow.graph.functions["repro.mod.use"]) \
            == ("array", "uint64")


# ---------------------------------------------------------------------------
# schema loading
# ---------------------------------------------------------------------------

class TestSchemaLoading:
    def test_shipped_schema_parses(self, repo_contexts):
        schema, origin = load_schema(repo_contexts)
        assert origin.endswith("schema.py")
        assert schema["ts"] == {"dtype": "float64", "rank": 1,
                                "nullable": False}
        assert schema["payload"] == {"dtype": "float64", "rank": 2,
                                     "nullable": True}
        assert schema["seq"]["dtype"] == "int64"

    def test_disk_fallback_resolves_relative_to_linted_tree(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/dataplane/schema.py": MINI_SCHEMA,
            "repro/net/traces.py": "def f():\n    return 1\n",
        })
        # Only lint traces.py: the schema must be found on disk.
        contexts = contexts_for([root / "repro" / "net"])
        schema, origin = load_schema(contexts)
        assert schema is not None and "length" in schema
        assert str(root) in origin

    def test_gutted_schema_returns_none(self):
        tree = ast.parse("WIRE_COLUMNS = None\n")
        assert parse_schema_tree(tree) is None

    def test_missing_schema_is_a_finding(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/net/traces.py": "def f():\n    return 1\n",
        })
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["columnar-schema"]
        assert "missing" in findings[0].msg


# ---------------------------------------------------------------------------
# rule fixtures (true positive + clean negative each)
# ---------------------------------------------------------------------------

def mini_tree(tmp_path: Path, traces_body: str,
              rel: str = "repro/net/traces.py") -> Path:
    return write_tree(tmp_path, {
        "repro/dataplane/schema.py": MINI_SCHEMA,
        rel: traces_body,
    })


class TestColumnarSchemaRule:
    def test_dict_literal_drift_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def to_columns(n):
                return {"ts": np.zeros(n, dtype=np.float32),
                        "length": np.zeros(n, dtype=np.int64)}
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["columnar-schema"]
        assert "'ts'" in findings[0].msg and "float32" in findings[0].msg

    def test_subscript_store_drift_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def fill(cols, n):
                cols["length"] = np.arange(n, dtype=np.int32)
                return cols
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["columnar-schema"]
        assert "'length'" in findings[0].msg

    def test_drift_through_a_helper_call_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def make_ts(n):
                return np.zeros(n, dtype=np.float32)


            def to_columns(n):
                return {"ts": make_ts(n)}
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["columnar-schema"]

    def test_declared_dtypes_clean(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def to_columns(n):
                cols = {"ts": np.zeros(n, dtype=np.float64)}
                cols["length"] = np.arange(n, dtype=np.int64)
                cols["payload"] = np.zeros((n, 4), dtype=np.float64)
                return cols
        """)
        assert wire_findings(root) == []

    def test_non_wire_module_not_checked(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/dataplane/schema.py": MINI_SCHEMA,
            "repro/eval/reporting.py": """
                import numpy as np


                def stats(n):
                    return {"ts": np.zeros(n, dtype=np.float32)}
            """,
        })
        assert wire_findings(root) == []

    def test_unknown_dtype_never_fires(self, tmp_path):
        root = mini_tree(tmp_path, """
            def to_columns(source):
                return {"ts": source.read()}
        """)
        assert wire_findings(root) == []


class TestHiddenCopyRule:
    def test_astype_without_copy_false_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            # reprolint: zone=zero-copy
            def hot(arr):
                return arr.astype(np.uint64)
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["hidden-copy-on-hot-path"]
        assert "astype" in findings[0].msg and "'hot'" in findings[0].msg

    def test_astype_with_copy_false_clean(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            # reprolint: zone=zero-copy
            def hot(arr):
                return arr.astype(np.uint64, copy=False)
        """)
        assert wire_findings(root) == []

    def test_tolist_concatenate_listcomp_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            # reprolint: zone=zero-copy
            def hot(parts, arr):
                a = np.concatenate(parts)
                b = arr.tolist()
                c = [x + 1 for x in b]
                return a, b, c
        """)
        rules = sorted(f.msg for f in wire_findings(root))
        assert len(rules) == 3
        assert any("concatenat" in m for m in rules)
        assert any("tolist" in m for m in rules)
        assert any("comprehension" in m for m in rules)

    def test_fancy_indexing_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            # reprolint: zone=zero-copy
            def hot(arr):
                member = np.flatnonzero(arr > 0)
                return arr[member]
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["hidden-copy-on-hot-path"]
        assert "fancy indexing" in findings[0].msg

    def test_pickle_in_zone_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import pickle


            # reprolint: zone=zero-copy
            def hot(chunk):
                return pickle.dumps(chunk)
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["hidden-copy-on-hot-path"]
        assert "re-pickles" in findings[0].msg

    def test_pickle_outside_zone_clean(self, tmp_path):
        root = mini_tree(tmp_path, """
            import pickle


            def cold(chunk):
                return pickle.dumps(chunk)
        """)
        assert wire_findings(root) == []

    def test_unzoned_function_not_checked(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def cold(parts):
                return np.concatenate(parts).tolist()
        """)
        assert wire_findings(root) == []

    def test_zones_apply_outside_wire_modules_too(self, tmp_path):
        root = write_tree(tmp_path, {
            "repro/dataplane/schema.py": MINI_SCHEMA,
            "repro/eval/hotloop.py": """
                # reprolint: zone=zero-copy
                def hot(arr):
                    return arr.tolist()
            """,
        })
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["hidden-copy-on-hot-path"]

    def test_zone_of_reads_def_line_and_line_above(self):
        src = ("# reprolint: zone=zero-copy\n"
               "def a():\n    return 1\n\n\n"
               "def b():  # reprolint: zone=zero-copy\n    return 2\n\n\n"
               "def c():\n    return 3\n")
        tree = ast.parse(src)
        zone_lines = {i: "zero-copy" for i, line in
                      enumerate(src.splitlines(), start=1)
                      if "zone=" in line}
        zones = {node.name: zone_of(node, zone_lines)
                 for node in tree.body}
        assert zones == {"a": "zero-copy", "b": "zero-copy", "c": None}


class TestDtypePromotionRule:
    def test_int_float_array_mix_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def mix(n):
                a = np.zeros(n, dtype=np.int64)
                b = np.zeros(n, dtype=np.float64)
                return a + b
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["dtype-promotion"]
        assert "int64 x float64" in findings[0].msg \
            or "float64 x int64" in findings[0].msg

    def test_int64_uint64_mix_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def mix(n):
                a = np.zeros(n, dtype=np.int64)
                b = np.zeros(n, dtype=np.uint64)
                return a * b
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["dtype-promotion"]
        assert "uint64" in findings[0].msg

    def test_float_scalar_on_int_column_flagged(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def scale(n):
                a = np.zeros(n, dtype=np.int64)
                return a * 1.5
        """)
        findings = wire_findings(root)
        assert [f.rule for f in findings] == ["dtype-promotion"]

    def test_same_family_arithmetic_clean(self, tmp_path):
        root = mini_tree(tmp_path, """
            import numpy as np


            def fine(n):
                a = np.zeros(n, dtype=np.uint64)
                b = np.full(n, 3, dtype=np.uint64)
                scaled = a * b + np.uint64(7)
                f = np.zeros(n, dtype=np.float64) * 2.0
                return scaled, f, a * 3
        """)
        assert wire_findings(root) == []

    def test_unknown_dtypes_never_fire(self, tmp_path):
        root = mini_tree(tmp_path, """
            def unknown(a, b):
                return a * b
        """)
        assert wire_findings(root) == []


# ---------------------------------------------------------------------------
# CLI: acceptance mutations, --explain, --dtype-summary-out
# ---------------------------------------------------------------------------

def copy_wire_tree(tmp_path: Path) -> Path:
    """A temp tree carrying the real schema + wire modules (and their
    import anchors), so project rules resolve everything locally."""
    for rel in ("src/repro/dataplane/schema.py",
                "src/repro/serving/dispatcher.py",
                "src/repro/serving/parallel.py",
                "src/repro/serving/rings.py",
                "src/repro/net/traces.py"):
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(REPO / rel, dest)
    return tmp_path


class TestCliMutations:
    def test_dtype_drift_in_parallel_fails_the_gate(self, tmp_path, capsys):
        root = copy_wire_tree(tmp_path)
        target = root / "src/repro/serving/parallel.py"
        text = target.read_text(encoding="utf-8")
        anchor = 'dtype=decision_dtype("seq")'
        assert anchor in text
        mutated = text.replace(anchor, "dtype=np.float64", 1)
        target.write_text(mutated, encoding="utf-8")

        rc = cli_main(["--select", SELECT, str(root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[columnar-schema]" in out and "'seq'" in out
        # The finding anchors at the start of the constructed value (the
        # dict entry's np.zeros call); the mutated kwarg may sit on a
        # continuation line of that same expression.
        import re
        reported = int(re.search(r"parallel\.py:(\d+):", out).group(1))
        mutated_line = next(i for i, text_line
                            in enumerate(mutated.splitlines(), start=1)
                            if "dtype=np.float64" in text_line)
        span = mutated.splitlines()[reported - 1:mutated_line]
        assert reported <= mutated_line and '"seq"' in "".join(span)

    def test_astype_in_zero_copy_zone_fails_the_gate(self, tmp_path, capsys):
        root = copy_wire_tree(tmp_path)
        target = root / "src/repro/serving/dispatcher.py"
        text = target.read_text(encoding="utf-8")
        anchor = "            h = h * prime\n"
        assert text.count(anchor) == 1
        injected = anchor + "    h = h.astype(np.uint64)\n"
        mutated = text.replace(anchor, injected, 1)
        target.write_text(mutated, encoding="utf-8")

        rc = cli_main(["--select", SELECT, str(root)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[hidden-copy-on-hot-path]" in out
        line = mutated.splitlines().index("    h = h.astype(np.uint64)") + 1
        assert f":{line}:" in out
        assert "shard_hash_columns" in out

    def test_unmutated_copies_pass_the_gate(self, tmp_path, capsys):
        root = copy_wire_tree(tmp_path)
        rc = cli_main(["--select", SELECT, str(root)])
        assert rc == 0

    def test_shipped_tree_is_clean_under_wire_rules(self, capsys):
        rc = cli_main(["--select", SELECT, str(REPO / "src"),
                       str(REPO / "scripts"), str(REPO / "benchmarks")])
        out = capsys.readouterr().out
        assert rc == 0, out

    def test_select_subset_skips_suppression_staleness(self, tmp_path,
                                                       capsys):
        # A suppression for an unselected rule is unjudgeable: a subset
        # run must not call it stale.
        dest = tmp_path / "mod.py"
        dest.write_text("import random\n\n\n"
                        "def f(xs):\n"
                        "    random.shuffle(xs)  "
                        "# reprolint: disable=rng-discipline\n",
                        encoding="utf-8")
        assert cli_main(["--select", SELECT, str(dest)]) == 0
        assert cli_main([str(dest)]) == 0      # full run: suppression earns


class TestCliSurfaces:
    def test_explain_known_rule(self, capsys):
        assert cli_main(["--explain", "columnar-schema"]) == 0
        out = capsys.readouterr().out
        assert "columnar-schema" in out
        assert "example:" in out

    def test_explain_every_default_rule(self, capsys):
        from repro.analysis.rules import default_rules
        for rule in default_rules():
            assert cli_main(["--explain", rule.name]) == 0
            assert rule.name in capsys.readouterr().out

    def test_explain_unknown_rule_is_usage_error(self):
        with pytest.raises(SystemExit):
            cli_main(["--explain", "no-such-rule"])

    def test_dtype_summary_out(self, tmp_path, capsys):
        out_file = tmp_path / "summary.json"
        rc = cli_main([str(REPO / "src"),
                       "--select", SELECT,
                       "--dtype-summary-out", str(out_file)])
        assert rc == 0
        report = json.loads(out_file.read_text(encoding="utf-8"))
        fn = report["functions"][
            "repro.serving.dispatcher.shard_hash_columns"]
        assert fn["returns"] == "array[uint64]"
        assert report["schema_columns"]["ts"]["dtype"] == "float64"
        assert report["n_functions"] == len(report["functions"])
