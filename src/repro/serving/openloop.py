"""Open-loop serving front-end: paced arrivals, admission control, SLOs.

Everything else in the serving stack is *closed-loop*: the replay hands the
next packet over exactly when the engine is ready for it, so throughput is
the only axis a report can have. Real dataplanes are **open-loop** — packets
arrive on the wire whether or not the classifier is keeping up — and the
quantities that matter under load are decision *latency* (p50/p99/p999
sojourn through the ingress queue) and *what got shed* when the queue
backed up.

This module is that front-end, three pieces:

- :class:`OpenLoopPump` — a thread-pumped producer/consumer pair. The
  producer replays precomputed wall-clock arrival offsets (scenario trace
  timestamps scaled by ``EngineConfig.time_scale``; see
  ``ScenarioTrace.arrival_offsets`` for the gap-clipping pacing hook) into a
  FIFO ingress queue, consulting the admission policy per packet; the
  consumer drains bounded chunks through the engine's driver and stamps
  per-packet completion times. With ``time_scale=0`` the pump degenerates to
  a synchronous, deterministic as-fast-as-possible replay (no threads, no
  sleeps) — the mode the bit-identity tests pin against closed-loop replay.

- :class:`AdmissionPolicy` and the built-ins — ``none`` (admit everything,
  unbounded queue: the measurement baseline), ``tail-drop`` (shed at a full
  ingress queue — all the protection a plain bounded buffer gives you), and
  ``aimd`` (an SFC-style *source throttle*: a credit rate multiplicatively
  cut on queue-pressure/latency signals and additively recovered, so load is
  shed at the source **before** admitted packets accumulate a queue worth of
  sojourn). Policies are pluggable via the engine's
  ``register_admission_policy`` registry. Every policy reports exactly which
  packet indices it shed; :meth:`AdmissionPolicy.reported_shed` is the
  (identity, unless a test installs a liar) hook the differential harness
  uses to prove the *claimed* admitted subset replays bit-identically
  against the scalar reference — a policy cannot silently drop or invent
  decisions.

- :class:`OpenLoopReport` — layered on the engine's ``ServingReport``:
  overall and per-phase p50/p99/p999 sojourn latency, shed/admitted counts,
  offered vs admitted pps, and a downsampled queue-depth timeline.

The module is deliberately engine-agnostic (the engine hands the pump a
``serve_chunk(indices) -> decisions`` closure), so it imports nothing from
:mod:`repro.serving.engine` and stays cycle-free.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

# Producer sleeps shorter than this are skipped (timer granularity), and the
# consumer polls an empty queue at this interval.
_MIN_SLEEP = 1e-4
# Points kept in the downsampled queue-depth timeline.
_TIMELINE_POINTS = 240


# ---------------------------------------------------------------------------
# Admission policies
# ---------------------------------------------------------------------------

class AdmissionPolicy:
    """Decides, per arriving packet, whether it enters the ingress queue.

    ``admit(seq, depth, now)`` is called by the producer for every arrival
    (``depth`` the current queue depth, ``now`` seconds since the replay
    started); ``observe(served, sojourn, depth, now)`` is the feedback hook
    the consumer fires after each drained chunk (``sojourn`` the oldest
    drained packet's queue time — the in-flight latency signal). Both run
    under the pump's lock, so policies need no locking of their own.

    ``reported_shed(shed)`` returns the shed indices the *report* will
    claim. Honest policies return the input unchanged; the differential
    harness installs a lying variant to prove the open-loop verifier
    catches any mismatch between the claim and the served decision stream.
    """

    name = "none"

    def admit(self, seq: int, depth: int, now: float) -> bool:
        return True

    def observe(self, served: int, sojourn: float, depth: int,
                now: float) -> None:
        pass

    def reported_shed(self, shed: list) -> list:
        return shed


class NoAdmission(AdmissionPolicy):
    """Admit everything; the ingress queue is unbounded.

    The pure open-loop measurement baseline: under overload the queue (and
    the sojourn percentiles) grow without bound, which is exactly the
    behavior the report should show when nothing protects the engine.
    """

    name = "none"


class TailDropAdmission(AdmissionPolicy):
    """Shed arrivals while the ingress queue is full.

    All the protection a plain bounded buffer provides — and the reference
    point the AIMD throttle is gated against: every packet tail-drop *does*
    admit under overload has a full queue in front of it, so its sojourn is
    ~``queue_capacity / service_rate`` regardless of how fast the engine
    drains.
    """

    name = "tail-drop"

    def __init__(self, queue_capacity: int):
        self.queue_capacity = int(queue_capacity)

    def admit(self, seq: int, depth: int, now: float) -> bool:
        return depth < self.queue_capacity


class AimdAdmission(AdmissionPolicy):
    """SFC-style source throttle: AIMD on the admission *rate*.

    Each arrival earns ``rate`` credits and is admitted when a full credit
    is available, so ``rate`` is the admitted fraction of offered load.
    Feedback signals cut it multiplicatively (x ``decrease``) and quiet
    periods recover it additively (+ ``increase`` per drained chunk):

    - **latency**: a drained chunk whose oldest packet waited longer than
      ``backoff_fraction * target_s`` cuts the rate — throttling at the
      source while the queue is still a fraction of a target deep, which is
      what keeps the p99 *under* the target rather than at it;
    - **queued delay**: each ``observe`` also refreshes an EWMA estimate of
      the consumer's service rate, and an arrival that finds more than
      ``backoff_fraction * target_s`` worth of *estimated drain time*
      already queued is shed and cuts the rate. This is the burst defense
      the latency signal alone cannot be: a microburst fills the queue
      faster than any drained-packet sojourn can report it, so the bound
      on queued work — not the feedback loop — is what caps the sojourn of
      whatever the burst got admitted;
    - **queue pressure**: an arrival that finds the queue at hard capacity
      is shed and cuts the rate (the backstop of last resort).

    Cuts are rate-limited to one per ``cooldown_s`` (roughly one drain
    epoch), the classic once-per-RTT AIMD discipline — without it a single
    burst would multiplicatively collapse the rate to the floor.
    """

    name = "aimd"

    def __init__(self, queue_capacity: int, target_s: float, *,
                 backoff_fraction: float = 0.5, increase: float = 0.05,
                 decrease: float = 0.5, min_rate: float = 1 / 64,
                 cooldown_s: float = 0.005, service_ewma: float = 0.2):
        self.queue_capacity = int(queue_capacity)
        self.target_s = float(target_s)
        self.backoff_fraction = float(backoff_fraction)
        self.increase = float(increase)
        self.decrease = float(decrease)
        self.min_rate = float(min_rate)
        self.cooldown_s = float(cooldown_s)
        self.service_ewma = float(service_ewma)
        self.rate = 1.0
        self.service_est = 0.0        # consumer pps, EWMA (0: no sample yet)
        self._credit = 0.0
        self._last_cut = -float("inf")
        self._last_obs = None

    def _cut(self, now: float) -> None:
        if now - self._last_cut >= self.cooldown_s:
            self.rate = max(self.min_rate, self.rate * self.decrease)
            self._last_cut = now

    def _depth_bound(self) -> float:
        """Max queued packets before estimated drain time busts the SLO."""
        bound = float(self.queue_capacity)
        if self.service_est > 0.0:
            bound = min(bound, max(
                1.0,
                self.backoff_fraction * self.target_s * self.service_est))
        return bound

    def admit(self, seq: int, depth: int, now: float) -> bool:
        if depth >= self._depth_bound():
            self._cut(now)
            return False
        self._credit += self.rate
        if self._credit >= 1.0:
            self._credit -= 1.0
            return True
        return False

    def observe(self, served: int, sojourn: float, depth: int,
                now: float) -> None:
        if self._last_obs is not None and now > self._last_obs:
            sample = served / (now - self._last_obs)
            self.service_est = (sample if self.service_est == 0.0 else
                                (1.0 - self.service_ewma) * self.service_est
                                + self.service_ewma * sample)
        self._last_obs = now
        if sojourn > self.backoff_fraction * self.target_s:
            self._cut(now)
        elif sojourn < 0.5 * self.backoff_fraction * self.target_s:
            self.rate = min(1.0, self.rate + self.increase)


# ---------------------------------------------------------------------------
# Pump
# ---------------------------------------------------------------------------

@dataclass
class PumpResult:
    """Raw per-packet telemetry of one open-loop replay."""

    n: int                        # offered packets
    admitted_flags: np.ndarray    # bool[n]: actually entered the queue
    arrival: np.ndarray           # float[n] perf_counter at admit (nan: shed)
    complete: np.ndarray          # float[n] perf_counter at decision (nan)
    depth_at: np.ndarray          # int[n]: queue depth seen on arrival
    decisions: list               # served decisions, global seq, FIFO order
    wall_seconds: float
    shed_seq: np.ndarray          # indices the policy *claims* it shed
    admitted_seq: np.ndarray      # complement: the claimed admitted subset
    actual_shed: np.ndarray       # indices actually shed (ground truth)

    @property
    def served(self) -> int:
        return int(self.admitted_flags.sum())

    def latencies(self) -> np.ndarray:
        """Sojourn seconds (arrival -> decision) of the served packets."""
        lat = self.complete - self.arrival
        return lat[np.isfinite(lat)]


class OpenLoopPump:
    """Paced producer -> bounded FIFO -> chunk-draining consumer.

    ``offsets`` are per-packet wall-clock arrival offsets (None replays
    synchronously, as fast as possible, with no pump thread — fully
    deterministic). ``serve_chunk(indices)`` must return the decisions of
    the given global packet indices with ``seq`` already remapped to global
    positions; the engine supplies it. ``drain_max`` bounds how many queued
    packets one consumer iteration serves — it is the feedback granularity
    of the admission policies (one ``observe`` per drained chunk).
    """

    def __init__(self, n: int, offsets: np.ndarray | None, serve_chunk,
                 policy: AdmissionPolicy, *, drain_max: int = 256):
        if drain_max < 1:
            raise ValueError(f"drain_max must be >= 1, got {drain_max}")
        self.n = int(n)
        self.offsets = offsets
        self.serve_chunk = serve_chunk
        self.policy = policy
        self.drain_max = int(drain_max)

    def run(self) -> PumpResult:
        n = self.n
        admitted_flags = np.zeros(n, dtype=bool)
        arrival = np.full(n, np.nan)
        complete = np.full(n, np.nan)
        depth_at = np.zeros(n, dtype=np.int64)
        shed: list[int] = []
        decisions: list = []
        queue: deque[int] = deque()
        lock: threading.Lock | None = None    # set only in the paced branch
        t0 = time.perf_counter()

        def drain(chunk: list[int], depth_after: int) -> None:
            idx = np.asarray(chunk, dtype=np.int64)
            decisions.extend(self.serve_chunk(idx))
            now = time.perf_counter()
            complete[idx] = now
            # arrival[i] is written by the producer strictly before it
            # publishes i through the lock-guarded queue; dequeuing under
            # the same lock establishes the happens-before, so this read
            # needs no further guard.
            sojourn = now - arrival[chunk[0]]   # reprolint: disable=thread-shared-state
            if lock is None:
                self.policy.observe(len(chunk), sojourn, depth_after,
                                    now - t0)
            else:
                # Policies mutate shared state from both threads; observe
                # takes the same lock admit runs under.
                with lock:
                    self.policy.observe(len(chunk), sojourn, depth_after,
                                        now - t0)

        if self.offsets is None:
            # Synchronous as-fast-as-possible replay: single-threaded, no
            # sleeps, bit-reproducible (the determinism tests' mode).
            for i in range(n):
                depth = len(queue)
                depth_at[i] = depth
                if self.policy.admit(i, depth, time.perf_counter() - t0):
                    admitted_flags[i] = True
                    arrival[i] = time.perf_counter()
                    queue.append(i)
                    if len(queue) >= self.drain_max:
                        chunk = [queue.popleft()
                                 for _ in range(self.drain_max)]
                        drain(chunk, len(queue))
                else:
                    shed.append(i)
            while queue:
                chunk = [queue.popleft()
                         for _ in range(min(len(queue), self.drain_max))]
                drain(chunk, len(queue))
        else:
            offsets = np.asarray(self.offsets, dtype=np.float64)
            lock = threading.Lock()
            done = threading.Event()

            def produce():
                try:
                    for i in range(n):
                        delay = offsets[i] - (time.perf_counter() - t0)
                        if delay > _MIN_SLEEP:
                            time.sleep(delay)
                        with lock:
                            depth = len(queue)
                            depth_at[i] = depth
                            if self.policy.admit(i, depth,
                                                 time.perf_counter() - t0):
                                admitted_flags[i] = True
                                arrival[i] = time.perf_counter()
                                queue.append(i)
                            else:
                                shed.append(i)
                finally:
                    done.set()

            producer = threading.Thread(target=produce, daemon=True,
                                        name="openloop-pump")
            producer.start()
            while True:
                with lock:
                    take = min(len(queue), self.drain_max)
                    chunk = [queue.popleft() for _ in range(take)]
                    depth_after = len(queue)
                if chunk:
                    drain(chunk, depth_after)
                elif done.is_set():
                    with lock:
                        empty = not queue
                    if empty:
                        break
                else:
                    time.sleep(_MIN_SLEEP)
            producer.join()

        wall = time.perf_counter() - t0
        reported = sorted(int(i) for i in self.policy.reported_shed(shed))
        shed_seq = np.asarray(reported, dtype=np.int64)
        mask = np.ones(n, dtype=bool)
        mask[shed_seq] = False
        return PumpResult(
            n=n, admitted_flags=admitted_flags, arrival=arrival,
            complete=complete, depth_at=depth_at, decisions=decisions,
            wall_seconds=wall, shed_seq=shed_seq,
            admitted_seq=np.nonzero(mask)[0],
            actual_shed=np.asarray(sorted(shed), dtype=np.int64))


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LatencySummary:
    """Sojourn-latency percentiles of one packet population, in ms."""

    n: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float
    max_ms: float

    @classmethod
    def from_seconds(cls, seconds: np.ndarray) -> "LatencySummary":
        s = np.asarray(seconds, dtype=np.float64)
        s = s[np.isfinite(s)]
        if s.size == 0:
            return cls(n=0, p50_ms=0.0, p99_ms=0.0, p999_ms=0.0,
                       mean_ms=0.0, max_ms=0.0)
        p50, p99, p999 = np.percentile(s, (50.0, 99.0, 99.9)) * 1e3
        return cls(n=int(s.size), p50_ms=float(p50), p99_ms=float(p99),
                   p999_ms=float(p999), mean_ms=float(s.mean() * 1e3),
                   max_ms=float(s.max() * 1e3))

    def summary(self) -> dict:
        return {"n": self.n, "p50_ms": self.p50_ms, "p99_ms": self.p99_ms,
                "p999_ms": self.p999_ms, "mean_ms": self.mean_ms,
                "max_ms": self.max_ms}


@dataclass(frozen=True)
class OpenLoopPhaseReport:
    """One scenario phase's slice of an open-loop replay."""

    name: str
    offered: int
    admitted: int
    shed: int
    latency: LatencySummary
    queue_depth_max: int
    queue_depth_mean: float

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def summary(self) -> dict:
        return {"offered": self.offered, "admitted": self.admitted,
                "shed": self.shed, "shed_fraction": self.shed_fraction,
                "queue_depth_max": self.queue_depth_max,
                "queue_depth_mean": self.queue_depth_mean,
                "latency": self.latency.summary()}


@dataclass
class OpenLoopReport:
    """One open-loop serve: ``ServingReport`` + the latency/shedding layer.

    ``serving`` is the engine's ordinary report over the *served* packets
    (decisions carry global trace positions); everything else is the
    open-loop layer — counts, sojourn percentiles, per-phase splits, and
    the claimed shed/admitted index sets the differential harness verifies.
    """

    scenario: str
    seed: int | None
    admission: str
    time_scale: float
    p99_target_ms: float | None
    serving: object               # ServingReport (untyped: no engine import)
    config: object                # the EngineConfig this was served under
    offered: int
    admitted: int
    shed: int
    admitted_seq: np.ndarray      # claimed admitted packet indices
    shed_seq: np.ndarray          # claimed shed packet indices
    latency: LatencySummary
    queue_depth_timeline: list    # [(trace_ts, depth)], downsampled
    wall_seconds: float
    phases: list = field(default_factory=list)
    # ^ [(PhaseSpan, OpenLoopPhaseReport)]

    @property
    def offered_pps(self) -> float:
        return self.offered / max(self.wall_seconds, 1e-9)

    @property
    def admitted_pps(self) -> float:
        return self.admitted / max(self.wall_seconds, 1e-9)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def meets_target(self) -> bool | None:
        """p99 sojourn within the configured target (None: no target)."""
        if self.p99_target_ms is None:
            return None
        return self.latency.p99_ms <= self.p99_target_ms

    def phase(self, name: str) -> OpenLoopPhaseReport:
        for span, report in self.phases:
            if span.name == name:
                return report
        raise KeyError(f"open-loop report for {self.scenario!r} has no phase "
                       f"{name!r}; phases: {[s.name for s, _ in self.phases]}")

    def summary(self) -> dict:
        return {
            "scenario": self.scenario, "seed": self.seed,
            "admission": self.admission, "time_scale": self.time_scale,
            "p99_target_ms": self.p99_target_ms,
            "offered": self.offered, "admitted": self.admitted,
            "shed": self.shed, "shed_fraction": self.shed_fraction,
            "wall_seconds": self.wall_seconds,
            "offered_pps": self.offered_pps,
            "admitted_pps": self.admitted_pps,
            "meets_target": self.meets_target,
            "latency": self.latency.summary(),
            "phases": {span.name: report.summary()
                       for span, report in self.phases},
        }


def build_open_loop_report(result: PumpResult, *, serving, config, ts,
                           phases, scenario: str, seed,
                           admission: str, time_scale: float,
                           p99_target_ms: float | None) -> OpenLoopReport:
    """Assemble the layered report from pump telemetry + the serving report.

    ``ts`` is the per-packet trace-timestamp column (timeline x-axis) and
    ``phases`` the workload's ``PhaseSpan`` list (may be empty for plain
    traces: the per-phase split is then omitted).
    """
    lat_s = result.complete - result.arrival
    phase_reports = []
    for span in phases or ():
        sl = slice(span.start, span.stop)
        phase_lat = lat_s[sl]
        admitted = int(result.admitted_flags[sl].sum())
        depth = result.depth_at[sl]
        phase_reports.append((span, OpenLoopPhaseReport(
            name=span.name, offered=span.n_packets, admitted=admitted,
            shed=span.n_packets - admitted,
            latency=LatencySummary.from_seconds(phase_lat),
            queue_depth_max=int(depth.max()) if depth.size else 0,
            queue_depth_mean=float(depth.mean()) if depth.size else 0.0)))
    step = max(1, result.n // _TIMELINE_POINTS)
    timeline = [(float(ts[i]), int(result.depth_at[i]))
                for i in range(0, result.n, step)]
    return OpenLoopReport(
        scenario=scenario, seed=seed, admission=admission,
        time_scale=time_scale, p99_target_ms=p99_target_ms,
        serving=serving, config=config,
        offered=result.n, admitted=result.served,
        shed=result.n - result.served,
        admitted_seq=result.admitted_seq, shed_seq=result.shed_seq,
        latency=LatencySummary.from_seconds(result.latencies()),
        queue_depth_timeline=timeline, wall_seconds=result.wall_seconds,
        phases=phase_reports)


__all__ = [
    "AdmissionPolicy",
    "AimdAdmission",
    "LatencySummary",
    "NoAdmission",
    "OpenLoopPhaseReport",
    "OpenLoopPump",
    "OpenLoopReport",
    "PumpResult",
    "TailDropAdmission",
    "build_open_loop_report",
]
