"""Binary trace serialization (a minimal pcap stand-in).

Format ``SPCAP1``: a magic header, then one record per packet:
``<ts:f64><length:u16><payload_len:u16><5-tuple:u32 u32 u16 u16 u8><payload bytes>``
little-endian. Good enough to persist synthetic datasets and replay them
through the switch runtime deterministically.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.net.packet import Packet, FlowKey

_MAGIC = b"SPCAP1\x00\x00"
_REC_HEADER = struct.Struct("<dHHIIHHB")


@dataclass
class Trace:
    """A time-ordered packet sequence, as seen on the wire."""

    packets: list[Packet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.packets)

    def sort(self) -> "Trace":
        self.packets.sort(key=lambda p: p.ts)
        return self

    @staticmethod
    def from_flows(flows: list) -> "Trace":
        """Interleave the packets of many flows by timestamp."""
        packets = [p for f in flows for p in f.packets]
        return Trace(packets).sort()

    # -- columnar views for the batched runtimes ----------------------------

    def canonical_keys(self) -> list[FlowKey]:
        """Canonical 5-tuple of every packet, in trace order."""
        return [p.key.canonical() for p in self.packets]

    def packet_columns(self) -> dict[str, np.ndarray]:
        """Per-packet scalar columns (``ts`` float64, ``length`` int64).

        One pass over the packet objects; everything downstream of this
        (bucketing, flow-state gathers, model inference) runs on whole
        NumPy batches instead of per-packet Python.
        """
        return {
            "ts": np.asarray([p.ts for p in self.packets], dtype=np.float64),
            "length": np.asarray([p.length for p in self.packets], dtype=np.int64),
        }

    def payload_matrix(self, n_bytes: int, start: int = 0,
                       stop: int | None = None) -> np.ndarray:
        """First ``n_bytes`` payload bytes of packets [start:stop]: (N, n_bytes) f64.

        Zero-padded, matching the per-packet raw view the two-stage runtime
        extracts fuzzy indexes from. The range arguments let batched replay
        materialize one batch at a time instead of the whole trace.
        """
        packets = self.packets[start:stop]
        out = np.zeros((len(packets), n_bytes), dtype=np.float64)
        for i, pkt in enumerate(packets):
            take = min(pkt.payload_len, n_bytes)
            if take:
                out[i, :take] = pkt.payload[:take]
        return out


def write_trace(trace: Trace, path: str | Path) -> None:
    """Serialize a trace to the SPCAP1 binary format."""
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(_MAGIC)
        for pkt in trace.packets:
            header = _REC_HEADER.pack(
                pkt.ts, pkt.length, pkt.payload_len,
                pkt.key.src_ip, pkt.key.dst_ip,
                pkt.key.src_port, pkt.key.dst_port, pkt.key.proto,
            )
            fh.write(header)
            fh.write(pkt.payload.tobytes())


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    data = path.read_bytes()
    if not data.startswith(_MAGIC):
        raise TraceFormatError(f"{path} is not an SPCAP1 trace")
    offset = len(_MAGIC)
    packets: list[Packet] = []
    while offset < len(data):
        if offset + _REC_HEADER.size > len(data):
            raise TraceFormatError(f"{path}: truncated record header at byte {offset}")
        (ts, length, payload_len, src_ip, dst_ip,
         src_port, dst_port, proto) = _REC_HEADER.unpack_from(data, offset)
        offset += _REC_HEADER.size
        if offset + payload_len > len(data):
            raise TraceFormatError(f"{path}: truncated payload at byte {offset}")
        payload = np.frombuffer(data[offset:offset + payload_len], dtype=np.uint8).copy()
        offset += payload_len
        key = FlowKey(src_ip, dst_ip, src_port, dst_port, proto)
        packets.append(Packet(ts=ts, length=length, key=key, payload=payload))
    return Trace(packets)
