"""Batch scheduling: cut a time-ordered trace into flushable batches.

A line-rate serving layer cannot wait forever to fill a batch: a batch is
flushed either when it reaches ``batch_size`` packets (*batch-full*) or when
the oldest buffered packet has waited ``timeout`` seconds of trace time
(*timeout*) — the same full-or-timeout discipline batching NIC drivers and
inference servers use. :class:`BatchScheduler` computes those flush points
for an offline trace replay as half-open index spans.

The scheduler itself is **pure configuration**: every call to :meth:`spans`
or :meth:`iter_spans` creates a fresh :class:`SpanStream` that owns that
run's :class:`FlushStats` and (in adaptive mode) the evolving batch size, so
one scheduler instance can be shared across dispatcher shards and worker
processes without races or misattributed flush counts.

Usage::

    from repro.serving import BatchScheduler

    sched = BatchScheduler(batch_size=256, timeout=0.050)
    ts = trace.packet_columns()["ts"]
    spans, stats = sched.spans(ts)                # [(0, 256), (256, 311), ...]
    decisions = runtime.process_trace(trace, spans=spans)

With ``latency_target`` set (wall-clock seconds per batch), consume spans
lazily through :meth:`iter_spans`: the stream measures how long the consumer
spent servicing each span and adapts the batch size AIMD-style — halving it
when a batch overruns the target, doubling it (up to ``max_batch_size``) when
there is at least 2x headroom. Flush points and batch sizes never change
*what* is decided — per-flow state evolves the same way no matter where the
trace is cut (asserted by the serving tests) — they only trade batch
amortization against decision latency.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass
class FlushStats:
    """Why batches were flushed (and resized) during one span stream."""

    full: int = 0        # reached the current batch size
    timeout: int = 0     # oldest buffered packet waited `timeout` trace-seconds
    tail: int = 0        # end of trace drained a partial batch
    grown: int = 0       # adaptive sizing doubled the batch (latency headroom)
    shrunk: int = 0      # adaptive sizing halved the batch (target overrun)

    @property
    def total(self) -> int:
        return self.full + self.timeout + self.tail

    def merge(self, other: "FlushStats") -> None:
        """Accumulate another run's counts (e.g. across dispatcher shards)."""
        self.full += other.full
        self.timeout += other.timeout
        self.tail += other.tail
        self.grown += other.grown
        self.shrunk += other.shrunk


@dataclass(frozen=True)
class BatchScheduler:
    """Flush-on-full-or-timeout batch boundaries for trace replay.

    ``timeout`` is in *trace time* (seconds between packet timestamps), not
    wall-clock time; ``None`` disables it so only batch-full and end-of-trace
    flush. ``latency_target`` is in *wall-clock* seconds per serviced batch;
    when set, lazily consumed streams adapt their batch size within
    ``[min_batch_size, max_batch_size]`` (the latter defaults to
    ``4 * batch_size``). The instance is frozen — all mutable per-run state
    lives in the :class:`SpanStream` each call returns.
    """

    batch_size: int = 256
    timeout: float | None = None
    latency_target: float | None = None
    min_batch_size: int = 1
    max_batch_size: int | None = None

    def __post_init__(self):
        if self.batch_size < 1:
            raise ConfigError("batch_size", self.batch_size, allowed=">= 1")
        if self.timeout is not None and self.timeout < 0:
            raise ConfigError("timeout", self.timeout, allowed=">= 0 or None")
        if self.latency_target is not None and self.latency_target < 0:
            raise ConfigError("latency_target", self.latency_target,
                              allowed=">= 0 or None")
        if self.min_batch_size < 1:
            raise ConfigError("min_batch_size", self.min_batch_size,
                              allowed=">= 1")
        if self.min_batch_size > self.batch_size:
            raise ConfigError(
                "min_batch_size", self.min_batch_size,
                allowed=f"<= batch_size ({self.batch_size})",
                reason="an adaptive stream could otherwise start outside "
                       "its own clamp window")
        if self.max_batch_size is not None and self.max_batch_size < self.batch_size:
            raise ConfigError("max_batch_size", self.max_batch_size,
                              allowed=f">= batch_size ({self.batch_size})")

    @property
    def adaptive(self) -> bool:
        return self.latency_target is not None

    @property
    def effective_max_batch(self) -> int:
        """Upper bound for adaptive growth (``4 * batch_size`` by default)."""
        return self.max_batch_size if self.max_batch_size is not None \
            else 4 * self.batch_size

    def spans(self, ts: np.ndarray) -> tuple[list[tuple[int, int]], FlushStats]:
        """All (start, stop) spans covering the trace, plus their stats.

        Eager — the whole trace is cut up front, so adaptive sizing sees no
        service time and only grows; use :meth:`iter_spans` when servicing
        latency should drive the batch size.
        """
        stream = self.iter_spans(ts)
        return list(stream), stream.stats

    def iter_spans(self, ts: np.ndarray) -> "SpanStream":
        """A lazy one-shot stream of spans carrying its own stats."""
        return SpanStream(self, ts)


class SpanStream:
    """One-shot iterator of half-open (start, stop) batch spans.

    Owns the run's :class:`FlushStats` (read ``stream.stats`` after — or
    during — consumption) and, in adaptive mode, the current batch size: the
    wall-clock time the consumer spends between successive ``next()`` calls
    is taken as the previous span's service time and fed to the AIMD
    controller.
    """

    def __init__(self, scheduler: BatchScheduler, ts: np.ndarray):
        self.scheduler = scheduler
        self.stats = FlushStats()
        self.batch_size = scheduler.batch_size
        self._ts = np.asarray(ts, dtype=np.float64)
        self._n = len(self._ts)
        self._i = 0
        self._yielded_at: float | None = None

    def __iter__(self) -> "SpanStream":
        return self

    def __next__(self) -> tuple[int, int]:
        sched = self.scheduler
        if sched.adaptive and self._yielded_at is not None:
            self._observe(time.perf_counter() - self._yielded_at)
        if self._i >= self._n:
            raise StopIteration
        start = self._i
        stop = min(start + self.batch_size, self._n)
        timed_out = False
        if sched.timeout is not None:
            t_stop = int(np.searchsorted(
                self._ts, self._ts[start] + sched.timeout, side="right"))
            t_stop = max(t_stop, start + 1)
            if t_stop < stop:
                stop, timed_out = t_stop, True
        if timed_out:
            self.stats.timeout += 1
        elif stop - start == self.batch_size:
            self.stats.full += 1
        else:
            self.stats.tail += 1
        self._i = stop
        if sched.adaptive:
            self._yielded_at = time.perf_counter()
        return (start, stop)

    def _observe(self, service_seconds: float) -> None:
        """AIMD batch resizing from one span's measured service time.

        The result is always re-clamped into
        ``[min_batch_size, effective_max_batch]`` (and >= 1), so no latency
        sequence — however pathological — can drive the batch size to 0 or
        past the configured maximum.
        """
        sched = self.scheduler
        if service_seconds > sched.latency_target:
            if self.batch_size > sched.min_batch_size:
                self.batch_size = max(sched.min_batch_size, self.batch_size // 2)
                self.stats.shrunk += 1
        elif service_seconds < sched.latency_target / 2:
            if self.batch_size < sched.effective_max_batch:
                self.batch_size = min(sched.effective_max_batch, self.batch_size * 2)
                self.stats.grown += 1
        self.batch_size = min(max(self.batch_size, sched.min_batch_size, 1),
                              sched.effective_max_batch)
