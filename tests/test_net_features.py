"""Tests for feature extraction and the synthetic dataset generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.net import (
    Packet, FlowKey,
    length_bucket, ipd_bucket, flow_statistical_features,
    sequence_tokens, raw_byte_matrix,
    N_STAT_FEATURES, SEQ_WINDOW, SEQ_TOKENS, RAW_BYTES_PER_PACKET,
    make_dataset, make_attack_flows, DATASET_NAMES, ATTACK_NAMES,
)
from repro.net.features import dataset_views
from repro.net.synth import dataset_profiles, generate_flow


def _window(n=SEQ_WINDOW, length=500, payload_len=80):
    key = FlowKey(1, 2, 3, 4, 6)
    return [Packet(ts=0.001 * i, length=length, key=key,
                   payload=np.full(payload_len, i, dtype=np.uint8))
            for i in range(n)]


class TestBuckets:
    @given(st.integers(min_value=0, max_value=1500))
    def test_length_bucket_in_range(self, n):
        assert 0 <= length_bucket(n) <= 255

    def test_length_bucket_monotone(self):
        buckets = [length_bucket(n) for n in range(0, 1500, 10)]
        assert buckets == sorted(buckets)

    @given(st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_ipd_bucket_in_range(self, d):
        assert 0 <= ipd_bucket(d) <= 255

    def test_ipd_bucket_monotone(self):
        deltas = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0]
        buckets = [ipd_bucket(d) for d in deltas]
        assert buckets == sorted(buckets)
        assert len(set(buckets)) == len(buckets)  # log scale separates decades

    def test_ipd_bucket_zero(self):
        assert ipd_bucket(0.0) == 0


class TestFeatureViews:
    def test_stat_shape_and_dtype(self):
        feats = flow_statistical_features(_window())
        assert feats.shape == (N_STAT_FEATURES,)
        assert feats.dtype == np.uint8

    def test_stat_max_min(self):
        win = _window()
        win[3].length = 1400
        feats = flow_statistical_features(win)
        assert feats[0] == length_bucket(1400)
        assert feats[1] == length_bucket(500)

    def test_stat_empty_raises(self):
        with pytest.raises(ShapeError):
            flow_statistical_features([])

    def test_stat_single_packet(self):
        feats = flow_statistical_features(_window(1))
        assert feats[2] == 0 and feats[3] == 0  # no IPDs

    def test_seq_tokens_shape(self):
        tokens = sequence_tokens(_window())
        assert tokens.shape == (SEQ_TOKENS,)

    def test_seq_tokens_interleave(self):
        tokens = sequence_tokens(_window())
        assert tokens[0] == length_bucket(500)
        assert tokens[1] == 0  # first packet has no preceding IPD

    def test_seq_wrong_window_raises(self):
        with pytest.raises(ShapeError):
            sequence_tokens(_window(5))

    def test_raw_bytes_shape(self):
        raw = raw_byte_matrix(_window())
        assert raw.shape == (SEQ_WINDOW, RAW_BYTES_PER_PACKET)

    def test_raw_bytes_pads_short_payloads(self):
        raw = raw_byte_matrix(_window(payload_len=10))
        assert raw[0, 10:].sum() == 0

    def test_raw_bytes_truncates_long_payloads(self):
        raw = raw_byte_matrix(_window(payload_len=100))
        assert raw.shape[1] == RAW_BYTES_PER_PACKET


class TestSyntheticDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_make_dataset_classes(self, name):
        ds = make_dataset(name, flows_per_class=5, seed=0)
        labels = {f.label for f in ds.flows}
        assert labels == set(range(ds.n_classes))

    def test_deterministic(self):
        a = make_dataset("peerrush", flows_per_class=3, seed=42)
        b = make_dataset("peerrush", flows_per_class=3, seed=42)
        for fa, fb in zip(a.flows, b.flows):
            assert [p.length for p in fa.packets] == [p.length for p in fb.packets]

    def test_different_seeds_differ(self):
        a = make_dataset("peerrush", flows_per_class=3, seed=1)
        b = make_dataset("peerrush", flows_per_class=3, seed=2)
        lens_a = [p.length for f in a.flows for p in f.packets]
        lens_b = [p.length for f in b.flows for p in f.packets]
        assert lens_a != lens_b

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            make_dataset("nope")

    def test_split_fractions(self):
        ds = make_dataset("peerrush", flows_per_class=20, seed=0)
        train, val, test = ds.split(rng=0)
        assert len(train) + len(val) + len(test) == len(ds.flows)
        assert len(train) == 45  # 15 per class
        assert len(val) == 6

    def test_split_disjoint(self):
        ds = make_dataset("ciciot", flows_per_class=10, seed=0)
        train, val, test = ds.split(rng=0)
        ids = [id(f) for f in train + val + test]
        assert len(set(ids)) == len(ids)

    def test_flows_long_enough_for_windows(self):
        ds = make_dataset("iscxvpn", flows_per_class=5, seed=0)
        assert all(len(f) >= SEQ_WINDOW for f in ds.flows)

    def test_dataset_views_shapes(self):
        ds = make_dataset("peerrush", flows_per_class=4, seed=0)
        views = dataset_views(ds.flows)
        n = len(views["y"])
        assert views["stats"].shape == (n, N_STAT_FEATURES)
        assert views["seq"].shape == (n, SEQ_TOKENS)
        assert views["raw"].shape == (n, SEQ_WINDOW, RAW_BYTES_PER_PACKET)

    def test_classes_statistically_separable(self):
        # Sanity: class mean packet lengths differ on peerrush.
        ds = make_dataset("peerrush", flows_per_class=20, seed=0)
        means = []
        for label in range(3):
            lens = [p.length for f in ds.flows if f.label == label for p in f.packets]
            means.append(np.mean(lens))
        assert np.ptp(means) > 100

    @pytest.mark.parametrize("attack", ATTACK_NAMES)
    def test_attack_flows(self, attack):
        flows = make_attack_flows(attack, n_flows=3, seed=0)
        assert len(flows) == 3
        assert all(f.label >= 100 for f in flows)

    def test_unknown_attack(self):
        with pytest.raises(ValueError):
            make_attack_flows("NotAnAttack")

    def test_motif_present_in_payloads(self):
        profiles = dataset_profiles("peerrush")
        p = profiles[0]
        flow = generate_flow(p, rng=0)
        found = 0
        for pkt in flow.packets:
            s = pkt.payload.tobytes()
            if p.motif in s:
                found += 1
        assert found >= len(flow.packets) // 2

    @settings(deadline=None, max_examples=10)
    @given(st.sampled_from(list(DATASET_NAMES)), st.integers(0, 1000))
    def test_generate_valid_lengths(self, name, seed):
        ds = make_dataset(name, flows_per_class=2, seed=seed)
        for f in ds.flows:
            for p in f.packets:
                assert 40 <= p.length <= 1500
