"""A from-scratch CART decision-tree classifier (Leo's model family).

Best-first growth: the leaf whose best Gini split yields the largest
impurity reduction is split next, until ``max_nodes`` is reached — matching
how Leo sizes trees by node budget (the paper deploys a 1024-node tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError, TrainingError


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p ** 2).sum())


def _best_gini_split(x: np.ndarray, y: np.ndarray, n_classes: int
                     ) -> tuple[float, int, float] | None:
    """Best (impurity_reduction, feature, threshold) over all features."""
    n, d = x.shape
    if n < 2:
        return None
    parent_counts = np.bincount(y, minlength=n_classes).astype(np.float64)
    parent_gini = _gini(parent_counts)
    best: tuple[float, int, float] | None = None
    for f in range(d):
        order = np.argsort(x[:, f], kind="stable")
        xs = x[order, f]
        ys = y[order]
        valid = xs[:-1] < xs[1:]
        if not valid.any():
            continue
        onehot = np.zeros((n, n_classes))
        onehot[np.arange(n), ys] = 1.0
        left_counts = np.cumsum(onehot, axis=0)[:-1]
        right_counts = parent_counts[None, :] - left_counts
        n_left = np.arange(1, n)
        n_right = n - n_left
        with np.errstate(invalid="ignore", divide="ignore"):
            g_left = 1.0 - ((left_counts / n_left[:, None]) ** 2).sum(axis=1)
            g_right = 1.0 - ((right_counts / n_right[:, None]) ** 2).sum(axis=1)
        weighted = (n_left * g_left + n_right * g_right) / n
        weighted[~valid] = np.inf
        k = int(np.argmin(weighted))
        reduction = parent_gini - weighted[k]
        if reduction <= 1e-12:
            continue
        threshold = float(np.floor((xs[k] + xs[k + 1]) / 2.0))
        if threshold < xs[k]:
            threshold = float(xs[k])
        if best is None or reduction > best[0]:
            best = (float(reduction), f, threshold)
    return best


@dataclass
class TreeNode:
    feature: int
    threshold: float
    left: "TreeNode | int"
    right: "TreeNode | int"


@dataclass
class DecisionTree:
    """CART classifier with a node budget."""

    max_nodes: int = 1024
    min_leaf: int = 2
    n_classes: int = 0
    root: TreeNode | int = 0
    leaf_classes: np.ndarray = field(default_factory=lambda: np.zeros(1, dtype=np.int64))

    @property
    def n_nodes(self) -> int:
        def count(node):
            if isinstance(node, int):
                return 1
            return 1 + count(node.left) + count(node.right)
        return count(self.root)

    @property
    def n_leaves(self) -> int:
        return len(self.leaf_classes)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionTree":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or len(x) != len(y):
            raise ShapeError(f"bad training shapes {x.shape} / {y.shape}")
        if len(x) == 0:
            raise TrainingError("cannot fit a tree on no data")
        self.n_classes = int(y.max()) + 1

        members: list[np.ndarray] = [np.arange(len(x))]
        splits = [_best_gini_split(x, y, self.n_classes)]
        root: TreeNode | int = 0
        parent_of: dict[int, tuple[TreeNode, str]] = {}

        # Each split adds 2 nodes; stop before exceeding the budget.
        while True:
            if self.n_nodes_estimate(len(members)) + 2 > self.max_nodes:
                break
            candidates = [(s[0], i) for i, s in enumerate(splits)
                          if s is not None and len(members[i]) >= 2 * self.min_leaf]
            if not candidates:
                break
            _, leaf = max(candidates)
            _, feature, threshold = splits[leaf]
            rows = members[leaf]
            mask = x[rows, feature] <= threshold
            l_rows, r_rows = rows[mask], rows[~mask]
            if len(l_rows) == 0 or len(r_rows) == 0:
                splits[leaf] = None
                continue
            right_slot = len(members)
            members[leaf] = l_rows
            members.append(r_rows)
            splits[leaf] = _best_gini_split(x[l_rows], y[l_rows], self.n_classes)
            splits.append(_best_gini_split(x[r_rows], y[r_rows], self.n_classes))
            node = TreeNode(feature, threshold, left=leaf, right=right_slot)
            if leaf in parent_of:
                parent, side = parent_of[leaf]
                setattr(parent, side, node)
            else:
                root = node
            parent_of[leaf] = (node, "left")
            parent_of[right_slot] = (node, "right")

        self.root = root
        self.leaf_classes = np.array(
            [np.bincount(y[m], minlength=self.n_classes).argmax() for m in members],
            dtype=np.int64)
        return self

    @staticmethod
    def n_nodes_estimate(n_leaves: int) -> int:
        return 2 * n_leaves - 1

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        out = np.empty(len(x), dtype=np.int64)
        self._assign(self.root, np.arange(len(x)), x, out)
        return out

    def _assign(self, node, rows, x, out) -> None:
        if isinstance(node, int):
            out[rows] = self.leaf_classes[node]
            return
        mask = x[rows, node.feature] <= node.threshold
        self._assign(node.left, rows[mask], x, out)
        self._assign(node.right, rows[~mask], x, out)

    def leaf_boxes(self, dim: int, lo: float = 0.0, hi: float = 255.0):
        """Per-leaf axis-aligned boxes, for MAT encoding (Leo)."""
        boxes = [None] * self.n_leaves
        start = [(lo, hi)] * dim

        def walk(node, bounds):
            if isinstance(node, int):
                boxes[node] = list(bounds)
                return
            f, t = node.feature, node.threshold
            left_b = list(bounds)
            left_b[f] = (bounds[f][0], min(bounds[f][1], t))
            right_b = list(bounds)
            right_b[f] = (max(bounds[f][0], t + 1), bounds[f][1])
            walk(node.left, left_b)
            walk(node.right, right_b)

        walk(self.root, start)
        return boxes
