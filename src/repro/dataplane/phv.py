"""Packet Header Vector (PHV) field allocation.

PISA carries all per-packet metadata in a fixed-size PHV split into 8/16/32
bit containers. Pegasus's CNN-L input scale (3840 bits) famously does *not*
fit alongside basic forwarding state, which is why its compiler distributes
the inference window across packets; this allocator is what detects that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceExceededError

_CONTAINER_SIZES = (8, 16, 32)


@dataclass(frozen=True)
class PHVField:
    name: str
    bits: int
    container_bits: int


@dataclass
class PHVAllocator:
    """Greedy first-fit allocation of named fields into PHV containers."""

    capacity_bits: int
    reserved_bits: int = 512  # headroom for parsing/forwarding metadata
    fields: list[PHVField] = field(default_factory=list)

    def allocate(self, name: str, bits: int) -> PHVField:
        """Allocate a field; raises ResourceExceededError when the PHV is full."""
        if bits <= 0:
            raise ValueError(f"field {name!r} needs positive width, got {bits}")
        container = next((c for c in _CONTAINER_SIZES if bits <= c), None)
        if container is None:
            # Wide values span multiple 32-bit containers.
            container = ((bits + 31) // 32) * 32
        new_field = PHVField(name=name, bits=bits, container_bits=container)
        if self.used_bits + container > self.capacity_bits - self.reserved_bits:
            raise ResourceExceededError(
                "PHV", self.used_bits + container, self.capacity_bits - self.reserved_bits)
        self.fields.append(new_field)
        return new_field

    @property
    def used_bits(self) -> int:
        return sum(f.container_bits for f in self.fields)

    @property
    def utilization(self) -> float:
        return self.used_bits / self.capacity_bits
