"""Scenario serving suite: per-phase accuracy/pps/cache across all families.

Replays every registered scenario family (time-varying load, microbursts,
attack floods, heavy-hitter skew, flow churn, concept drift) through the
engine via ``run_scenario_suite`` and prints one per-phase table per
scenario — the attack flood's accuracy cliff and the heavy-hitter phase's
cache hit-rate spike are the rows to eyeball. The quick differential matrix
also replays the fixed seed (bit-identity across topology x cache x backend
x runtime kind), asserted as a hard correctness bit and exported to the
``scenarios`` section of ``BENCH_serving.json``.
"""

from repro.eval.reporting import (metric_or_sentinel, render_scenario_table,
                                  update_bench_json)
from repro.eval.runner import run_scenario_suite


def _run(scale):
    return run_scenario_suite(flows_per_class=scale["flows_per_class"],
                              seed=scale["seed"], flows_scale=0.5)


def test_scenario_suite(benchmark, bench_scale):
    res = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    for summary in res["scenarios"].values():
        print(render_scenario_table(summary))
        print()

    # The differential matrix is a hard gate: a fast wrong answer is not a
    # trade-off (mirrors the parallel bench's matches_serial bit).
    assert res["differential_ok"]

    scenarios = res["scenarios"]
    assert len(scenarios) >= 6

    # The flood phase injects label-100+ attack traffic the benign-trained
    # classifier cannot name: accuracy must crater relative to baseline.
    flood = scenarios["attack_flood"]["phases"]
    assert flood["flood"]["accuracy"] < flood["baseline"]["accuracy"] - 0.2

    # The Zipf elephants repeat their windows: the skewed phase dominates
    # the scenario's cache hits.
    hitters = scenarios["heavy_hitters"]["phases"]
    assert hitters["skewed"]["cache_hit_rate"] > 0.3
    assert hitters["skewed"]["cache_hit_rate"] > \
        hitters["warmup"]["cache_hit_rate"] + 0.2

    # Approximate hits must never change a decision: every cached replay's
    # digest equals its uncached replay's (hard gate, like differential_ok).
    assert res["decisions_bit_identical"]

    # The two-level cache is the point of serving "l1+l2": families whose
    # exact-window L1 stayed cold must now hit through the quantized L2.
    warm = [name for name, s in scenarios.items()
            if s["overall"]["cache_hit_rate"] > 0.0]
    assert len(warm) >= 4, warm

    # Churn-heavy families (diurnal renewal, microburst flow storms) gate
    # L2 inserts off per phase — the cold-cache fix: no wasted certificate
    # work on windows that never repeat. Warm families keep inserting, and
    # decisions_bit_identical above proves the gate never flips a decision.
    for cold in ("diurnal", "microburst"):
        assert scenarios[cold]["overall"]["cache_l2_skipped"] > 0, cold
    assert scenarios["heavy_hitters"]["overall"]["cache_l2_skipped"] == 0

    update_bench_json("scenarios", {
        "differential_ok": res["differential_ok"],
        "differential_trials": res["differential_trials"],
        "model_f1": res["model_f1"],
        "cache": {
            "mode": res["cache_mode"],
            "decisions_bit_identical": res["decisions_bit_identical"],
        },
        "per_scenario": {
            name: {
                "pps": s["overall"]["pps"],
                # Accuracy is undefined over unlabeled traffic (e.g. the
                # flow-churn mice storms): export the named sentinel, never
                # a bare JSON null the regression gate cannot interpret.
                "accuracy": metric_or_sentinel(s["overall"]["accuracy"]),
                "cache_hit_rate": s["overall"]["cache_hit_rate"],
                "cache_exact_hits": s["overall"]["cache_exact_hits"],
                "cache_approx_hits": s["overall"]["cache_approx_hits"],
                "cache_l2_skipped": s["overall"]["cache_l2_skipped"],
                "phase_accuracy": {p: metric_or_sentinel(v["accuracy"])
                                   for p, v in s["phases"].items()},
                "phase_cache_hit_rate": {p: v["cache_hit_rate"]
                                         for p, v in s["phases"].items()},
            } for name, s in scenarios.items()
        },
    })
