"""Quickstart: compile a tiny MLP to the dataplane and classify packets.

Walks the whole Pegasus pipeline in ~30 seconds:

1. generate synthetic labelled traffic,
2. train a full-precision MLP on statistical features,
3. compile it — lower to Partition/Map/SumReduce, fuse, fuzzy-match,
   quantize, refine,
4. place it on a simulated Tofino-2 pipeline and verify bit-exactness,
5. serve a replayed packet trace through the `PegasusEngine` facade —
   one `EngineConfig`, one `ServingReport`.

Run:  python examples/quickstart.py
(`QUICKSTART_FLOWS_PER_CLASS` shrinks the dataset, e.g. for CI smoke runs.)
"""

import os

import numpy as np

from repro import EngineConfig, PegasusEngine
from repro.core import PegasusCompiler, CompilerConfig
from repro.dataplane import TOFINO2, place_model
from repro.eval.metrics import macro_f1
from repro.models import build_model
from repro.net import make_dataset
from repro.net.features import dataset_views

FLOWS_PER_CLASS = int(os.environ.get("QUICKSTART_FLOWS_PER_CLASS", "80"))


def main():
    print("=== 1. synthetic traffic ===")
    dataset = make_dataset("peerrush", flows_per_class=FLOWS_PER_CLASS, seed=0)
    train_flows, _val, test_flows = dataset.split(rng=0)
    train_views = dataset_views(train_flows)
    test_views = dataset_views(test_flows)
    print(f"classes: {dataset.class_names}; "
          f"{len(train_views['y'])} train windows, {len(test_views['y'])} test")

    print("\n=== 2. train the float model ===")
    model = build_model("MLP-B", dataset.n_classes, seed=0)
    model.train(train_views)
    f1_float = macro_f1(test_views["y"], model.predict_float(test_views))
    print(f"full-precision macro-F1: {f1_float:.3f}")

    print("\n=== 3. compile to Pegasus primitives ===")
    result = PegasusCompiler(CompilerConfig(fuzzy_leaves=256)).compile_sequential(
        model.net, train_views["stats"].astype(np.int64), name="quickstart")
    print(f"lookup rounds: {result.initial_lookup_rounds} -> "
          f"{result.fused_lookup_rounds} after Basic Primitive Fusion")
    print(result.program.describe())
    compiled = result.compiled
    f1_switch = macro_f1(test_views["y"],
                         compiled.predict(test_views["stats"].astype(np.int64)))
    print(f"dataplane macro-F1: {f1_switch:.3f} "
          f"(loss vs float: {f1_float - f1_switch:+.3f})")

    print("\n=== 4. place on the Tofino-2 pipeline ===")
    pipeline = place_model(compiled, TOFINO2)
    probe = test_views["stats"][:64].astype(np.int64)
    assert (pipeline.process(probe) == compiled.forward_int(probe)).all()
    print(f"stages used: {pipeline.n_stages_used}/{TOFINO2.n_stages}, "
          f"tables: {compiled.num_tables}, "
          f"SRAM: {compiled.sram_bits() / TOFINO2.total_sram_bits:.2%}, "
          f"TCAM: {compiled.tcam_bits() / TOFINO2.total_tcam_bits:.2%}")
    print("pipeline execution is bit-exact with the compiled model")

    print("\n=== 5. serve a live packet trace through the engine ===")
    config = EngineConfig(feature_mode="stats", batch_size=256,
                          decision_cache=True, topology="sharded", n_workers=2)
    with PegasusEngine.from_compiled(compiled, config) as engine:
        report = engine.serve(test_flows)
    print(f"{report.n_decisions} per-packet decisions over "
          f"{report.n_packets} packets, accuracy {report.accuracy:.3f}")
    print(f"{report.pps:,.0f} pps serial / {report.pps_parallel:,.0f} pps at "
          f"the critical path ({config.n_workers} shards); "
          f"cache hit rate {report.cache_stats.hit_rate:.1%}")


if __name__ == "__main__":
    main()
