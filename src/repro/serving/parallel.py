"""Parallel multi-process serving over shared-memory rings.

:class:`~repro.serving.ShardedDispatcher` replays its replicas *serially*
and models parallel wall clock as ``max(shard_seconds)``;
:class:`ParallelDispatcher` makes that wall clock real. Each of
``n_workers`` persistent ``multiprocessing`` workers owns one runtime
replica (built from ``runtime_factory`` inside the worker) and a pair of
preallocated shared-memory rings (:mod:`repro.serving.rings`):

- the driver gathers each shard's packets **directly into ingress ring
  slots** as columnar NumPy views (``np.take`` into the mapped segment —
  no intermediate arrays, nothing pickled);
- the worker replays each slot **in place** and writes its decision
  stream into the matching egress slot;
- only fixed-size chunk descriptors — ``("chunk", slot, rows)`` out,
  ``("chunk_ok", slot, n_decisions)`` back — cross the worker pipe.

Dispatch and merge are **pipelined** gZCCL-style: up to ``ring_depth``
chunks are in flight per worker, and the driver scatters each finished
egress slot into the preallocated decision columns while workers are still
replaying later chunks — compute never idles on transfer in either
direction. ``ring_stalls`` counts the times the driver had chunks ready
but every slot of some worker's ring was still in flight (backpressure).

Flows are pinned to workers by the same canonical-5-tuple FNV-1a hash the
serial dispatcher uses, and the per-shard batch spans are cut driver-side
by the same scheduler — so for any worker count, ring depth, or chunk size
the decisions (and flush/cache counters) are **bit-identical** to
``ShardedDispatcher`` with ``n_shards == n_workers`` (and, when
per-replica register capacity does not bind, to an unsharded replay) —
with or without a flow-decision cache in the replicas. The equivalence is
asserted by ``tests/test_serving_parallel.py`` and the differential
harness (``repro.eval.differential``).

Usage::

    from repro.serving import BatchScheduler, FlowDecisionCache, ParallelDispatcher

    with ParallelDispatcher(
        runtime_factory=lambda: WindowedClassifierRuntime(
            compiled,
            feature_mode="stats",
            batch_size=256,
            decision_cache=FlowDecisionCache(65536),
        ),
        n_workers=4,
        scheduler=BatchScheduler(batch_size=256, timeout=0.050),
    ) as dispatcher:
        decisions = dispatcher.serve_flows(test_flows)
        pps = len(decisions) / dispatcher.wall_seconds

Workers default to the ``fork`` start method (the factory closure —
typically capturing a compiled model — is inherited, never pickled); on
platforms without ``fork`` the dispatcher falls back to ``spawn``, which
requires a picklable factory (ring segments are passed by *name*, so the
shm path is start-method agnostic). ``close()`` (or the context manager)
shuts the workers down and **unlinks every shared-memory segment** — also
after a failed ``start()``, a crashed worker, or repeated calls; replica
state (flow registers, decision caches) lives in the workers, so it
persists across ``serve_*`` calls and is discarded on ``close()``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_ready
from typing import Any, Callable

import numpy as np

from repro.core.mapping import _check_backend
from repro.dataplane.runtime import PacketDecision, flows_to_trace
from repro.dataplane.schema import (
    DECISION_COLUMNS,
    EGRESS_RING_ORDER,
    WIRE_COLUMNS,
    decision_dtype,
    validation_enabled,
    wire_dtype,
)
from repro.errors import ConfigError
from repro.net.traces import KEY_COLUMN_NAMES, Trace, keys_from_columns
from repro.serving.cache import CacheStats
from repro.serving.dispatcher import shard_hash_columns
from repro.serving.rings import (
    RingSegments,
    RingSpec,
    attach_ring,
    scatter_decision_chunk,
    write_egress_chunk,
    write_ingress_chunk,
)
from repro.serving.scheduler import BatchScheduler, FlushStats

#: Auto chunk size (``ring_chunk=None``): at least this many rows per slot,
#: or the scheduler's batch size when that is larger — so one slot holds at
#: least one full batch and the descriptor rate stays negligible.
DEFAULT_CHUNK_ROWS = 256


def serve_chunk(runtime, spec: RingSpec, ingress, egress,
                slot: int, rows: int) -> tuple:
    """Replay one ingress ring slot in place; write the egress slot.

    Runs inside a worker process (also directly callable in-process, which
    the unit tests use). Builds column views over the slot, validates them
    against the wire schema (debug-gated), replays the chunk as one batch
    span, and stores the decision stream straight into the egress slot.
    Returns the ``("chunk_ok", slot, n_decisions, seconds)`` ack.
    """
    views = spec.ingress_views(ingress.buf, slot, rows)
    if validation_enabled():
        WIRE_COLUMNS.validate_columns(
            views, context=f"worker ingress ring read (slot {slot})")
    keys = keys_from_columns({name: views[name]
                              for name in KEY_COLUMN_NAMES})
    cols = {"ts": views["ts"], "length": views["length"]}
    if "payload" in views:
        cols["payload"] = views["payload"]
    started = time.perf_counter()
    decisions = runtime.process_columns(
        cols, keys, labels=views["labels"], spans=[(0, rows)])
    seconds = time.perf_counter() - started
    out = spec.egress_views(egress.buf, slot, rows)
    produced = write_egress_chunk(out, decisions)
    return ("chunk_ok", slot, produced, seconds)


def worker_main(conn, runtime_factory, ingress_name: str, egress_name: str,
                spec: RingSpec, lookup_backend=None) -> None:
    """Persistent worker loop: one replica, one ring pair, chunks until EOF.

    The replica and the ring attachments are built on the warm ping so
    construction cost lands in the worker and a broken factory surfaces
    immediately. Replica state (flow registers, decision caches) persists
    across serves, exactly like a long-lived replica would.
    ``lookup_backend``, when set, is applied to the freshly built replica
    (so TCAM compilation also happens worker-side, behind the warm ping).

    Protocol (driver -> worker / worker -> driver):

    - ``("warm",)`` -> ``("ok", None)`` | ``("error", traceback)``
    - ``("serve", l2_seed, l2_admit)`` — resets per-serve state, no reply
    - ``("chunk", slot, rows)`` -> ``("chunk_ok", slot, n, seconds)`` |
      ``("chunk_err", slot, traceback)``
    - ``("end",)`` -> ``("done", {seconds, cache_stats, l2_export, error})``
    - ``None`` — shut down

    A chunk failure never kills the loop: the slot is acked with the
    traceback so the driver can drain the ring, stop feeding this worker,
    and raise after every fleet member reports done.
    """
    runtime = None
    ingress = egress = None
    serve_error = None
    serve_seconds = 0.0
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            op = msg[0]
            if op == "warm":
                try:
                    if runtime is None:
                        runtime = runtime_factory()
                        if lookup_backend is not None:
                            runtime.set_lookup_backend(lookup_backend)
                    if ingress is None:
                        ingress = attach_ring(ingress_name)
                        egress = attach_ring(egress_name)
                    conn.send(("ok", None))
                except Exception:
                    conn.send(("error", traceback.format_exc()))
            elif op == "serve":
                serve_error = None
                serve_seconds = 0.0
                try:
                    _, l2_seed, l2_admit = msg
                    cache = getattr(runtime, "decision_cache", None)
                    if getattr(cache, "two_level", False):
                        # Per-serve L2 admission gate, and read-mostly L2
                        # sharing: entries other workers published on
                        # earlier serves seed this replica's store (never
                        # counted as its inserts, never re-exported).
                        cache.l2_admit = bool(l2_admit)
                        if l2_seed:
                            cache.import_l2(l2_seed)
                except Exception:
                    serve_error = traceback.format_exc()
            elif op == "chunk":
                slot, rows = msg[1], msg[2]
                if serve_error is not None:
                    conn.send(("chunk_err", slot, serve_error))
                    continue
                try:
                    ack = serve_chunk(runtime, spec, ingress, egress,
                                      slot, rows)
                    serve_seconds += ack[3]
                    conn.send(ack)
                except Exception:
                    conn.send(("chunk_err", slot, traceback.format_exc()))
            elif op == "end":
                try:
                    cache = getattr(runtime, "decision_cache", None)
                    two_level = getattr(cache, "two_level", False)
                    payload = {
                        "seconds": serve_seconds,
                        "cache_stats": cache.stats if cache is not None
                        else None,
                        "l2_export": cache.export_l2() if two_level
                        else None,
                        "error": serve_error,
                    }
                except Exception:
                    payload = {"seconds": serve_seconds,
                               "error": traceback.format_exc()}
                conn.send(("done", payload))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        for shm in (ingress, egress):
            if shm is not None:
                try:
                    shm.close()
                except (BufferError, OSError):  # pragma: no cover
                    pass
        conn.close()


def _chunk_cuts(stream, n_rows: int, chunk_rows: int):
    """Yield ``(a, b)`` chunk bounds over one shard, at most a slot each.

    With a scheduler, chunks are the scheduler's batch spans (cut from the
    shard's own timestamps, exactly like the serial dispatcher) split to
    the slot capacity; without one, fixed ``chunk_rows`` strides. Batch
    cuts never change decisions or cache counters (asserted by the serving
    tests), so slot capacity is pure transport geometry.
    """
    if stream is None:
        for a in range(0, n_rows, chunk_rows):
            yield a, min(a + chunk_rows, n_rows)
        return
    for a, b in stream:
        for s in range(a, b, chunk_rows):
            yield s, min(s + chunk_rows, b)


@dataclass
class _WorkerServe:
    """Driver-side per-worker state for one serve (ring bookkeeping)."""

    w: int
    conn: Any
    member: np.ndarray                  # global positions of shard packets
    stream: Any                         # SpanStream | None (flush stats)
    chunks: Any                         # iterator of (a, b) shard spans
    base_by_slot: dict = field(default_factory=dict)
    next_seq: int = 0                   # chunks dispatched so far
    inflight: int = 0
    exhausted: bool = False
    end_sent: bool = False
    failed: str | None = None


@dataclass
class ParallelDispatcher:
    """Serve traces across ``n_workers`` concurrent runtime replicas.

    The parallel counterpart of :class:`~repro.serving.ShardedDispatcher`:
    same flow pinning, same driver-side batch spans, but replicas live in
    persistent worker processes fed through per-worker shared-memory rings
    (:mod:`repro.serving.rings`), so ``wall_seconds`` is *measured*
    concurrent wall clock and the payload path never pickles.
    ``runtime_factory`` runs inside each worker; ``scheduler`` is immutable
    config shared by value; ``payload_bytes`` (for
    :class:`TwoStageRuntime` replicas) reserves a payload matrix in every
    ingress slot; ``lookup_backend`` (``"index"`` | ``"tcam"``), when set,
    is applied to every worker-built replica via ``set_lookup_backend`` —
    serving the hardware-faithful emulated-TCAM lookup path with
    bit-identical decisions. ``ring_depth`` slots per worker bound the
    in-flight chunks (pipelining window); ``ring_chunk`` caps rows per
    slot (default: ``max(DEFAULT_CHUNK_ROWS, scheduler batch size)``).

    Per-serve telemetry: ``wall_seconds``, per-worker ``shard_seconds``
    (replay time only, excluding IPC), merged ``flush_stats``,
    ``ring_stalls`` (driver blocked on a full ring), and — when replicas
    carry a decision cache — lifetime ``cache_stats``.
    """

    runtime_factory: Callable[[], Any]
    n_workers: int = 1
    scheduler: BatchScheduler | None = None
    lookup_backend: str | None = None
    payload_bytes: int | None = None
    start_method: str | None = None
    ring_depth: int = 4
    ring_chunk: int | None = None
    l2_admit: bool = field(init=False, default=True)
    shard_seconds: list[float] = field(init=False, default_factory=list)
    wall_seconds: float = field(init=False, default=0.0)
    flush_stats: FlushStats = field(init=False, default_factory=FlushStats)
    cache_stats: CacheStats = field(init=False, default_factory=CacheStats)
    ring_stalls: int = field(init=False, default=0)

    def __post_init__(self):
        if self.n_workers < 1:
            raise ConfigError("n_workers", self.n_workers, allowed=">= 1")
        if self.lookup_backend is not None:
            # Fail fast on a typo'd backend, before any worker is forked
            # (replica-specific rejections still surface from the warm ping).
            _check_backend(self.lookup_backend)
        if self.start_method is None:
            methods = multiprocessing.get_all_start_methods()
            self.start_method = "fork" if "fork" in methods else "spawn"
        chunk_rows = self.ring_chunk
        if chunk_rows is None:
            chunk_rows = DEFAULT_CHUNK_ROWS
            if self.scheduler is not None:
                chunk_rows = max(chunk_rows, self.scheduler.batch_size)
        # RingSpec validates ring_depth / ring_chunk (>= 1 each).
        self._spec = RingSpec(depth=self.ring_depth, chunk_rows=chunk_rows,
                              payload_cols=self.payload_bytes or 0)
        self._ctx = multiprocessing.get_context(self.start_method)
        self._workers: list = []
        self._conns: list = []
        self._segments: RingSegments | None = None
        # Master copy of the shared L2: every entry any worker published, in
        # deterministic worker order, deduplicated by (bucket, box). Shipped
        # to all workers as the seed of the next serve.
        self._l2_entries: list = []
        self._l2_seen: set = set()

    @property
    def started(self) -> bool:
        return bool(self._workers)

    @property
    def segment_names(self) -> list[str]:
        """Names of the live shared-memory segments (leak-check hook)."""
        return self._segments.segment_names if self._segments else []

    def start(self) -> None:
        """Create the rings, fork the workers, build their replicas.

        No-op when already running. Replica construction and ring
        attachment happen behind a warm-up ping, so ``wall_seconds`` of the
        first serve measures serving — not ``runtime_factory`` — and a
        broken factory surfaces immediately. Segments are created *before*
        any fork and their names passed down, so the same path serves
        ``fork`` and ``spawn`` workers.
        """
        if self._workers:
            return
        try:
            self._segments = RingSegments(self.n_workers, self._spec)
            for w in range(self.n_workers):
                parent_conn, child_conn = self._ctx.Pipe()
                ingress_name, egress_name = self._segments.names(w)
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(child_conn, self.runtime_factory, ingress_name,
                          egress_name, self._spec, self.lookup_backend),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers.append(proc)
                self._conns.append(parent_conn)
            for conn in self._conns:
                conn.send(("warm",))
            failures = []
            for w, conn in enumerate(self._conns):
                status, reply = conn.recv()
                if status != "ok":
                    failures.append(
                        f"worker {w} failed to build its replica:\n{reply}")
            if failures:
                raise RuntimeError("\n".join(failures))
        except BaseException:
            # A partially started fleet (spawn error, failed warm ping,
            # interrupt) must never leak processes, pipes, or shared-memory
            # segments: tear down whatever came up, then surface the
            # original error.
            self.close()
            raise

    def close(self) -> None:
        """Shut workers down, unlink the rings, discard replica state.

        Idempotent and exception-safe: callable any number of times, after
        a failed :meth:`start`, and from ``__exit__`` while a serve error
        is propagating — dead workers and broken pipes are tolerated,
        every shared-memory segment is unlinked regardless, and the
        dispatcher is always left restartable (a later serve creates fresh
        rings and forks a fresh cold fleet). The engine's lifecycle relies
        on being able to call this unconditionally.
        """
        workers, conns = self._workers, self._conns
        segments, self._segments = self._segments, None
        self._workers, self._conns = [], []
        self._l2_entries, self._l2_seen = [], set()   # cold fleet, cold L2
        for conn in conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for proc in workers:
            try:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join()
            except (AssertionError, ValueError, OSError):  # pragma: no cover
                pass                 # never-started / already-reaped process
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if segments is not None:
            # Unlink only after every worker is down: attached views keep
            # the memory alive until then, but the /dev/shm name must go.
            segments.close()

    def __enter__(self) -> "ParallelDispatcher":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _merge_l2(self, entries: list) -> None:
        """Fold one worker's published L2 entries into the master copy.

        Exports are merged in worker order (the serve loop collects them
        per worker and folds w = 0..n-1 after the drain), so the master
        list — and therefore every worker's next seed — is deterministic
        for a given serve history.
        """
        for qk, lo, hi, decision in entries:
            key = (qk, lo.tobytes(), hi.tobytes())
            if key in self._l2_seen:
                continue
            self._l2_seen.add(key)
            self._l2_entries.append((qk, lo, hi, decision))

    def serve_flows(self, flows: list) -> list:
        """Replay the interleaved trace of many labelled flows, in parallel."""
        trace, _keys, labels = flows_to_trace(flows)
        return self.serve_trace(trace, labels=labels)

    def serve_trace(self, trace: Trace, labels: np.ndarray | None = None) -> list:
        """Pump shard chunks through the rings; merge decision streams.

        The pump keeps up to ``ring_depth`` chunks in flight per worker
        and scatters every finished egress slot while later chunks are
        still replaying (dispatch/merge overlap). Decisions come back in
        global trace order, exactly as the serial dispatcher would produce
        them.
        """
        self.start()
        started = time.perf_counter()
        n = len(trace.packets)
        if labels is None:
            labels = np.full(n, -1, dtype=wire_dtype("labels"))
        else:
            labels = np.asarray(labels, dtype=wire_dtype("labels"))
        cols = trace.packet_columns()
        key_cols = trace.canonical_key_columns()
        sources = {"ts": cols["ts"], "length": cols["length"], **key_cols,
                   "labels": labels}
        if self.payload_bytes:
            sources["payload"] = trace.payload_matrix(self.payload_bytes)
        if validation_enabled():
            # The produce side of the ring contract: one check of the full
            # columns every chunk gather reads from (drift would otherwise
            # be cast — or corrupted — by the in-place np.take below).
            WIRE_COLUMNS.validate_columns(
                sources, context="parallel shard split -> ingress rings")
        shard_ids = (shard_hash_columns(key_cols)
                     % np.uint64(self.n_workers)).astype(np.int64)

        states = []
        for w, conn in enumerate(self._conns):
            member = np.nonzero(shard_ids == w)[0]
            stream = self.scheduler.iter_spans(cols["ts"][member]) \
                if self.scheduler is not None else None
            states.append(_WorkerServe(
                w, conn, member, stream,
                _chunk_cuts(stream, len(member), self._spec.chunk_rows)))
            conn.send(("serve", self._l2_entries or None, self.l2_admit))

        self.shard_seconds = [0.0] * self.n_workers
        self.flush_stats = FlushStats()
        self.cache_stats = CacheStats()
        self.ring_stalls = 0
        # Explicit per-column literal (not a comprehension) so the
        # columnar-schema lint checks every dtype against the declaration.
        merged = {
            "seq": np.zeros(n, dtype=decision_dtype("seq")),
            "flow_label": np.zeros(n, dtype=decision_dtype("flow_label")),
            "predicted": np.zeros(n, dtype=decision_dtype("predicted")),
            "ts": np.zeros(n, dtype=decision_dtype("ts")),
        }
        valid = np.zeros(n, dtype=np.bool_)
        failures: list[str] = []
        done_payloads: list[dict | None] = [None] * self.n_workers
        pending = {st.conn: st for st in states}

        while pending:
            for st in states:
                if st.conn in pending:
                    self._pump(st, sources, failures, pending)
            if not pending:
                break
            if any(st.conn in pending and not st.exhausted
                   and st.inflight >= self._spec.depth for st in states):
                # Backpressure: chunks are ready but some worker's ring is
                # full — the driver genuinely waits on the fleet here.
                self.ring_stalls += 1
            for conn in _wait_ready(list(pending)):
                st = pending[conn]
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    failures.append(f"worker {st.w} failed:\n"
                                    f"worker process died mid-serve")
                    del pending[conn]
                    continue
                self._absorb(st, msg, merged, valid, done_payloads,
                             failures, pending)

        for st in states:
            if st.stream is not None:
                self.flush_stats.merge(st.stream.stats)
        for w, payload in enumerate(done_payloads):
            if payload is None:
                continue
            self.shard_seconds[w] = payload.get("seconds", 0.0)
            if payload.get("cache_stats") is not None:
                self.cache_stats.merge(payload["cache_stats"])
            if payload.get("l2_export"):
                self._merge_l2(payload["l2_export"])
        if failures:
            raise RuntimeError("\n".join(failures))

        decisions = [
            PacketDecision(
                flow_label=int(merged["flow_label"][i]),
                predicted=int(merged["predicted"][i]),
                ts=float(merged["ts"][i]),
                seq=int(i),
            )
            for i in np.flatnonzero(valid)
        ]
        self.wall_seconds = time.perf_counter() - started
        return decisions

    def _pump(self, st: _WorkerServe, sources: dict, failures: list,
              pending: dict) -> None:
        """Fill this worker's free ring slots with its next shard chunks.

        Slots are claimed round-robin (``next_seq % depth``); a slot is
        free again only once its ack arrived, so ``inflight < depth``
        guarantees the worker is done with the slot being overwritten.
        A failed worker stops being fed (its remaining spans are dropped —
        the serve raises after the drain anyway).
        """
        if st.failed is not None:
            st.exhausted = True
        while not st.exhausted and st.inflight < self._spec.depth:
            span = next(st.chunks, None)
            if span is None:
                st.exhausted = True
                break
            a, b = span
            slot = st.next_seq % self._spec.depth
            views = self._spec.ingress_views(
                self._segments.ingress[st.w].buf, slot, b - a)
            write_ingress_chunk(views, sources, st.member[a:b])
            if not self._send(st, ("chunk", slot, b - a), failures, pending):
                return
            st.base_by_slot[slot] = a
            st.next_seq += 1
            st.inflight += 1
        if st.exhausted and not st.end_sent:
            st.end_sent = True
            self._send(st, ("end",), failures, pending)

    def _send(self, st: _WorkerServe, msg: tuple, failures: list,
              pending: dict) -> bool:
        """Send one descriptor, declaring the worker dead on a broken pipe."""
        try:
            st.conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            failures.append(f"worker {st.w} failed:\n"
                            f"worker process died mid-serve (broken pipe)")
            st.exhausted = True
            st.end_sent = True
            pending.pop(st.conn, None)
            return False

    def _absorb(self, st: _WorkerServe, msg: tuple, merged: dict,
                valid: np.ndarray, done_payloads: list, failures: list,
                pending: dict) -> None:
        """Fold one worker reply into the merge state."""
        op = msg[0]
        if op == "chunk_ok":
            _, slot, produced, _seconds = msg
            st.inflight -= 1
            if produced:
                views = self._spec.egress_views(
                    self._segments.egress[st.w].buf, slot, produced)
                if validation_enabled():
                    # The consume side of the ring contract: a worker whose
                    # decision stream drifted dtype would otherwise be
                    # silently cast by the scatter below.
                    DECISION_COLUMNS.validate_columns(
                        views, require=EGRESS_RING_ORDER,
                        context=f"worker {st.w} reply "
                                f"(egress ring read, slot {slot})")
                base = st.base_by_slot[slot]
                gseq = st.member[base + views["seq"]]
                scatter_decision_chunk(merged, valid, gseq, views, produced)
        elif op == "chunk_err":
            _, _slot, tb = msg
            st.inflight -= 1
            if st.failed is None:
                st.failed = f"worker {st.w} failed:\n{tb}"
                failures.append(st.failed)
        elif op == "done":
            done_payloads[st.w] = msg[1]
            err = msg[1].get("error")
            if err and st.failed is None:
                st.failed = f"worker {st.w} failed:\n{err}"
                failures.append(st.failed)
            del pending[st.conn]
