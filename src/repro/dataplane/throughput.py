"""Throughput models for Figure 9d.

A PISA pipeline runs every compiled program at line rate: throughput is set
by the switch fabric and average packet size, independent of model size
(§7.5). Control-plane throughput is *measured* on the local NumPy inference
path ("CPU"); the "GPU" series scales the CPU number by the paper's observed
CPU-to-GPU gap because no GPU exists offline (documented in DESIGN.md).
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.dataplane.target import TargetConfig, TOFINO2

# Paper §7.5: Pegasus beats CPU by >3800x and GPU by >600x, so the four-V100
# rig is ~6.3x the Xeon. Used to synthesize the GPU series.
GPU_OVER_CPU = 3800.0 / 600.0


def line_rate_pps(target: TargetConfig = TOFINO2, avg_packet_bytes: int = 800) -> float:
    """Packets (= inference samples) per second at line rate."""
    bits_per_packet = avg_packet_bytes * 8
    return target.line_rate_tbps * 1e12 / bits_per_packet


def measure_model_throughput(predict: Callable[[np.ndarray], np.ndarray],
                             x: np.ndarray, repeats: int = 3,
                             batch: int | None = None) -> float:
    """Measured samples/second of a software inference path."""
    if batch is not None:
        x = x[:batch]
    predict(x)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        # Measurement harness (Fig. 9d), not a decision path: wall-clock is
        # the quantity being measured, never an input to a decision.
        start = time.perf_counter()  # reprolint: disable=no-wallclock-in-dataplane
        predict(x)
        elapsed = time.perf_counter()  # reprolint: disable=no-wallclock-in-dataplane
        best = min(best, elapsed - start)
    return len(x) / best if best > 0 else float("inf")
