"""Tests for table materialization and the integer-domain compiled model."""

import numpy as np
import pytest

from repro import nn
from repro.errors import CompilationError, ShapeError
from repro.core import (
    Affine, MapStep, PrimitiveProgram, SumReduceStep,
    MaterializeConfig, materialize, even_partition, fuse_basic, lower_sequential,
)


def _uint8_calib(n=400, d=8, seed=0):
    rng = np.random.default_rng(seed)
    return np.floor(rng.uniform(0, 255, size=(n, d))).astype(np.int64)


def _simple_matmul_program(d_in=8, d_out=3, seg=2, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(d_in, d_out)) * 0.05
    b = rng.normal(size=d_out)
    partition = even_partition(d_in, seg)
    fns = [Affine(w[s:e], b / len(partition)) for s, e in partition]
    program = PrimitiveProgram(
        input_dim=d_in,
        steps=[MapStep(partition, fns), SumReduceStep(len(partition), d_out)])
    return program, w, b


class TestMaterializeMatMul:
    def test_output_close_to_float(self):
        program, w, b = _simple_matmul_program()
        calib = _uint8_calib()
        model = materialize(program, calib, MaterializeConfig(fuzzy_leaves=64))
        scores = model.predict_scores(calib[:50])
        want = calib[:50].astype(np.float64) @ w + b
        err = np.abs(scores - want).mean()
        scale = np.abs(want).mean()
        assert err < 0.15 * scale

    def test_more_leaves_less_error(self):
        program, w, b = _simple_matmul_program()
        calib = _uint8_calib()
        want = calib.astype(np.float64) @ w + b
        errs = []
        for leaves in (2, 8, 32, 128):
            model = materialize(program, calib, MaterializeConfig(fuzzy_leaves=leaves))
            errs.append(np.abs(model.predict_scores(calib) - want).mean())
        assert errs[0] > errs[-1]
        assert all(a >= b * 0.8 for a, b in zip(errs, errs[1:]))  # roughly monotone

    def test_integer_only_outputs(self):
        program, *_ = _simple_matmul_program()
        calib = _uint8_calib()
        model = materialize(program, calib)
        out = model.forward_int(calib[:10])
        assert out.dtype == np.int64

    def test_input_dim_checked(self):
        program, *_ = _simple_matmul_program()
        model = materialize(program, _uint8_calib())
        with pytest.raises(ShapeError):
            model.forward_int(np.zeros((3, 5), dtype=np.int64))

    def test_bad_calibration_shape(self):
        program, *_ = _simple_matmul_program()
        with pytest.raises(ShapeError):
            materialize(program, _uint8_calib(d=5))

    def test_leading_sumreduce_rejected(self):
        program = PrimitiveProgram(input_dim=4, steps=[SumReduceStep(2, 2)])
        with pytest.raises(CompilationError):
            materialize(program, _uint8_calib(d=4))


class TestExactTables:
    def test_single_unit_segments_use_exact(self):
        d = 4
        program = PrimitiveProgram(
            input_dim=d,
            steps=[MapStep([(i, i + 1) for i in range(d)],
                           [Affine(np.array([[0.5]]), np.array([0.0]))] * d),
                   SumReduceStep(d, 1)])
        model = materialize(program, _uint8_calib(d=d))
        assert all(t.kind == "exact" for t in model.layers[0].tables)
        assert all(t.n_entries == 256 for t in model.layers[0].tables)

    def test_exact_table_is_exact(self):
        """Exact tables reproduce f at every representable input."""
        d = 2
        program = PrimitiveProgram(
            input_dim=d,
            steps=[MapStep([(0, 1), (1, 2)],
                           [Affine(np.array([[2.0]]), np.array([1.0])),
                            Affine(np.array([[-1.0]]), np.array([0.0]))]),
                   SumReduceStep(2, 1)])
        model = materialize(program, _uint8_calib(d=d))
        x = np.array([[0, 0], [255, 255], [7, 200]], dtype=np.int64)
        want = 2.0 * x[:, :1] + 1.0 - x[:, 1:]
        got = model.predict_scores(x)
        np.testing.assert_allclose(got, want, atol=2 * model.out_format.resolution)

    def test_multi_unit_segments_use_fuzzy(self):
        program, *_ = _simple_matmul_program(seg=2)
        model = materialize(program, _uint8_calib())
        assert all(t.kind == "fuzzy" for t in model.layers[0].tables)


class TestFuzzyIndices:
    def _fuzzy_table(self):
        program, _w, _b = _simple_matmul_program()
        model = materialize(program, _uint8_calib(),
                            MaterializeConfig(fuzzy_leaves=8))
        for layer in model.layers:
            for table in layer.tables:
                if table.kind == "fuzzy":
                    return table
        raise AssertionError("expected at least one fuzzy table")

    def test_out_of_calibration_range_agrees_with_tree(self):
        """Inputs below 0 / above 255 (outside the uint8 calibration range)
        must route exactly where the tree walk routes them — fuzzy_indices
        is a thin view of predict_index, with no hidden clipping."""
        table = self._fuzzy_table()
        d = table.segment[1] - table.segment[0]
        rng = np.random.default_rng(3)
        x = np.concatenate([
            rng.integers(-500, 0, size=(100, d)),        # below range
            rng.integers(256, 1000, size=(100, d)),      # above range
            rng.integers(-50, 300, size=(100, d)),       # straddling
        ])
        np.testing.assert_array_equal(table.fuzzy_indices(x),
                                      table.tree.predict_index(x))
        # Domain corners and just-outside singles.
        for v in (-1, 0, 255, 256, 10_000, -10_000):
            row = np.full((1, d), v)
            assert table.fuzzy_indices(row)[0] == \
                int(table.tree.predict_index(row.astype(np.float64))[0])
        # Indices stay valid rows of the value table even out of range.
        assert int(table.fuzzy_indices(x).max()) < table.n_entries

    def test_exact_table_rejects_fuzzy_indices(self):
        program, _w, _b = _simple_matmul_program(seg=1)
        model = materialize(program, _uint8_calib(),
                            MaterializeConfig())
        table = model.layers[0].tables[0]
        assert table.kind == "exact"
        with pytest.raises(CompilationError):
            table.fuzzy_indices(np.zeros((1, 1)))


class TestMultiLayer:
    def _two_layer_model(self):
        model = nn.Sequential(
            nn.Linear(8, 6, rng=0),
            nn.ReLU(),
            nn.Linear(6, 3, rng=1),
        )
        # Scale weights down so uint8 inputs stay in sane ranges.
        for p in model.parameters():
            p.data *= 0.1
        model.eval_mode()
        return model

    def test_two_lookup_rounds_after_fusion(self):
        model = self._two_layer_model()
        program = fuse_basic(lower_sequential(model, input_dim=8, input_segment_dim=2))
        calib = _uint8_calib()
        compiled = materialize(program, calib, MaterializeConfig(fuzzy_leaves=64))
        assert compiled.num_lookup_rounds == 2

    def test_predictions_track_float_model(self):
        model = self._two_layer_model()
        program = fuse_basic(lower_sequential(model, input_dim=8, input_segment_dim=2))
        calib = _uint8_calib(n=600)
        compiled = materialize(program, calib, MaterializeConfig(fuzzy_leaves=128))
        want = np.argmax(model.forward(calib.astype(np.float64)), axis=1)
        got = compiled.predict(calib)
        agreement = (got == want).mean()
        assert agreement > 0.8

    def test_resource_accounting_positive(self):
        model = self._two_layer_model()
        program = fuse_basic(lower_sequential(model, input_dim=8, input_segment_dim=2))
        compiled = materialize(program, _uint8_calib())
        assert compiled.sram_bits() > 0
        assert compiled.tcam_bits() > 0
        assert compiled.bus_bits() > 0
        assert compiled.num_tables == sum(layer.n_lookups for layer in compiled.layers)
