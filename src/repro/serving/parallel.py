"""Parallel multi-process serving: fan shards out to persistent workers.

:class:`~repro.serving.ShardedDispatcher` replays its replicas *serially* and
models parallel wall clock as ``max(shard_seconds)``; :class:`ParallelDispatcher`
makes that wall clock real. Each of ``n_workers`` persistent ``multiprocessing``
workers owns one runtime replica (built from ``runtime_factory`` inside the
worker, after the fork), shard payloads cross the process boundary as a handful
of columnar NumPy arrays — timestamps, lengths, canonical 5-tuple columns, and
optionally a payload-byte matrix — instead of per-packet Python objects, and
each worker's decision stream comes back as four flat arrays that the parent
merges into global ``seq`` order.

Flows are pinned to workers by the same canonical-5-tuple FNV-1a hash the
serial dispatcher uses, so for any worker count the decisions are
**bit-identical** to ``ShardedDispatcher`` with ``n_shards == n_workers``
(and, when per-replica register capacity does not bind, to an unsharded
replay) — with or without a flow-decision cache in the replicas. The
equivalence is asserted by ``tests/test_serving_parallel.py``.

Usage::

    from repro.serving import BatchScheduler, FlowDecisionCache, ParallelDispatcher

    with ParallelDispatcher(
        runtime_factory=lambda: WindowedClassifierRuntime(
            compiled,
            feature_mode="stats",
            batch_size=256,
            decision_cache=FlowDecisionCache(65536),
        ),
        n_workers=4,
        scheduler=BatchScheduler(batch_size=256, timeout=0.050),
    ) as dispatcher:
        decisions = dispatcher.serve_flows(test_flows)
        pps = len(decisions) / dispatcher.wall_seconds

Workers default to the ``fork`` start method (the factory closure — typically
capturing a compiled model — is inherited, never pickled); on platforms
without ``fork`` the dispatcher falls back to ``spawn``, which requires a
picklable factory. ``close()`` (or the context manager) shuts the workers
down; replica state (flow registers, decision caches) lives in the workers,
so it persists across ``serve_*`` calls and is discarded on ``close()``.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.mapping import _check_backend
from repro.dataplane.runtime import PacketDecision, flows_to_trace
from repro.dataplane.schema import (
    DECISION_COLUMNS,
    WIRE_COLUMNS,
    decision_dtype,
    validation_enabled,
    wire_dtype,
)
from repro.errors import ConfigError
from repro.net.traces import KEY_COLUMN_NAMES, Trace, keys_from_columns
from repro.serving.cache import CacheStats
from repro.serving.dispatcher import shard_hash_columns
from repro.serving.scheduler import BatchScheduler, FlushStats


def serve_shard(runtime, shard: dict, scheduler: BatchScheduler | None) -> dict:
    """Replay one columnar shard payload on a replica; columnar reply.

    Runs inside a worker process (also directly callable in-process, which
    the unit tests use). The reply carries the decision stream as flat
    arrays plus the measured replay seconds and the replica's flush/cache
    stats.
    """
    keys = keys_from_columns(shard["keys"])
    cache = getattr(runtime, "decision_cache", None)
    two_level = getattr(cache, "two_level", False)
    if two_level:
        # Per-shard L2 admission gate (phase-scoped: the dispatcher stamps
        # its current setting on every payload).
        cache.l2_admit = bool(shard.get("l2_admit", True))
    if two_level and shard.get("l2_seed"):
        # Read-mostly L2 sharing: entries other workers published on earlier
        # serves seed this replica's store before the replay (never counted
        # as this replica's inserts, never re-exported).
        cache.import_l2(shard["l2_seed"])
    stream = scheduler.iter_spans(shard["cols"]["ts"]) if scheduler is not None else None
    start = time.perf_counter()
    decisions = runtime.process_columns(
        shard["cols"],
        keys,
        labels=shard["labels"],
        spans=stream,
    )
    seconds = time.perf_counter() - start
    return {
        "seq": np.asarray([d.seq for d in decisions], dtype=decision_dtype("seq")),
        "flow_label": np.asarray(
            [d.flow_label for d in decisions], dtype=decision_dtype("flow_label")
        ),
        "predicted": np.asarray(
            [d.predicted for d in decisions], dtype=decision_dtype("predicted")
        ),
        "ts": np.asarray([d.ts for d in decisions], dtype=decision_dtype("ts")),
        "seconds": seconds,
        "flush_stats": stream.stats if stream is not None else FlushStats(),
        "cache_stats": cache.stats if cache is not None else None,
        "l2_export": cache.export_l2() if two_level else None,
    }


_DECISION_NAMES = ("seq", "flow_label", "predicted", "ts")


# reprolint: zone=zero-copy
def _merge_decision_columns(parts: list, n: int) -> tuple:
    """Scatter per-worker decision streams into position-aligned columns.

    ``parts`` is ``[(global_seq, reply), ...]`` — each worker's shard-local
    decision arrays plus the precomputed global positions of its packets.
    Instead of concatenating the streams and argsorting (two full copies
    plus an O(n log n) sort per serve), every decision column is scattered
    once into a preallocated full-length array at its final position — the
    exact write pattern a shared-memory decision ring buffer will use
    (ROADMAP item 1), where the "preallocated array" is the mapped segment
    itself. Returns ``(merged, valid)``: the four schema-dtyped decision
    columns and the bool mask of positions any worker decided.
    """
    merged = {name: np.zeros(n, dtype=decision_dtype(name)) for name in _DECISION_NAMES}
    valid = np.zeros(n, dtype=np.bool_)
    for gseq, reply in parts:
        valid[gseq] = True
        merged["seq"][gseq] = gseq
        for name in ("flow_label", "predicted", "ts"):
            merged[name][gseq] = reply[name]
    return merged, valid


def worker_main(conn, runtime_factory, scheduler, lookup_backend=None) -> None:
    """Persistent worker loop: build one replica, serve shards until EOF.

    The replica is built on the first request so construction cost lands in
    the worker, and it persists across requests — flow registers and the
    decision cache keep their state exactly like a long-lived replica would.
    ``lookup_backend``, when set, is applied to the freshly built replica
    (so TCAM compilation also happens worker-side, behind the warm-up ping).
    """
    runtime = None
    try:
        while True:
            shard = conn.recv()
            if shard is None:
                break
            try:
                if runtime is None:
                    runtime = runtime_factory()
                    if lookup_backend is not None:
                        runtime.set_lookup_backend(lookup_backend)
                if shard.get("warm"):
                    conn.send(("ok", None))
                    continue
                conn.send(("ok", serve_shard(runtime, shard, scheduler)))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


@dataclass
class ParallelDispatcher:
    """Serve traces across ``n_workers`` concurrent runtime replicas.

    The parallel counterpart of :class:`~repro.serving.ShardedDispatcher`:
    same flow pinning, same per-replica replay, but replicas live in
    persistent worker processes and replay their shards concurrently, so
    ``wall_seconds`` is *measured* concurrent wall clock. ``runtime_factory``
    runs inside each worker; ``scheduler`` is immutable config shared by
    value; ``payload_bytes`` (for :class:`TwoStageRuntime` replicas) ships
    each shard's first payload bytes as one matrix; ``lookup_backend``
    (``"index"`` | ``"tcam"``), when set, is applied to every worker-built
    replica via ``set_lookup_backend`` — serving the hardware-faithful
    emulated-TCAM lookup path with bit-identical decisions.

    Per-serve telemetry: ``wall_seconds``, per-worker ``shard_seconds``
    (replay time only, excluding IPC), merged ``flush_stats``, and — when
    replicas carry a decision cache — lifetime ``cache_stats``.
    """

    runtime_factory: Callable[[], Any]
    n_workers: int = 1
    scheduler: BatchScheduler | None = None
    lookup_backend: str | None = None
    payload_bytes: int | None = None
    start_method: str | None = None
    l2_admit: bool = field(init=False, default=True)
    shard_seconds: list[float] = field(init=False, default_factory=list)
    wall_seconds: float = field(init=False, default=0.0)
    flush_stats: FlushStats = field(init=False, default_factory=FlushStats)
    cache_stats: CacheStats = field(init=False, default_factory=CacheStats)

    def __post_init__(self):
        if self.n_workers < 1:
            raise ConfigError("n_workers", self.n_workers, allowed=">= 1")
        if self.lookup_backend is not None:
            # Fail fast on a typo'd backend, before any worker is forked
            # (replica-specific rejections still surface from the warm ping).
            _check_backend(self.lookup_backend)
        if self.start_method is None:
            methods = multiprocessing.get_all_start_methods()
            self.start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(self.start_method)
        self._workers: list = []
        self._conns: list = []
        # Master copy of the shared L2: every entry any worker published, in
        # deterministic worker order, deduplicated by (bucket, box). Shipped
        # to all workers as the seed of the next serve.
        self._l2_entries: list = []
        self._l2_seen: set = set()

    @property
    def started(self) -> bool:
        return bool(self._workers)

    def start(self) -> None:
        """Fork the workers and build their replicas (no-op when running).

        Replica construction happens here, behind a warm-up ping, so
        ``wall_seconds`` of the first serve measures serving — not
        ``runtime_factory`` — and a broken factory surfaces immediately.
        """
        if self._workers:
            return
        try:
            for _ in range(self.n_workers):
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=worker_main,
                    args=(child_conn, self.runtime_factory, self.scheduler,
                          self.lookup_backend),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._workers.append(proc)
                self._conns.append(parent_conn)
            for conn in self._conns:
                conn.send({"warm": True})
            failures = []
            for w, conn in enumerate(self._conns):
                status, reply = conn.recv()
                if status != "ok":
                    failures.append(
                        f"worker {w} failed to build its replica:\n{reply}")
            if failures:
                raise RuntimeError("\n".join(failures))
        except BaseException:
            # A partially started fleet (spawn error, failed warm ping,
            # interrupt) must never leak processes or pipes: tear down
            # whatever came up, then surface the original error.
            self.close()
            raise

    def close(self) -> None:
        """Shut workers down, discarding their replica state.

        Idempotent and exception-safe: callable any number of times, after a
        failed :meth:`start`, and from ``__exit__`` while a serve error is
        propagating — dead workers and broken pipes are tolerated, and the
        dispatcher is always left restartable (a later serve forks a fresh
        cold fleet). The engine's lifecycle relies on being able to call
        this unconditionally.
        """
        workers, conns = self._workers, self._conns
        self._workers, self._conns = [], []
        self._l2_entries, self._l2_seen = [], set()   # cold fleet, cold L2
        for conn in conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for proc in workers:
            try:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()
                    proc.join()
            except (AssertionError, ValueError, OSError):  # pragma: no cover
                pass                 # never-started / already-reaped process
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def __enter__(self) -> "ParallelDispatcher":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _merge_l2(self, entries: list) -> None:
        """Fold one worker's published L2 entries into the master copy.

        Replies are merged in worker order (the reply loop is w = 0..n-1),
        so the master list — and therefore every worker's next seed — is
        deterministic for a given serve history.
        """
        for qk, lo, hi, decision in entries:
            key = (qk, lo.tobytes(), hi.tobytes())
            if key in self._l2_seen:
                continue
            self._l2_seen.add(key)
            self._l2_entries.append((qk, lo, hi, decision))

    def serve_flows(self, flows: list) -> list:
        """Replay the interleaved trace of many labelled flows, in parallel."""
        trace, _keys, labels = flows_to_trace(flows)
        return self.serve_trace(trace, labels=labels)

    def serve_trace(self, trace: Trace, labels: np.ndarray | None = None) -> list:
        """Shard columnar payloads to the workers; merge decision streams.

        Decisions come back in global trace order, exactly as the serial
        dispatcher would produce them.
        """
        self.start()
        started = time.perf_counter()
        n = len(trace.packets)
        if labels is None:
            labels = np.full(n, -1, dtype=wire_dtype("labels"))
        else:
            labels = np.asarray(labels, dtype=wire_dtype("labels"))
        cols = trace.packet_columns()
        key_cols = trace.canonical_key_columns()
        shard_ids = (shard_hash_columns(key_cols) % np.uint64(self.n_workers)).astype(np.int64)
        payload = trace.payload_matrix(self.payload_bytes) if self.payload_bytes else None

        members = []
        for w, conn in enumerate(self._conns):
            member = np.nonzero(shard_ids == w)[0]
            members.append(member)
            shard_cols = {"ts": cols["ts"][member], "length": cols["length"][member]}
            if payload is not None:
                shard_cols["payload"] = payload[member]
            shard_keys = {name: key_cols[name][member] for name in KEY_COLUMN_NAMES}
            if validation_enabled():
                WIRE_COLUMNS.validate_columns(
                    {**shard_cols, **shard_keys, "labels": labels[member]},
                    context=f"parallel shard split -> worker {w}",
                )
            conn.send(
                {
                    "cols": shard_cols,
                    "keys": shard_keys,
                    "labels": labels[member],
                    "l2_seed": self._l2_entries or None,
                    "l2_admit": self.l2_admit,
                }
            )

        self.shard_seconds = []
        self.flush_stats = FlushStats()
        self.cache_stats = CacheStats()
        parts = []
        failures = []
        for w, conn in enumerate(self._conns):
            status, reply = conn.recv()
            if status != "ok":
                failures.append(f"worker {w} failed:\n{reply}")
                continue
            self.shard_seconds.append(reply["seconds"])
            self.flush_stats.merge(reply["flush_stats"])
            if reply["cache_stats"] is not None:
                self.cache_stats.merge(reply["cache_stats"])
            if validation_enabled():
                # The consume side of the IPC contract: a worker whose
                # decision stream drifted dtype would otherwise be silently
                # cast by the scatter below.
                DECISION_COLUMNS.validate_columns(
                    {name: reply[name] for name in _DECISION_NAMES},
                    require=_DECISION_NAMES,
                    context=f"worker {w} reply",
                )
            parts.append((members[w][reply["seq"]], reply))
            if reply.get("l2_export"):
                self._merge_l2(reply["l2_export"])
        if failures:
            raise RuntimeError("\n".join(failures))

        merged, valid = _merge_decision_columns(parts, n)
        decisions = [
            PacketDecision(
                flow_label=int(merged["flow_label"][i]),
                predicted=int(merged["predicted"][i]),
                ts=float(merged["ts"][i]),
                seq=int(i),
            )
            for i in np.flatnonzero(valid)
        ]
        self.wall_seconds = time.perf_counter() - started
        return decisions
