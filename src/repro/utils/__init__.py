"""Shared low-level utilities: RNG handling, bit manipulation, fixed point."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.bits import (
    popcount,
    int_to_bits,
    bits_to_int,
    pack_signs,
    xnor_popcount,
)
from repro.utils.fixed_point import QFormat, choose_qformat

__all__ = [
    "new_rng",
    "spawn_rngs",
    "popcount",
    "int_to_bits",
    "bits_to_int",
    "pack_signs",
    "xnor_popcount",
    "QFormat",
    "choose_qformat",
]
