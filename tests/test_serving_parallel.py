"""Serial/parallel serving equivalence and the shared-memory ring surfaces.

The contract: :class:`ParallelDispatcher` decisions are bit-identical to
:class:`ShardedDispatcher` with the same shard count — and, when register
capacity does not bind, to unsharded per-packet replay — for any worker
count, ring depth, or chunk size, with or without the flow-decision cache,
including under register-eviction churn; and no shared-memory segment ever
outlives its dispatcher, whatever the close/crash path.
"""

import gc
import multiprocessing
import os

import numpy as np
import pytest

from repro.dataplane.runtime import (TwoStageRuntime,
                                     WindowedClassifierRuntime, flows_to_trace)
from repro.net.traces import Trace, canonicalize_key_columns, keys_from_columns
from repro.serving import (BatchScheduler, FlowDecisionCache, shard_hash,
                           shard_hash_columns)
# The un-deprecated internals: these tests exercise the dispatchers
# themselves, not the deprecated package-level construction path.
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.parallel import (ParallelDispatcher, serve_chunk,
                                    worker_main)
from repro.serving.rings import (RingSegments, RingSpec, attach_ring,
                                 write_ingress_chunk)

WORKER_COUNTS = (1, 2, 4)


def _factory(compiled16, cached, capacity=1_000_000):
    def build():
        cache = FlowDecisionCache(capacity=4096) if cached else None
        return WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=32,
            capacity=capacity, decision_cache=cache)
    return build


class _SpawnFactory:
    """Module-level (picklable) replica factory for spawn-started workers."""

    def __init__(self, compiled):
        self.compiled = compiled

    def __call__(self):
        return WindowedClassifierRuntime(self.compiled, feature_mode="stats",
                                         batch_size=32)


def _leaked_segments(names):
    """The subset of segment names still attachable (= leaked)."""
    leaked = []
    for name in names:
        try:
            shm = attach_ring(name)
        except FileNotFoundError:
            continue
        shm.close()
        leaked.append(name)
    return leaked


def _shm_listing():
    """Current /dev/shm segment names (None off Linux-like platforms)."""
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except OSError:
        return None


def _trace_sources(trace, labels):
    """Full-trace source columns, as the driver pump builds them."""
    cols = trace.packet_columns()
    return {"ts": cols["ts"], "length": cols["length"],
            **trace.canonical_key_columns(),
            "labels": np.asarray(labels, dtype=np.int64)}


class TestColumnarViews:
    def test_to_from_columns_round_trip(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        rebuilt = Trace.from_columns(trace.to_columns())
        assert len(rebuilt) == len(trace)
        for orig, back in zip(trace.packets, rebuilt.packets):
            assert (back.ts, back.length, back.key) == \
                (orig.ts, orig.length, orig.key)

    def test_payload_column_round_trip(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        cols = trace.to_columns(payload_bytes=60)
        assert cols["payload"].shape == (len(trace), 60)
        rebuilt = Trace.from_columns(cols)
        np.testing.assert_array_equal(rebuilt.payload_matrix(60),
                                      trace.payload_matrix(60))

    def test_canonical_key_columns_match_scalar(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        assert keys_from_columns(trace.canonical_key_columns()) == \
            trace.canonical_keys()

    def test_canonicalize_swaps_consistently(self):
        cols = {"src_ip": np.array([9, 1, 5]), "dst_ip": np.array([2, 8, 5]),
                "src_port": np.array([7, 7, 9]), "dst_port": np.array([3, 3, 4]),
                "proto": np.array([6, 6, 17])}
        canon = canonicalize_key_columns(cols)
        assert canon["src_ip"].tolist() == [2, 1, 5]
        assert canon["src_port"].tolist() == [3, 7, 4]
        assert canon["proto"].tolist() == [6, 6, 17]

    def test_shard_hash_columns_bit_identical(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        vec = shard_hash_columns(trace.canonical_key_columns())
        assert [int(h) for h in vec] == \
            [shard_hash(k) for k in trace.canonical_keys()]


class TestProcessColumns:
    def test_windowed_columns_match_trace(self, compiled16, replay_flows):
        trace, keys, labels = flows_to_trace(replay_flows)
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=32).process_trace(trace, labels=labels, keys=keys)
        cols = trace.to_columns()
        got = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=32).process_columns(
                {"ts": cols["ts"], "length": cols["length"]}, keys,
                labels=labels)
        assert got == ref

    def test_two_stage_columns_match_trace(self, replay_flows):
        from repro.core.fuzzy import FuzzyTree
        rng = np.random.default_rng(2)
        tree = FuzzyTree.fit(rng.uniform(0, 255, size=(300, 60)), n_leaves=16)
        slot_values = [rng.integers(-50, 50, size=(16, 3)) for _ in range(8)]
        trace, keys, labels = flows_to_trace(replay_flows)
        ref = TwoStageRuntime(
            tree, slot_values, n_classes=3, idx_bits=4,
            batch_size=32).process_trace(trace, labels=labels, keys=keys)
        assert ref
        cols = trace.to_columns(payload_bytes=60)
        got = TwoStageRuntime(
            tree, slot_values, n_classes=3, idx_bits=4,
            batch_size=32).process_columns(
                {"ts": cols["ts"], "payload": cols["payload"]}, keys,
                labels=labels)
        assert got == ref

    def test_missing_columns_rejected(self, compiled16, replay_flows):
        trace, keys, _labels = flows_to_trace(replay_flows)
        runtime = WindowedClassifierRuntime(compiled16, feature_mode="stats")
        with pytest.raises(ValueError, match="missing replay columns"):
            runtime.process_columns({"ts": trace.packet_columns()["ts"]}, keys)
        with pytest.raises(ValueError, match="keys for"):
            runtime.process_columns(trace.to_columns(), keys[:-1])


class TestParallelEquivalence:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cached", [False, True])
    def test_bit_identical_to_serial_and_unsharded(self, compiled16,
                                                   replay_flows, n_workers,
                                                   cached):
        scalar_ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        assert scalar_ref
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, cached),
            n_shards=n_workers, scheduler=BatchScheduler(batch_size=32))
        serial_ref = serial.serve_flows(replay_flows)
        assert serial_ref == scalar_ref      # ample capacity: sharding exact
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, cached),
                n_workers=n_workers,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            got = dispatcher.serve_flows(replay_flows)
        assert got == serial_ref
        if cached:
            assert dispatcher.cache_stats.lookups == len(scalar_ref)
            assert dispatcher.cache_stats.lookups == \
                serial.cache_stats.lookups

    @pytest.mark.parametrize("n_workers", (2, 4))
    @pytest.mark.parametrize("cached", [False, True])
    def test_bit_identical_under_eviction_churn(self, compiled16,
                                                replay_flows, n_workers,
                                                cached):
        """Tiny per-replica register capacity: FIFO eviction churns, the
        parallel decisions still match the serial dispatcher exactly."""
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, cached, capacity=4),
            n_shards=n_workers, scheduler=BatchScheduler(batch_size=32))
        serial_ref = serial.serve_flows(replay_flows)
        assert sum(rt.state.evictions for rt in serial.runtimes) > 0
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, cached, capacity=4),
                n_workers=n_workers,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            assert dispatcher.serve_flows(replay_flows) == serial_ref

    @pytest.mark.parametrize("capacity", (4, 1_000_000))
    def test_cache_never_changes_parallel_decisions(self, compiled16,
                                                    replay_flows, capacity):
        def serve(cached):
            with ParallelDispatcher(
                    runtime_factory=_factory(compiled16, cached,
                                             capacity=capacity),
                    n_workers=2,
                    scheduler=BatchScheduler(batch_size=32)) as dispatcher:
                return dispatcher.serve_flows(replay_flows)
        assert serve(True) == serve(False)

    def test_replica_state_persists_across_serves(self, compiled16,
                                                  replay_flows):
        """Workers keep register state between serve calls, exactly like the
        serial dispatcher's long-lived replicas."""
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, False), n_shards=2,
            scheduler=BatchScheduler(batch_size=32))
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, False), n_workers=2,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            first = dispatcher.serve_flows(replay_flows)
            second = dispatcher.serve_flows(replay_flows)
        assert first == serial.serve_flows(replay_flows)
        assert second == serial.serve_flows(replay_flows)
        # Warm windows decide from the first packet: more decisions.
        assert len(second) > len(first)


class TestParallelDispatcherMechanics:
    def test_telemetry_populated(self, compiled16, replay_flows):
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, True), n_workers=3,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            decisions = dispatcher.serve_flows(replay_flows)
            assert decisions
            assert dispatcher.wall_seconds > 0
            assert len(dispatcher.shard_seconds) == 3
            assert dispatcher.flush_stats.total >= 3
            assert dispatcher.cache_stats.lookups == len(decisions)

    def test_serve_trace_without_labels(self, compiled16, replay_flows):
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, False),
                n_workers=2) as dispatcher:
            decisions = dispatcher.serve_trace(Trace.from_flows(replay_flows))
        assert decisions
        assert all(d.flow_label == -1 for d in decisions)
        seqs = [d.seq for d in decisions]
        assert seqs == sorted(seqs)

    def test_close_then_serve_restarts_cold(self, compiled16, replay_flows):
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        first = dispatcher.serve_flows(replay_flows)
        dispatcher.close()
        assert not dispatcher.started
        assert dispatcher.serve_flows(replay_flows) == first   # cold again
        dispatcher.close()
        dispatcher.close()                                     # idempotent

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(runtime_factory=lambda: None, n_workers=0)

    def test_serve_chunk_in_process(self, compiled16, replay_flows):
        """The worker-side chunk replay, driven without a process."""
        trace, keys, labels = flows_to_trace(replay_flows)
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=32).process_trace(trace, labels=labels, keys=keys)
        n = len(trace.packets)
        spec = RingSpec(depth=2, chunk_rows=n)
        segments = RingSegments(1, spec)
        try:
            views = spec.ingress_views(segments.ingress[0].buf, 1, n)
            write_ingress_chunk(views, _trace_sources(trace, labels),
                                np.arange(n))
            runtime = WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=32,
                decision_cache=FlowDecisionCache(1024))
            op, slot, produced, seconds = serve_chunk(
                runtime, spec, segments.ingress[0], segments.egress[0], 1, n)
            assert (op, slot) == ("chunk_ok", 1)
            assert produced == len(ref)
            assert seconds > 0
            out = spec.egress_views(segments.egress[0].buf, 1, produced)
            assert out["seq"].tolist() == [d.seq for d in ref]
            assert out["predicted"].tolist() == [d.predicted for d in ref]
            assert runtime.decision_cache.stats.lookups == len(ref)
        finally:
            segments.close()
        assert _leaked_segments(segments.segment_names) == []

    def test_worker_main_in_process(self, compiled16, replay_flows):
        """The worker loop against a scripted in-process connection.

        The second chunk descriptor names a slot past the ring depth — the
        worker must ack it with ``chunk_err`` and keep serving (the loop
        survives per-chunk failures so the driver can drain the ring).
        """
        trace, _keys, labels = flows_to_trace(replay_flows)
        n = len(trace.packets)
        spec = RingSpec(depth=2, chunk_rows=n)
        segments = RingSegments(1, spec)

        class FakeConn:
            def __init__(self, inbox):
                self.inbox = list(inbox)
                self.sent = []
                self.closed = False

            def recv(self):
                return self.inbox.pop(0)

            def send(self, msg):
                self.sent.append(msg)

            def close(self):
                self.closed = True

        try:
            views = spec.ingress_views(segments.ingress[0].buf, 0, n)
            write_ingress_chunk(views, _trace_sources(trace, labels),
                                np.arange(n))
            ingress_name, egress_name = segments.names(0)
            conn = FakeConn([("warm",), ("serve", None, True),
                             ("chunk", 0, n), ("chunk", 5, n),
                             ("end",), None])
            worker_main(conn, _factory(compiled16, False), ingress_name,
                        egress_name, spec)
            assert conn.closed
            warm, chunk_ok, chunk_err, done = conn.sent
            assert warm == ("ok", None)
            assert chunk_ok[:2] == ("chunk_ok", 0) and chunk_ok[2] > 0
            assert chunk_err[:2] == ("chunk_err", 5)
            assert "ring slot 5 out of range" in chunk_err[2]
            assert done[0] == "done" and done[1]["error"] is None
            assert done[1]["seconds"] > 0
        finally:
            segments.close()
        assert _leaked_segments(segments.segment_names) == []

    def test_worker_failure_surfaces_in_parent(self, compiled16, replay_flows):
        def broken_factory():
            raise RuntimeError("replica build exploded")
        dispatcher = ParallelDispatcher(runtime_factory=broken_factory,
                                        n_workers=2)
        try:
            with pytest.raises(RuntimeError, match="replica build exploded"):
                dispatcher.serve_flows(replay_flows)
        finally:
            dispatcher.close()


class TestCloseLifecycle:
    """close() must be callable unconditionally — the engine relies on it —
    and every shared-memory segment must be unlinked on every exit path."""

    def test_double_close_without_start(self, compiled16):
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        assert dispatcher.segment_names == []      # nothing created yet
        dispatcher.close()
        dispatcher.close()
        assert not dispatcher.started

    def test_close_unlinks_segments(self, compiled16):
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        dispatcher.start()
        names = dispatcher.segment_names
        assert len(names) == 4                     # ingress + egress per worker
        assert _leaked_segments(names) == names    # live while started
        dispatcher.close()
        assert dispatcher.segment_names == []
        assert _leaked_segments(names) == []
        dispatcher.close()                         # idempotent after unlink
        assert _leaked_segments(names) == []

    def test_close_after_failed_start(self):
        def broken_factory():
            raise RuntimeError("replica build exploded")
        before = _shm_listing()
        dispatcher = ParallelDispatcher(runtime_factory=broken_factory,
                                        n_workers=2)
        with pytest.raises(RuntimeError, match="replica build exploded"):
            dispatcher.start()
        # start() already tore the fleet down; close stays a safe no-op.
        assert not dispatcher.started
        dispatcher.close()
        dispatcher.close()
        after = _shm_listing()
        if before is not None:
            assert after - before == set()         # no segment survived

    def test_exit_during_in_flight_error(self, replay_flows):
        """__exit__'s close runs while a serve error is propagating.

        ``object()`` builds fine (so the warm ping — and therefore
        ``__enter__`` — succeeds; the match below excludes the warm-ping
        wording to prove it) but cannot replay a chunk, so the failure
        happens inside the ``with`` body and close() runs from ``__exit__``
        with the RuntimeError in flight.
        """
        dispatcher = ParallelDispatcher(runtime_factory=lambda: object(),
                                        n_workers=2)
        names = []
        with pytest.raises(RuntimeError, match=r"worker 0 failed:(?!.*build)"):
            with dispatcher:
                assert dispatcher.started             # __enter__ succeeded
                names = dispatcher.segment_names
                dispatcher.serve_flows(replay_flows)  # replica can't serve
        assert not dispatcher.started
        assert names and _leaked_segments(names) == []
        dispatcher.close()

    def test_close_with_dead_worker(self, compiled16, replay_flows):
        """A worker killed out from under us must not break close()."""
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        dispatcher.start()
        first_names = dispatcher.segment_names
        dispatcher._workers[0].terminate()
        dispatcher._workers[0].join()
        dispatcher.close()
        assert not dispatcher.started
        assert _leaked_segments(first_names) == []
        # And the dispatcher is still restartable with a cold fleet
        # (fresh segments, also unlinked on the next close).
        assert dispatcher.serve_flows(replay_flows)
        second_names = dispatcher.segment_names
        dispatcher.close()
        assert _leaked_segments(second_names) == []

    def test_gc_backstop_unlinks_segments(self, compiled16):
        """A dispatcher dropped without close() must not leak segments:
        the ``weakref.finalize`` backstop unlinks on garbage collection."""
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        dispatcher.start()
        names = dispatcher.segment_names
        assert _leaked_segments(names) == names
        del dispatcher
        gc.collect()
        assert _leaked_segments(names) == []


class TestRingEdges:
    """Wraparound, backpressure, and ordering edges of the ring transport.

    Tiny rings force every edge: slots are reused many times per serve
    (wraparound), scheduler spans overflow the slot capacity (chunk
    splitting), and with ``ring_depth=1`` the driver provably stalls on a
    full ring (backpressure). Decisions — and the flush/cache counters —
    must stay bit-identical to the serial dispatcher through all of it.
    """

    @pytest.mark.parametrize("ring_depth,ring_chunk",
                             [(1, 8), (2, 8), (1, 4), (3, 16)])
    def test_tiny_rings_bit_identical(self, compiled16, replay_flows,
                                      ring_depth, ring_chunk):
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, True), n_shards=2,
            scheduler=BatchScheduler(batch_size=32))
        ref = serial.serve_flows(replay_flows)
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, True), n_workers=2,
                scheduler=BatchScheduler(batch_size=32),
                ring_depth=ring_depth, ring_chunk=ring_chunk) as dispatcher:
            got = dispatcher.serve_flows(replay_flows)
            assert got == ref
            # Chunk splitting is pure transport geometry: the scheduler's
            # flush accounting is identical to the serial dispatcher's.
            assert dispatcher.flush_stats.total == serial.flush_stats.total
            assert dispatcher.cache_stats.lookups == \
                serial.cache_stats.lookups
            if ring_depth == 1:
                # One slot per worker and several chunks per shard: the
                # driver must have waited on a full ring at least once.
                assert dispatcher.ring_stalls > 0

    def test_unscheduled_fixed_strides(self, compiled16, replay_flows):
        """Without a scheduler, shards chunk by fixed ring-slot strides."""
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, False), n_shards=2)
        ref = serial.serve_flows(replay_flows)
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, False), n_workers=2,
                ring_depth=2, ring_chunk=8) as dispatcher:
            assert dispatcher.serve_flows(replay_flows) == ref

    def test_out_of_order_completion_merges_in_order(self, compiled16,
                                                     replay_flows):
        """Four workers drain at different speeds; egress chunks land in
        arbitrary arrival order — the merge still yields global order."""
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, True), n_workers=4,
                scheduler=BatchScheduler(batch_size=8),
                ring_depth=2, ring_chunk=8) as dispatcher:
            decisions = dispatcher.serve_trace(Trace.from_flows(replay_flows))
        assert decisions
        seqs = [d.seq for d in decisions]
        assert seqs == sorted(seqs)

    def test_spawn_start_method_smoke(self, compiled16, replay_flows):
        """The shm path is start-method agnostic: segments travel by name,
        so spawn-started workers (picklable factory) serve identically."""
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, False), n_shards=2,
            scheduler=BatchScheduler(batch_size=32))
        ref = serial.serve_flows(replay_flows)
        dispatcher = ParallelDispatcher(
            runtime_factory=_SpawnFactory(compiled16), n_workers=2,
            scheduler=BatchScheduler(batch_size=32),
            start_method="spawn", ring_depth=2, ring_chunk=16)
        with dispatcher:
            got = dispatcher.serve_flows(replay_flows)
            names = dispatcher.segment_names
        assert got == ref
        assert _leaked_segments(names) == []

    def test_differential_ring_geometries(self):
        """The differential harness proves tiny-ring parallel serving
        bit-identical (decisions AND stats shape) to local and sharded."""
        import repro.eval.differential as dfl
        from repro.net import build_scenario

        workload = build_scenario("microburst").generate(seed=7,
                                                         flows_scale=0.2)
        cases = [
            dfl.EngineCase("windowed", "local", 1, "index", "l1", 64),
            dfl.EngineCase("windowed", "sharded", 2, "index", "l1", 64),
            dfl.EngineCase("windowed", "parallel", 2, "index", "l1", 64,
                           ring_depth=1, ring_chunk=8),
            dfl.EngineCase("windowed", "parallel", 2, "index", "l1", 64,
                           ring_depth=2, ring_chunk=16),
        ]
        report = dfl.run_differential(workload, cases=cases)
        assert report.ok, report.summary()
