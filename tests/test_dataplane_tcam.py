"""Vectorized TCAM engine: bit-identity with the scalar TCAM reference
(`lookup_prioritized`), the tree walk, and the fancy-index SRAM path — from
single packed tables up through the full serving stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.crc import consecutive_range_coding, lookup_prioritized
from repro.core.fuzzy import FuzzyTree
from repro.core.mapping import LOOKUP_BACKENDS
from repro.dataplane.runtime import TwoStageRuntime, WindowedClassifierRuntime
from repro.dataplane.tcam import (PackedTernaryTable, TcamSegment,
                                  compile_segment_table, encode_keys,
                                  tcam_table_report)
from repro.errors import CompilationError, ShapeError
from repro.serving import BatchScheduler, FlowDecisionCache
from repro.serving.dispatcher import ShardedDispatcher   # un-deprecated core

ENCODINGS = ("flat", "levelwise")


class TestPackedTernaryTable:
    @given(st.sets(st.integers(0, 254), min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_crc_pack_matches_scalar_reference(self, bounds):
        """A packed CRC table answers every 8-bit key exactly like
        first-match-wins lookup_prioritized over the same entries."""
        entries = consecutive_range_coding(sorted(bounds), 8)
        table = PackedTernaryTable.from_prioritized(entries, key_bits=8)
        keys = np.arange(256)[:, None]
        want = [lookup_prioritized(entries, int(k)) for k in range(256)]
        assert table.lookup(keys).tolist() == want

    def test_priority_tie_break_is_entry_order(self):
        # Two wildcard entries with equal priority: the scalar reference
        # keeps the first; argmin must pick the same one.
        from repro.core.crc import PrioritizedEntry, TernaryMatch
        wild = TernaryMatch(value=0, mask=0, width=8)
        entries = [PrioritizedEntry(wild, priority=3, result=7),
                   PrioritizedEntry(wild, priority=3, result=9)]
        table = PackedTernaryTable.from_prioritized(entries, key_bits=8)
        assert table.lookup(np.array([[5]]))[0] == \
            lookup_prioritized(entries, 5) == 7

    def test_no_match_raises(self):
        entries = consecutive_range_coding([10], 8)[:-1]   # drop catch-all
        table = PackedTernaryTable.from_prioritized(entries, key_bits=8)
        with pytest.raises(LookupError):
            table.lookup(np.array([[200]]))

    def test_non_integral_keys_rejected(self):
        table = PackedTernaryTable.from_prioritized(
            consecutive_range_coding([10], 8), key_bits=8)
        with pytest.raises(ShapeError):
            table.lookup(np.array([[1.5]]))

    def test_integral_float_keys_accepted(self):
        table = PackedTernaryTable.from_prioritized(
            consecutive_range_coding([10], 8), key_bits=8)
        assert table.lookup(np.array([[7.0], [200.0]])).tolist() == [0, 1]

    def test_signed_excess_k_encoding_orders(self):
        enc = encode_keys(np.array([[-128], [-1], [0], [127]]), 8, signed=True)
        assert enc[:, 0].tolist() == [0, 127, 128, 255]
        assert encode_keys(np.array([[300], [-300]]), 8, True)[:, 0].tolist() \
            == [255, 0]                                    # fixed-width clamp


def _fit_tree(rng, n, d, n_leaves, lo=0, hi=255, integral=True):
    x = rng.uniform(lo, hi, size=(n, d))
    if integral:
        x = np.floor(x)
    return FuzzyTree.fit(x, n_leaves=n_leaves)


class TestTcamSegment:
    @pytest.mark.parametrize("encoding", ENCODINGS)
    @pytest.mark.parametrize("signed", [False, True])
    def test_both_encodings_match_tree_walk(self, encoding, signed):
        rng = np.random.default_rng(3)
        lo = -128 if signed else 0
        hi = lo + 255
        tree = _fit_tree(rng, 400, 3, 16, lo=lo, hi=hi)
        seg = TcamSegment.from_tree(tree, key_bits=8, signed=signed,
                                    encoding=encoding)
        keys = rng.integers(lo, hi + 1, size=(600, 3))
        np.testing.assert_array_equal(seg.lookup_indices(keys),
                                      tree.predict_index(keys))

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_float_threshold_tree_covers_all_integer_keys(self, encoding):
        """Trees fitted on float data have non-integer thresholds; the
        leaf-box off-by-one fix means every integer key still lands in
        exactly one entry set."""
        rng = np.random.default_rng(7)
        tree = _fit_tree(rng, 300, 2, 8, integral=False)
        seg = TcamSegment.from_tree(tree, key_bits=8, encoding=encoding)
        a, b = np.meshgrid(np.arange(0, 256, 5), np.arange(0, 256, 5))
        keys = np.column_stack([a.ravel(), b.ravel()])
        np.testing.assert_array_equal(seg.lookup_indices(keys),
                                      tree.predict_index(keys))

    def test_out_of_domain_keys_clamp_like_the_tree(self):
        rng = np.random.default_rng(5)
        tree = _fit_tree(rng, 300, 2, 8)
        seg = TcamSegment.from_tree(tree, key_bits=8)
        keys = rng.integers(-500, 800, size=(300, 2))
        # Fitted thresholds sit strictly inside the domain, so the fixed-
        # width clamp routes exactly like the unbounded tree walk.
        np.testing.assert_array_equal(seg.lookup_indices(keys),
                                      tree.predict_index(keys))

    def test_auto_picks_min_entry_encoding(self):
        rng = np.random.default_rng(11)
        tree = _fit_tree(rng, 500, 8, 16)   # wide segment: flat blows up
        seg = TcamSegment.from_tree(tree, key_bits=8, encoding="auto")
        assert seg.encoding == "levelwise"
        assert seg.n_entries == tree.tcam_entries(key_bits=8)

    def test_single_leaf_tree(self):
        tree = FuzzyTree.fit(np.zeros((5, 2)), n_leaves=1)
        seg = TcamSegment.from_tree(tree, key_bits=8)
        assert seg.lookup_indices(np.array([[3, 200]])).tolist() == [0]

    def test_unknown_encoding_rejected(self):
        tree = FuzzyTree.fit(np.zeros((5, 2)), n_leaves=1)
        with pytest.raises(CompilationError):
            TcamSegment.from_tree(tree, encoding="sram")

    def test_wrong_dim_rejected(self):
        rng = np.random.default_rng(0)
        seg = TcamSegment.from_tree(_fit_tree(rng, 100, 2, 4), key_bits=8)
        with pytest.raises(ShapeError):
            seg.lookup_indices(np.zeros((4, 3), dtype=np.int64))

    @pytest.mark.parametrize("encoding", ENCODINGS)
    def test_scalar_prioritized_crosscheck(self, encoding):
        """Every materialized table, packed into scalar PrioritizedEntry
        form, reproduces the vectorized lookup through lookup_prioritized."""
        rng = np.random.default_rng(13)
        tree = _fit_tree(rng, 300, 2, 8)
        seg = TcamSegment.from_tree(tree, key_bits=8, encoding=encoding)
        for packed in seg.node_tables():
            keys = rng.integers(0, 256, size=(64, packed.n_fields))
            entries = packed.entries()
            scalar = [lookup_prioritized(entries, k)
                      for k in packed.pack_keys(keys)]
            assert packed.lookup(keys).tolist() == scalar


class TestCompiledModelBackend:
    def test_forward_int_backends_bit_identical(self, compiled16):
        rng = np.random.default_rng(1)
        x = rng.integers(0, 256, size=(400, 16))
        np.testing.assert_array_equal(
            compiled16.forward_int(x),
            compiled16.forward_int(x, lookup_backend="tcam"))

    def test_predict_and_scores_backends(self, compiled16):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 256, size=(100, 16))
        np.testing.assert_array_equal(
            compiled16.predict(x), compiled16.predict(x, lookup_backend="tcam"))
        np.testing.assert_array_equal(
            compiled16.predict_scores(x),
            compiled16.predict_scores(x, lookup_backend="tcam"))

    def test_empty_batch_supported(self, compiled16):
        out = compiled16.forward_int(np.zeros((0, 16), dtype=np.int64),
                                     lookup_backend="tcam")
        assert out.shape[0] == 0

    def test_unknown_backend_rejected(self, compiled16):
        with pytest.raises(ValueError, match="lookup_backend"):
            compiled16.forward_int(np.zeros((1, 16), dtype=np.int64),
                                   lookup_backend="sram")
        # Per-layer and per-table entry points validate too — a typo must
        # never silently fall back to the index path.
        layer = compiled16.layers[0]
        with pytest.raises(ValueError, match="lookup_backend"):
            layer.forward_int(np.zeros((1, layer.in_dim), dtype=np.int64),
                              lookup_backend="TCAM")
        table = layer.tables[0]
        d = table.segment[1] - table.segment[0]
        with pytest.raises(ValueError, match="lookup_backend"):
            table.lookup(np.zeros((1, d), dtype=np.int64),
                         lookup_backend="tcan")
        assert set(LOOKUP_BACKENDS) == {"index", "tcam", "tcam-pruned"}

    def test_segment_table_paths_agree(self, compiled16):
        rng = np.random.default_rng(4)
        for layer in compiled16.layers:
            for table in layer.tables:
                lo = -(1 << (table.in_bits - 1)) if table.in_signed else 0
                hi = lo + (1 << table.in_bits) - 1
                d = table.segment[1] - table.segment[0]
                x = rng.integers(lo, hi + 1, size=(200, d))
                np.testing.assert_array_equal(
                    table.lookup(x), table.lookup(x, lookup_backend="tcam"))
                if table.kind == "fuzzy":
                    np.testing.assert_array_equal(table.tcam_indices(x),
                                                  table.fuzzy_indices(x))
                    assert table.tcam_segment() is table.tcam_segment()

    def test_exact_table_has_no_tcam_form(self):
        from repro.core.mapping import SegmentTable
        from repro.utils.fixed_point import QFormat
        table = SegmentTable(segment=(0, 1), kind="exact",
                             values_int=np.zeros((256, 2), dtype=np.int64),
                             out_format=QFormat(8, 0), in_bits=8)
        with pytest.raises(CompilationError):
            compile_segment_table(table)

    def test_table_report_shape(self, compiled16):
        rows = tcam_table_report(compiled16)
        assert rows and all(r["encoding"] in ENCODINGS for r in rows)
        assert all(r["entries"] == min(r["entries_flat"],
                                       r["entries_levelwise"]) for r in rows)


class TestRuntimeBackend:
    def test_windowed_tcam_matches_index_and_scalar(self, compiled16,
                                                    replay_flows):
        scalar = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        index = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=32).process_flows(replay_flows)
        tcam = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=32,
            lookup_backend="tcam").process_flows(replay_flows)
        assert scalar == index == tcam

    def test_windowed_scalar_path_uses_backend(self, compiled16, replay_flows):
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        got = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            lookup_backend="tcam").process_flows_scalar(replay_flows)
        assert got == ref

    def test_set_lookup_backend_validates(self, compiled16):
        runtime = WindowedClassifierRuntime(compiled16, feature_mode="stats")
        with pytest.raises(ValueError, match="lookup_backend"):
            runtime.set_lookup_backend("sram")
        with pytest.raises(ValueError, match="CompiledModel"):
            WindowedClassifierRuntime(object(), feature_mode="stats",
                                      lookup_backend="tcam")

    def test_two_stage_tcam_matches_index(self, replay_flows):
        rng = np.random.default_rng(2)
        tree = FuzzyTree.fit(rng.uniform(0, 255, size=(300, 60)), n_leaves=16)
        slot_values = [rng.integers(-50, 50, size=(16, 3)) for _ in range(8)]
        def run(backend):
            return TwoStageRuntime(
                tree, slot_values, n_classes=3, idx_bits=4, batch_size=32,
                lookup_backend=backend).process_flows(replay_flows)
        assert run("tcam") == run("index")

    def test_two_stage_rejects_tcam_with_feature_fn(self):
        rng = np.random.default_rng(2)
        tree = FuzzyTree.fit(rng.uniform(0, 255, size=(100, 60)), n_leaves=4)
        slot_values = [rng.integers(-5, 5, size=(4, 3)) for _ in range(8)]
        with pytest.raises(ValueError, match="feature_fn"):
            TwoStageRuntime(tree, slot_values, n_classes=3,
                            feature_fn=lambda x, ipd: x,
                            lookup_backend="tcam")


class TestDispatcherBackend:
    @pytest.mark.parametrize("cached", [False, True])
    def test_sharded_tcam_matches_index(self, compiled16, replay_flows,
                                        cached):
        def factory():
            cache = FlowDecisionCache(capacity=4096) if cached else None
            return WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=32,
                decision_cache=cache)
        ref = ShardedDispatcher(
            runtime_factory=factory, n_shards=2,
            scheduler=BatchScheduler(batch_size=32)).serve_flows(replay_flows)
        got = ShardedDispatcher(
            runtime_factory=factory, n_shards=2,
            scheduler=BatchScheduler(batch_size=32),
            lookup_backend="tcam").serve_flows(replay_flows)
        assert got == ref
        assert ref

    def test_parallel_tcam_matches_index(self, compiled16, replay_flows):
        from repro.serving.parallel import ParallelDispatcher
        def factory():
            return WindowedClassifierRuntime(
                compiled16, feature_mode="stats", batch_size=32,
                decision_cache=FlowDecisionCache(capacity=4096))
        ref = ShardedDispatcher(
            runtime_factory=factory, n_shards=2,
            scheduler=BatchScheduler(batch_size=32)).serve_flows(replay_flows)
        with ParallelDispatcher(
                runtime_factory=factory, n_workers=2,
                scheduler=BatchScheduler(batch_size=32),
                lookup_backend="tcam") as dispatcher:
            got = dispatcher.serve_flows(replay_flows)
        assert got == ref

    def test_bad_backend_fails_before_fork(self, compiled16):
        from repro.serving.parallel import ParallelDispatcher
        with pytest.raises(ValueError, match="lookup_backend"):
            ParallelDispatcher(
                runtime_factory=lambda: WindowedClassifierRuntime(
                    compiled16, feature_mode="stats"),
                n_workers=1, lookup_backend="sram")

    def test_unsupported_replica_fails_worker_start(self):
        """A backend the replica can't serve (valid name, wrong model) still
        surfaces from the warm-up ping with the worker's traceback."""
        from repro.serving.parallel import ParallelDispatcher
        dispatcher = ParallelDispatcher(
            runtime_factory=lambda: WindowedClassifierRuntime(
                object(), feature_mode="stats"),
            n_workers=1, lookup_backend="tcam")
        with pytest.raises(RuntimeError, match="CompiledModel"):
            dispatcher.start()
