"""Ablation: Primitive Fusion (Table 1 / Figure 5 design claims).

Measures lookup rounds, tables, and placement footprint of the same trained
MLP compiled with fusion off, basic fusion, and linearized (advanced ❷).
Shape: basic fusion collapses 10 operator rounds to 2 with no accuracy
cost; linearization reaches 1 round but loses accuracy.
"""

import numpy as np

from repro.core import PegasusCompiler, CompilerConfig
from repro.dataplane import place_model, TOFINO2
from repro.eval.metrics import macro_f1
from repro.eval.reporting import render_table
from repro.eval.runner import prepare_dataset
from repro.models import build_model


def _run(scale):
    train_v, _v, test_v, n_classes = prepare_dataset(
        "peerrush", scale["flows_per_class"], scale["seed"])
    model = build_model("MLP-B", n_classes, seed=scale["seed"])
    model.train(train_v)
    calib = train_v["stats"].astype(np.int64)
    out = []
    for level in ("none", "basic", "linearized"):
        result = PegasusCompiler(CompilerConfig(
            fusion=level, fuzzy_leaves=256)).compile_sequential(model.net, calib)
        pipeline = place_model(result.compiled, TOFINO2)
        f1 = macro_f1(test_v["y"],
                      result.compiled.predict(test_v["stats"].astype(np.int64)),
                      n_classes)
        out.append({
            "fusion": level,
            "rounds": result.fused_lookup_rounds,
            "tables": result.compiled.num_tables,
            "stages": pipeline.n_stages_used,
            "F1": f1,
        })
    return out


def test_ablation_fusion(benchmark, bench_scale):
    rows = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    print()
    print(render_table(["fusion", "rounds", "tables", "stages", "F1"],
                       [[r[k] for k in ("fusion", "rounds", "tables", "stages", "F1")]
                        for r in rows],
                       title="Ablation — primitive fusion levels"))
    none, basic, linear = rows
    assert none["rounds"] > basic["rounds"] > linear["rounds"] == 1
    assert basic["stages"] <= none["stages"]
    # Basic fusion is (near) lossless; linearization is the lossy extreme.
    assert basic["F1"] >= none["F1"] - 0.05
    assert basic["F1"] >= linear["F1"] - 0.02
