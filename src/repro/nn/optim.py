"""Optimizers: SGD with momentum, and Adam."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    def __init__(self, params: list[Parameter]):
        self.params = list(params)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            v *= self.momentum
            v += g
            p.data -= self.lr * v


class Adam(Optimizer):
    def __init__(self, params: list[Parameter], lr: float = 1e-3,
                 betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
