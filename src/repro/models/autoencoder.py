"""AutoEncoder: unsupervised anomaly detection on raw packet sequences (§7.4).

Float model: Embedding -> FC encoder -> bottleneck -> FC decoder,
reconstructing the window's normalized (length, IPD) tokens; the anomaly
score is the mean absolute reconstruction error (MAE). Trained on benign
traffic only.

Dataplane compilation uses Advanced Primitive Fusion: the *score function*
is expressed as a Neural Additive Model — one fuzzy-matched table per packet
position whose values are least-squares fitted to the float model's MAE.
Calibration mixes benign windows with uniform-random token noise so the
tables learn "far from the benign manifold means a high score" without ever
seeing attack traffic.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core import additive_program, materialize, MaterializeConfig
from repro.core.finetune import refine_values_least_squares
from repro.core.primitives import General
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.models.base import TrafficModel
from repro.net.features import SEQ_WINDOW, SEQ_TOKENS
from repro.utils.rng import new_rng


class _AENet(nn.Module):
    """Embedding -> encoder -> bottleneck -> decoder -> token reconstruction."""

    def __init__(self, emb_dim: int, hidden: int, bottleneck: int, rngs):
        super().__init__()
        self.seq = nn.Sequential(
            nn.Embedding(256, emb_dim, rng=int(rngs[0])),
            nn.Flatten(),
            nn.BatchNorm1d(SEQ_TOKENS * emb_dim),
            nn.Linear(SEQ_TOKENS * emb_dim, hidden, rng=int(rngs[1])),
            nn.ReLU(),
            nn.Linear(hidden, bottleneck, rng=int(rngs[2])),
            nn.BatchNorm1d(bottleneck),
            nn.Linear(bottleneck, hidden, rng=int(rngs[3])),
            nn.ReLU(),
            nn.Linear(hidden, SEQ_TOKENS, rng=int(rngs[4])),
        )

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.seq.forward(x.astype(np.int64))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.seq.backward(grad_out)


class AutoEncoderModel(TrafficModel):
    """Unsupervised detector; ``score`` replaces ``predict`` for this model."""

    name = "AutoEncoder"
    feature_view = "seq"

    def __init__(self, n_classes: int = 0, seed: int = 0, emb_dim: int = 4,
                 hidden: int = 32, bottleneck: int = 8, epochs: int = 30,
                 fuzzy_leaves: int = 64):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=5)
        self.net = _AENet(emb_dim, hidden, bottleneck, rngs)
        self.epochs = epochs
        self.fuzzy_leaves = fuzzy_leaves

    @staticmethod
    def _targets(x: np.ndarray) -> np.ndarray:
        return x.astype(np.float64) / 255.0

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = self.view(views, "seq")

        def loss_fn(pred, batch_x):
            return nn.MAELoss()(pred, self._targets(batch_x))

        # fit() passes (output, y); here y is the input itself.
        nn.fit(self.net, x, x, loss_fn,
               nn.Adam(self.net.parameters(), lr=0.005),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def score_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        """Full-precision MAE anomaly score (higher = more anomalous)."""
        self._require_trained()
        self.net.train_mode(False)
        x = self.view(views, "seq")
        recon = self.net.forward(x)
        return np.abs(recon - self._targets(x)).mean(axis=1)

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        return self.score_float(views)

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        self._require_trained()
        rng = new_rng(self.seed)
        benign = self.view(views, "seq").astype(np.int64)
        noise = rng.integers(0, 256, size=benign.shape)
        calib = np.concatenate([benign, noise])
        targets = self.score_float({"seq": calib})[:, None]

        partition = [(2 * i, 2 * i + 2) for i in range(SEQ_WINDOW)]
        mean_share = float(targets.mean()) / SEQ_WINDOW
        fns = [General(fn=lambda seg, m=mean_share: np.full((len(seg), 1), m),
                       in_dim=2, out_dim=1, name=f"ae_seg{i}")
               for i, _ in enumerate(partition)]
        program = additive_program(SEQ_TOKENS, partition,
                                   [f.fn for f in fns], out_dim=1)
        compiled = materialize(
            program, calib,
            MaterializeConfig(fuzzy_leaves=self.fuzzy_leaves, act_bits=16),
            name="autoencoder")
        refine_values_least_squares(compiled.layers[0], calib, targets)
        self.compiled = compiled

    def score_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        """Integer-domain anomaly score from the additive tables."""
        self._require_compiled()
        x = self.view(views, "seq").astype(np.int64)
        return self.compiled.predict_scores(x)[:, 0]

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        return self.score_dataplane(views)

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def input_scale_bits(self) -> int:
        return SEQ_TOKENS * 8

    def flow_layout(self) -> FlowStateLayout:
        # Paper Table 6: AutoEncoder keeps the full token window (240 b/flow).
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=SEQ_WINDOW - 1),
            RegisterField("ipd_hist", 8, count=SEQ_WINDOW - 1),
            RegisterField("score_ema", 8, count=SEQ_WINDOW + 5),
        ])  # 240 bits/flow
