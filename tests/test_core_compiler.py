"""End-to-end compiler tests, including centroid refinement."""

import numpy as np
import pytest

from repro import nn
from repro.errors import CompilationError
from repro.core import (
    PegasusCompiler, CompilerConfig, even_partition,
    refine_values_least_squares, SoftTreeFineTuner, materialize,
    MaterializeConfig,
)
from repro.core.primitives import Affine, MapStep, PrimitiveProgram, SumReduceStep


def _train_toy_mlp(seed=0, n=800, d=8, classes=3):
    """A small trained MLP on separable uint8 data."""
    rng = np.random.default_rng(seed)
    centers = rng.uniform(40, 215, size=(classes, d))
    y = rng.integers(0, classes, size=n)
    x = np.clip(centers[y] + rng.normal(0, 18, size=(n, d)), 0, 255)
    x_int = np.floor(x).astype(np.int64)
    model = nn.Sequential(
        nn.BatchNorm1d(d),
        nn.Linear(d, 16, rng=0),
        nn.ReLU(),
        nn.BatchNorm1d(16),
        nn.Linear(16, classes, rng=1),
    )
    nn.fit(model, x_int.astype(np.float64), y, nn.CrossEntropyLoss(),
           nn.Adam(model.parameters(), lr=0.01), epochs=30, batch_size=64, rng=0)
    return model, x_int, y


class TestCompileSequential:
    def test_compiled_accuracy_close_to_float(self):
        model, x, y = _train_toy_mlp()
        float_acc = (nn.predict_classes(model, x.astype(np.float64)) == y).mean()
        compiler = PegasusCompiler(CompilerConfig(fuzzy_leaves=64))
        result = compiler.compile_sequential(model, x)
        int_acc = (result.compiled.predict(x) == y).mean()
        assert float_acc > 0.9
        assert int_acc > float_acc - 0.05

    def test_fusion_reduces_lookup_rounds(self):
        model, x, _ = _train_toy_mlp()
        result = PegasusCompiler(CompilerConfig()).compile_sequential(model, x)
        assert result.initial_lookup_rounds == 5
        assert result.fused_lookup_rounds == 2
        assert result.lookups_saved == 3

    def test_fusion_none_keeps_rounds(self):
        model, x, _ = _train_toy_mlp()
        cfg = CompilerConfig(fusion="none", act_bits=8)
        result = PegasusCompiler(cfg).compile_sequential(model, x)
        assert result.fused_lookup_rounds == 5

    def test_linearized_single_round(self):
        model, x, _ = _train_toy_mlp()
        result = PegasusCompiler(CompilerConfig(fusion="linearized")).compile_sequential(model, x)
        assert result.compiled.num_lookup_rounds == 1

    def test_linearized_loses_accuracy_vs_basic(self):
        model, x, y = _train_toy_mlp()
        basic = PegasusCompiler(CompilerConfig(fuzzy_leaves=64)).compile_sequential(model, x)
        linear = PegasusCompiler(
            CompilerConfig(fusion="linearized", fuzzy_leaves=64)).compile_sequential(model, x)
        acc_basic = (basic.compiled.predict(x) == y).mean()
        acc_linear = (linear.compiled.predict(x) == y).mean()
        assert acc_basic >= acc_linear - 0.02  # linearization never helps much

    def test_unknown_fusion_level(self):
        model, x, _ = _train_toy_mlp()
        with pytest.raises(CompilationError):
            PegasusCompiler(CompilerConfig(fusion="maximal")).compile_sequential(model, x)


class TestCompileAdditive:
    def test_additive_single_round(self):
        rng = np.random.default_rng(1)
        x = np.floor(rng.uniform(0, 255, size=(500, 8))).astype(np.int64)
        partition = even_partition(8, 2)
        w = [rng.normal(size=(2, 3)) * 0.05 for _ in partition]

        def make_fn(wi):
            return lambda seg: np.tanh(seg @ wi)

        result = PegasusCompiler(CompilerConfig(fuzzy_leaves=32)).compile_additive(
            partition, [make_fn(wi) for wi in w], out_dim=3, calib_int=x)
        assert result.compiled.num_lookup_rounds == 1
        assert result.compiled.num_tables == len(partition)

    def test_additive_approximates_function(self):
        rng = np.random.default_rng(2)
        x = np.floor(rng.uniform(0, 255, size=(800, 4))).astype(np.int64)
        partition = even_partition(4, 2)

        def f0(seg):
            return np.tanh(seg @ np.array([[0.02], [-0.01]]))

        def f1(seg):
            return np.tanh(seg @ np.array([[0.015], [0.01]]) - 2.0)

        result = PegasusCompiler(CompilerConfig(fuzzy_leaves=64)).compile_additive(
            partition, [f0, f1], out_dim=1, calib_int=x)
        want = f0(x[:, :2].astype(float)) + f1(x[:, 2:].astype(float))
        got = result.compiled.predict_scores(x)
        assert np.abs(got - want).mean() < 0.1


class TestRefinement:
    def _materialized_matmul(self, leaves=8):
        rng = np.random.default_rng(3)
        d_in, d_out = 6, 2
        w = rng.normal(size=(d_in, d_out)) * 0.05
        partition = even_partition(d_in, 2)
        fns = [Affine(w[s:e], np.zeros(d_out)) for s, e in partition]
        program = PrimitiveProgram(
            input_dim=d_in,
            steps=[MapStep(partition, fns), SumReduceStep(len(partition), d_out)])
        x = np.floor(rng.uniform(0, 255, size=(500, d_in))).astype(np.int64)
        model = materialize(program, x, MaterializeConfig(fuzzy_leaves=leaves))
        targets = x.astype(np.float64) @ w
        return model, x, targets

    def _mean_err(self, model, x, targets):
        return float(np.abs(model.predict_scores(x) - targets).mean())

    def test_least_squares_reduces_error(self):
        model, x, targets = self._materialized_matmul()
        before = self._mean_err(model, x, targets)
        refine_values_least_squares(model.layers[0], x, targets)
        after = self._mean_err(model, x, targets)
        assert after <= before + 1e-9

    def test_least_squares_requires_sumreduce(self):
        model, x, targets = self._materialized_matmul()
        model.layers[0].sum_reduce = False
        with pytest.raises(CompilationError):
            refine_values_least_squares(model.layers[0], x, targets)

    def test_soft_tree_tuner_reduces_loss(self):
        model, x, targets = self._materialized_matmul(leaves=4)
        tuner = SoftTreeFineTuner(model.layers[0], lr_values=0.05, lr_thresholds=0.2)
        losses = tuner.fit(x, targets, epochs=15, tune_thresholds=True)
        assert losses[-1] < losses[0]

    def test_soft_tree_values_only(self):
        model, x, targets = self._materialized_matmul(leaves=4)
        before = self._mean_err(model, x, targets)
        tuner = SoftTreeFineTuner(model.layers[0], lr_values=0.05)
        tuner.fit(x, targets, epochs=20, tune_thresholds=False)
        after = self._mean_err(model, x, targets)
        assert after < before * 1.5  # must not blow up; usually improves
