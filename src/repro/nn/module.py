"""Module / Parameter abstractions for the NumPy NN substrate.

Each :class:`Module` implements ``forward`` (caching whatever its backward
pass needs) and ``backward`` (consuming the gradient w.r.t. its output,
accumulating parameter gradients, and returning the gradient w.r.t. its
input). :class:`Sequential` chains modules; that is all the model topology
the paper's six networks require.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable array with an accumulated gradient."""

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def numel(self) -> int:
        return int(self.data.size)

    def __repr__(self) -> str:
        return f"Parameter({self.name}, shape={self.data.shape})"


class Module:
    """Base class for all layers."""

    def __init__(self):
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, including those of child modules."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def children(self) -> list["Module"]:
        kids: list[Module] = []
        for value in self.__dict__.values():
            if isinstance(value, Module):
                kids.append(value)
            elif isinstance(value, (list, tuple)):
                kids.extend(v for v in value if isinstance(v, Module))
        return kids

    def train_mode(self, flag: bool = True) -> "Module":
        """Switch this module (and children) between train and eval behaviour."""
        self.training = flag
        for child in self.children():
            child.train_mode(flag)
        return self

    def eval_mode(self) -> "Module":
        return self.train_mode(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def param_count(self) -> int:
        return sum(p.numel() for p in self.parameters())

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Sequential(Module):
    """Run a list of modules in order; backward runs them in reverse."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.modules = list(modules)

    def append(self, module: Module) -> "Sequential":
        self.modules.append(module)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_out = module.backward(grad_out)
        return grad_out

    def __len__(self) -> int:
        return len(self.modules)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Sequential(*self.modules[idx])
        return self.modules[idx]

    def __iter__(self):
        return iter(self.modules)
