"""Throughput: batched vectorized replay vs per-packet replay.

The batched runtime groups trace packets into NumPy batches, keeps flow
state in preallocated slot-indexed register arrays, and calls the compiled
model once per batch; this bench measures the packets/sec that buys on the
Figure-8 serving workload (benign traffic + unknown attacks) at batch sizes
{1, 32, 256, 1024} and shard counts {1, 4}, every stack built by
``PegasusEngine`` from one ``EngineConfig``. The tentpole target — >= 5x
pps at batch 256 over batch 1 — is asserted, as is decision-count
invariance across every configuration (batching must never change what the
switch decides). Results land in the ``batched`` section of
``BENCH_serving.json`` for the CI regression gate.
"""

from repro.eval.reporting import render_table, update_bench_json
from repro.eval.runner import run_batched_throughput


def _run(scale):
    return run_batched_throughput(flows_per_class=scale["flows_per_class"],
                                  seed=scale["seed"])


def test_throughput_batched(benchmark, bench_scale):
    res = benchmark.pedantic(_run, args=(bench_scale,), rounds=1, iterations=1)
    rows = [[f"batch={b}", cfg["pps"], "-", cfg["decisions"]]
            for b, cfg in sorted(res["batch"].items())]
    rows += [[f"shards={s}", cfg["pps"], cfg["pps_parallel"], cfg["decisions"]]
             for s, cfg in sorted(res["shards"].items())]
    print()
    print(render_table(
        ["config", "pps", "pps_parallel", "decisions"], rows,
        title=f"Batched dataplane throughput — {res['n_packets']} packets, "
              f"batch-256 speedup {res['speedup_256_vs_1']:.1f}x"))

    update_bench_json("batched", {
        "n_packets": res["n_packets"],
        "pps": {b: cfg["pps"] for b, cfg in res["batch"].items()},
        "speedup_256_vs_1": res["speedup_256_vs_1"],
    })

    # Batching amortizes per-packet Python/NumPy overhead: >= 5x at 256.
    assert res["speedup_256_vs_1"] >= 5.0
    # Batch size and sharding change throughput, never the decisions.
    counts = {cfg["decisions"] for cfg in res["batch"].values()}
    counts |= {cfg["decisions"] for cfg in res["shards"].values()}
    assert len(counts) == 1
