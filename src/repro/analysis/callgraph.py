"""Module-level call-graph construction for interprocedural rules.

PR 8's rules were single-statement pattern matchers; the wire-format rules
need to follow a value *through calls* (``serve_trace`` ->
``shard_hash_columns`` -> the uint64 hash). This module builds the graph
they walk: every module-level function and every method of every class in
the analyzed file set becomes a :class:`FunctionInfo` keyed by qualified
name (``repro.serving.dispatcher.shard_hash_columns``,
``repro.net.traces.Trace.to_columns``), and call edges are resolved via

- the same-module namespace (plain ``shard_hash_columns(...)``),
- :class:`repro.analysis.core.ImportTable` alias resolution
  (``from repro.serving.dispatcher import shard_hash_columns`` or
  ``dispatcher.shard_hash_columns(...)``),
- ``self.method(...)`` inside class bodies, walking base classes declared
  in the analyzed set (the known engine classes — ``Trace``, runtimes,
  dispatchers — all resolve this way),
- attribute calls on locals whose constructor is an analyzed class
  (``trace = Trace(...); trace.to_columns()``).

Everything is stdlib ``ast``; nothing is imported or executed. The dtype
dataflow pass (:mod:`repro.analysis.dtypeflow`) uses the same resolution
hooks at evaluation time to pull per-function summaries across edges.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.core import FileContext, dotted_name


@dataclass
class FunctionInfo:
    """One analyzed function or method, anchored to its file."""

    qualname: str                       # module.[Class.]name
    module: str
    name: str
    cls: str | None                     # owning class qualname, or None
    node: ast.AST                       # FunctionDef / AsyncFunctionDef
    ctx: FileContext


@dataclass
class ClassInfo:
    """One analyzed class: its methods and resolved analyzed bases."""

    qualname: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    bases: list[str] = field(default_factory=list)   # analyzed-class bases


class CallGraph:
    """Functions, classes, and call edges over a set of parsed files."""

    def __init__(self, contexts: list[FileContext]):
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.edges: dict[str, set[str]] = {}
        self._module_classes: dict[str, str] = {}   # module.Class -> same
        for ctx in contexts:
            if ctx.module:
                self._collect(ctx)
        self._resolve_bases(contexts)
        for info in self.functions.values():
            self.edges[info.qualname] = self._edges_of(info)

    # -- construction -------------------------------------------------------

    def _collect(self, ctx: FileContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{ctx.module}.{node.name}"
                self.functions[qual] = FunctionInfo(
                    qual, ctx.module, node.name, None, node, ctx)
            elif isinstance(node, ast.ClassDef):
                cls_qual = f"{ctx.module}.{node.name}"
                cls = ClassInfo(cls_qual, node)
                self.classes[cls_qual] = cls
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        qual = f"{cls_qual}.{stmt.name}"
                        info = FunctionInfo(qual, ctx.module, stmt.name,
                                            cls_qual, stmt, ctx)
                        self.functions[qual] = info
                        cls.methods[stmt.name] = info

    def _resolve_bases(self, contexts: list[FileContext]) -> None:
        for cls in self.classes.values():
            ctx = next(iter(cls.methods.values())).ctx \
                if cls.methods else None
            for base in cls.node.bases:
                dotted = dotted_name(base)
                if dotted is None:
                    continue
                resolved = self.resolve_class(
                    ctx if ctx is not None else _ctx_of(contexts, cls), dotted)
                if resolved:
                    cls.bases.append(resolved)

    # -- resolution ---------------------------------------------------------

    def resolve_class(self, ctx: FileContext | None, dotted: str
                      ) -> str | None:
        """The analyzed-class qualname a dotted name refers to, if any."""
        if ctx is not None:
            for candidate in (ctx.imports.resolve(dotted),
                              f"{ctx.module}.{dotted}" if ctx.module
                              else None):
                if candidate in self.classes:
                    return candidate
        return dotted if dotted in self.classes else None

    def lookup_method(self, class_qualname: str, method: str) -> str | None:
        """``Class.method`` resolved through the analyzed base chain."""
        seen: set[str] = set()
        queue = [class_qualname]
        while queue:
            qual = queue.pop(0)
            if qual in seen:
                continue
            seen.add(qual)
            cls = self.classes.get(qual)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method].qualname
            queue.extend(cls.bases)
        return None

    def resolve_call(self, info: FunctionInfo, node: ast.Call,
                     local_classes: dict[str, str] | None = None
                     ) -> str | None:
        """The analyzed function a call inside ``info`` targets, if any.

        ``local_classes`` maps local variable names to analyzed-class
        qualnames (locals assigned from an analyzed constructor).
        """
        dotted = dotted_name(node.func)
        if dotted is None:
            return None
        ctx = info.ctx
        # self.method() inside a class body
        if dotted.startswith("self.") and info.cls and dotted.count(".") == 1:
            return self.lookup_method(info.cls, dotted.split(".", 1)[1])
        # var.method() on a constructor-typed local
        head, _, rest = dotted.partition(".")
        if rest and "." not in rest and local_classes \
                and head in local_classes:
            return self.lookup_method(local_classes[head], rest)
        # imported / aliased / same-module names
        resolved = ctx.imports.resolve(dotted)
        if resolved in self.functions:
            return resolved
        if ctx.module:
            candidate = f"{ctx.module}.{dotted}"
            if candidate in self.functions:
                return candidate
        return dotted if dotted in self.functions else None

    def _edges_of(self, info: FunctionInfo) -> set[str]:
        locals_map = constructor_locals(self, info)
        out: set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = self.resolve_call(info, node, locals_map)
                if target:
                    out.add(target)
                else:
                    # constructor edge: Class() -> Class.__init__
                    dotted = dotted_name(node.func)
                    cls = dotted and self.resolve_class(info.ctx, dotted)
                    if cls:
                        init = self.lookup_method(cls, "__init__")
                        if init:
                            out.add(init)
        return out


def constructor_locals(graph: CallGraph, info: FunctionInfo
                       ) -> dict[str, str]:
    """Local name -> analyzed-class qualname, from constructor assignments.

    Tracks the modest typed-locals pattern the wire modules actually use
    (``trace = Trace(...)``, ``dispatcher = ShardedDispatcher(...)``);
    reassignment to anything else drops the binding.
    """
    out: dict[str, str] = {}
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name):
            continue
        name = node.targets[0].id
        cls = None
        if isinstance(node.value, ast.Call):
            dotted = dotted_name(node.value.func)
            if dotted:
                cls = graph.resolve_class(info.ctx, dotted)
        if cls:
            out[name] = cls
        else:
            out.pop(name, None)
    return out


def _ctx_of(contexts: list[FileContext], cls: ClassInfo) -> FileContext | None:
    for ctx in contexts:
        if cls.qualname.startswith(f"{ctx.module}.") if ctx.module else False:
            return ctx
    return None


def build_callgraph(contexts: list[FileContext]) -> CallGraph:
    """Convenience constructor (the name the tests and CLI import)."""
    return CallGraph(contexts)
