"""BoS (Brain-on-Switch): binary RNN via enumerated mapping tables (NSDI'24).

BoS bypasses computation entirely: each time step's function — from (binary
input bits, binary hidden state) to the next binary hidden state — is
enumerated into a table of 2^(input_bits + hidden_bits) entries. Inside a
step the computation is full precision; only the activations crossing table
boundaries are binarized. This is the paper's state of the art for accuracy,
and its scalability limit: an n-bit table key needs 2^n entries, which is
why BoS inputs are tiny (2 bits per step here, 18-bit total input scale).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.models.base import TrafficModel
from repro.net.features import SEQ_WINDOW
from repro.utils.bits import int_to_bits

BITS_PER_STEP = 2   # 1 length bit + 1 IPD bit per packet
# Input scale: 8 steps x 2 bits + 2 threshold config bits = 18 bits (paper).
INPUT_SCALE_BITS = SEQ_WINDOW * BITS_PER_STEP + 2


class _BoSNet(nn.Module):
    """Binary-I/O Elman step + linear head, trained with STE."""

    def __init__(self, n_classes: int, hidden: int, rngs):
        super().__init__()
        self.hidden = hidden
        self.w_x = nn.Linear(BITS_PER_STEP, hidden, rng=int(rngs[0]))
        self.w_h = nn.Linear(hidden, hidden, rng=int(rngs[1]))
        self.bin = nn.BinarizeSTE()
        self.head = nn.Linear(hidden, n_classes, rng=int(rngs[2]))
        self._caches = None

    def step(self, x_bits: np.ndarray, h_bin: np.ndarray) -> np.ndarray:
        """Full-precision inside; binarized output (the table's codomain)."""
        pre = np.tanh(self.w_x.forward(x_bits) + self.w_h.forward(h_bin))
        return pre

    def forward(self, x: np.ndarray) -> np.ndarray:
        # x: (N, 16) ±1 step bits. Unrolled train-time forward with STE.
        n = x.shape[0]
        h = np.zeros((n, self.hidden))
        self._caches = []
        for t in range(SEQ_WINDOW):
            bits = x[:, BITS_PER_STEP * t:BITS_PER_STEP * (t + 1)]
            pre = np.tanh(self.w_x.forward(bits) + self.w_h.forward(h))
            h_new = np.where(pre >= 0, 1.0, -1.0)
            self._caches.append((bits, h, pre))
            h = h_new
        return self.head.forward(h)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_h = self.head.backward(grad_out)
        for t in range(SEQ_WINDOW - 1, -1, -1):
            bits, h_prev, pre = self._caches[t]
            grad_pre = grad_h * (np.abs(pre) <= 1.0)        # STE through sign
            grad_pre = grad_pre * (1.0 - pre ** 2)          # through tanh
            self.w_x.forward(bits)                          # set cache
            self.w_x.backward(grad_pre)     # input grads discarded (binary input)
            self.w_h.forward(h_prev)
            grad_h = self.w_h.backward(grad_pre)
        return np.zeros((grad_out.shape[0], SEQ_WINDOW * BITS_PER_STEP))


class BoSModel(TrafficModel):
    name = "BoS"
    feature_view = "seq"

    def __init__(self, n_classes: int, seed: int = 0, hidden: int = 8,
                 epochs: int = 80):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=3)
        self.net = _BoSNet(n_classes, hidden, rngs)
        self.hidden = hidden
        self.epochs = epochs
        self.step_table: np.ndarray | None = None   # (2^(bits+H),) -> hidden code
        self.head_table: np.ndarray | None = None   # (2^H, n_classes)
        self._len_thresh = 128
        self._ipd_thresh = 64

    # -- input binarization ---------------------------------------------------

    def _fit_thresholds(self, seq: np.ndarray) -> None:
        lens = seq[:, 0::2].astype(np.float64)
        ipds = seq[:, 1::2].astype(np.float64)
        self._len_thresh = float(np.median(lens))
        self._ipd_thresh = float(np.median(ipds))

    def _binarize(self, seq: np.ndarray) -> np.ndarray:
        """Tokens -> ±1 bits: (len > median, ipd > median) per packet."""
        out = np.empty((len(seq), SEQ_WINDOW * BITS_PER_STEP))
        out[:, 0::2] = np.where(seq[:, 0::2] > self._len_thresh, 1.0, -1.0)
        out[:, 1::2] = np.where(seq[:, 1::2] > self._ipd_thresh, 1.0, -1.0)
        return out

    # -- training -------------------------------------------------------------

    def train(self, views: dict[str, np.ndarray]) -> None:
        seq = self.view(views, "seq")
        self._fit_thresholds(seq)
        x = self._binarize(seq)
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.01),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, self._binarize(self.view(views, "seq")))

    # -- dataplane: enumerated mapping tables ---------------------------------

    @staticmethod
    def _code(bits_pm1: np.ndarray) -> np.ndarray:
        """±1 vector(s) -> integer code (bit 1 for +1)."""
        bits01 = (np.asarray(bits_pm1) > 0).astype(np.int64)
        weights = 1 << np.arange(bits01.shape[-1] - 1, -1, -1)
        return bits01 @ weights

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        """Enumerate every (input bits, hidden code) -> next hidden code."""
        self._require_trained()
        h = self.hidden
        # First step starts from the all-zero hidden state, which is not a
        # ±1 code; it gets its own (tiny) table indexed by input bits only.
        self.first_table = np.zeros(1 << BITS_PER_STEP, dtype=np.int64)
        for key in range(1 << BITS_PER_STEP):
            bits = int_to_bits(key, BITS_PER_STEP).astype(np.float64) * 2 - 1
            pre = np.tanh(self.net.w_x.forward(bits[None, :])
                          + self.net.w_h.forward(np.zeros((1, h))))
            self.first_table[key] = self._code(np.where(pre >= 0, 1.0, -1.0))[0]
        n_keys = 1 << (BITS_PER_STEP + h)
        self.step_table = np.zeros(n_keys, dtype=np.int64)
        for key in range(n_keys):
            bits = int_to_bits(key, BITS_PER_STEP + h).astype(np.float64) * 2 - 1
            x_bits = bits[:BITS_PER_STEP][None, :]
            h_bits = bits[BITS_PER_STEP:][None, :]
            pre = np.tanh(self.net.w_x.forward(x_bits) + self.net.w_h.forward(h_bits))
            self.step_table[key] = self._code(np.where(pre >= 0, 1.0, -1.0))[0]
        self.head_table = np.zeros((1 << h, self.n_classes))
        for code in range(1 << h):
            h_bits = int_to_bits(code, h).astype(np.float64) * 2 - 1
            self.head_table[code] = self.net.head.forward(h_bits[None, :])[0]
        self.compiled = (self.step_table, self.head_table)

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_compiled()
        x = self._binarize(self.view(views, "seq"))
        h_code = self.first_table[self._code(x[:, :BITS_PER_STEP])]
        for t in range(1, SEQ_WINDOW):
            bits = x[:, BITS_PER_STEP * t:BITS_PER_STEP * (t + 1)]
            x_code = self._code(bits)
            key = (x_code << self.hidden) | h_code
            h_code = self.step_table[key]
        return np.argmax(self.head_table[h_code], axis=1)

    # -- accounting -----------------------------------------------------------

    def model_size_kbits(self) -> float:
        return self.net.param_count() * 32 / 1000

    def table_entries(self) -> int:
        return (1 << (BITS_PER_STEP + self.hidden)) * SEQ_WINDOW + (1 << self.hidden)

    def input_scale_bits(self) -> int:
        return INPUT_SCALE_BITS

    def flow_layout(self) -> FlowStateLayout:
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("count", 8),
            RegisterField("step_bits", BITS_PER_STEP, count=SEQ_WINDOW),
            RegisterField("hidden_code", self.hidden, count=4),
        ])  # 72 bits/flow (paper's BoS row)

    def sram_bits(self) -> int:
        step_bits = (1 << (BITS_PER_STEP + self.hidden)) * self.hidden * SEQ_WINDOW
        head_bits = (1 << self.hidden) * self.n_classes * 16
        return step_bits + head_bits

    def tcam_bits(self) -> int:
        return 0  # exact-match tables only

    def bus_bits(self) -> int:
        return self.hidden
