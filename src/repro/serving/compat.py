"""Deprecation shims: the pre-engine serving entry points, still working.

:class:`repro.serving.PegasusEngine` is the supported way to build a serving
stack; the directly-constructed dispatchers remain available under their old
names so existing callers keep working, but emit a :class:`DeprecationWarning`
pointing at the engine. The engine itself constructs the underlying classes
(:mod:`repro.serving.dispatcher`, :mod:`repro.serving.parallel`) directly, so
engine-built stacks never warn.
"""

from __future__ import annotations

import warnings

from repro.serving import dispatcher as _dispatcher
from repro.serving import parallel as _parallel


def _warn(old: str, hint: str) -> None:
    warnings.warn(
        f"constructing {old} directly is deprecated; use "
        f"repro.serving.PegasusEngine with EngineConfig({hint}) instead",
        # _warn -> __post_init__ -> dataclass-generated __init__ -> caller
        DeprecationWarning, stacklevel=4)


class ShardedDispatcher(_dispatcher.ShardedDispatcher):
    """Deprecated alias — see :class:`repro.serving.PegasusEngine`."""

    def __post_init__(self):
        _warn("ShardedDispatcher", "topology='sharded', n_workers=...")
        super().__post_init__()


class ParallelDispatcher(_parallel.ParallelDispatcher):
    """Deprecated alias — see :class:`repro.serving.PegasusEngine`."""

    def __post_init__(self):
        _warn("ParallelDispatcher", "topology='parallel', n_workers=...")
        super().__post_init__()
