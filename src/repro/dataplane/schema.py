"""The columnar wire-format contract: one schema, checked twice.

Every array that crosses a worker process boundary — shard payloads going
out, decision streams coming back — must have a statically known dtype and
rank, or the ``multiprocessing.shared_memory`` ring buffers of
``repro.serving.rings`` silently corrupt or fall back to re-pickling. This
module is the single source of truth for that format:

- :data:`WIRE_COLUMNS` — the trace-side columns ``Trace.to_columns`` emits
  and shard payloads carry (``ts``/``length``/5-tuple keys/``labels``, plus
  the optional ``payload`` byte matrix);
- :data:`DECISION_COLUMNS` — the four flat arrays each worker's decision
  stream comes back as.

The schema is enforced from both directions:

1. **Runtime** (debug-gated): :meth:`ColumnSchema.validate_columns` runs at
   every producer/consumer seam — ``Trace.to_columns``/``from_columns``,
   both dispatchers' shard splits, and the shared-memory ring write/read
   seams of the parallel dataplane — and raises
   :class:`~repro.errors.SchemaError` on drift. Disable for hot production
   runs with ``REPRO_WIRE_VALIDATE=0`` (or ``python -O``); tests force it
   on.
2. **Statically**: the ``columnar-schema`` / ``dtype-promotion`` rules of
   ``repro.analysis`` parse *this file's AST* (the declarations below are
   pure literals with string dtype names, so the stdlib-only linter never
   imports NumPy) and check every wire-module construction site against it.

Producers name their dtypes through :func:`wire_dtype` /
:func:`decision_dtype` instead of scattered ``np.int64`` literals — the one
spelling both the runtime check and the static dataflow pass resolve.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.errors import SchemaError


@dataclass(frozen=True)
class ColumnSpec:
    """One wire column: dtype (by canonical NumPy name), rank, nullability.

    ``nullable`` means the column may be absent from a payload (``payload``
    ships only when the runtime extracts raw bytes; ``labels`` only on
    labelled replays) — never that a present column may hold ``None``.
    """

    dtype: str
    rank: int = 1
    nullable: bool = False

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype(self.dtype)


@dataclass(frozen=True)
class ColumnSchema:
    """A frozen name -> :class:`ColumnSpec` mapping with runtime validation."""

    name: str
    columns: Mapping[str, ColumnSpec] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "columns",
                           MappingProxyType(dict(self.columns)))

    def np_dtype(self, column: str) -> np.dtype:
        """The declared dtype of ``column`` (KeyError on undeclared names)."""
        return self.columns[column].np_dtype

    def required(self) -> tuple[str, ...]:
        """The non-nullable column names, declaration order."""
        return tuple(name for name, spec in self.columns.items()
                     if not spec.nullable)

    def validate_columns(self, cols: Mapping[str, np.ndarray],
                         require: tuple[str, ...] | None = None,
                         context: str = "") -> None:
        """Check a columnar payload against this schema (debug-gated).

        ``require`` lists the columns that must be present (default: every
        non-nullable one); any *present* column must be a declared name,
        an ndarray, and match the declared dtype and rank exactly. No-op
        when wire validation is disabled (``REPRO_WIRE_VALIDATE=0`` or
        ``python -O``) so the hot path pays one bool check.
        """
        if not validation_enabled():
            return
        if require is None:
            require = self.required()
        for name in require:
            if name not in cols:
                raise SchemaError(self.name, name, "is missing",
                                  context=context)
        for name, arr in cols.items():
            spec = self.columns.get(name)
            if spec is None:
                raise SchemaError(self.name, name,
                                  "is not a declared wire column",
                                  context=context)
            if not isinstance(arr, np.ndarray):
                raise SchemaError(
                    self.name, name,
                    f"is {type(arr).__name__}, not ndarray (re-pickle "
                    f"hazard on the IPC path)", context=context)
            if arr.dtype != spec.np_dtype:
                raise SchemaError(
                    self.name, name,
                    f"has dtype {arr.dtype}, schema declares {spec.dtype}",
                    context=context)
            if arr.ndim != spec.rank:
                raise SchemaError(
                    self.name, name,
                    f"has rank {arr.ndim}, schema declares {spec.rank}",
                    context=context)


# The declarations below are pure literals on purpose: the stdlib-only
# linter (repro.analysis.wire) reads the dtype names straight off this
# file's AST without importing numpy. Keep them free of computed values.

WIRE_COLUMNS = ColumnSchema("wire", {
    "ts": ColumnSpec("float64", 1),
    "length": ColumnSpec("int64", 1),
    "src_ip": ColumnSpec("int64", 1),
    "dst_ip": ColumnSpec("int64", 1),
    "src_port": ColumnSpec("int64", 1),
    "dst_port": ColumnSpec("int64", 1),
    "proto": ColumnSpec("int64", 1),
    "labels": ColumnSpec("int64", 1, nullable=True),
    "payload": ColumnSpec("float64", 2, nullable=True),
})

DECISION_COLUMNS = ColumnSchema("decision", {
    "seq": ColumnSpec("int64", 1),
    "flow_label": ColumnSpec("int64", 1),
    "predicted": ColumnSpec("int64", 1),
    "ts": ColumnSpec("float64", 1),
})


# Ring slot layout (repro.serving.rings): one ingress slot is these wire
# columns laid out back to back (payload last, only when configured), one
# egress slot the decision columns in this order. Pure literals, same
# reason as the schemas above — the static linter reads the layout off the
# AST, and RingSpec derives every byte offset from these plus the dtypes.
INGRESS_RING_ORDER = ("ts", "length", "src_ip", "dst_ip", "src_port",
                      "dst_port", "proto", "labels")
EGRESS_RING_ORDER = ("seq", "flow_label", "predicted", "ts")


def wire_dtype(column: str) -> np.dtype:
    """The declared dtype of a trace-side wire column."""
    return WIRE_COLUMNS.np_dtype(column)


def decision_dtype(column: str) -> np.dtype:
    """The declared dtype of a worker-reply decision column."""
    return DECISION_COLUMNS.np_dtype(column)


_env = os.environ.get("REPRO_WIRE_VALIDATE")
_VALIDATE = (_env != "0") if _env is not None else __debug__


def validation_enabled() -> bool:
    """Whether the runtime wire-format checks are active."""
    return _VALIDATE


def set_validation(enabled: bool) -> bool:
    """Toggle runtime wire validation; returns the previous setting.

    Test hook (and escape hatch for profiling): flips the same flag the
    ``REPRO_WIRE_VALIDATE`` environment variable initializes.
    """
    global _VALIDATE
    previous = _VALIDATE
    _VALIDATE = bool(enabled)
    return previous
