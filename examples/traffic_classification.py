"""Encrypted-traffic classification with CNN-L on raw packet bytes.

The paper's headline workload: a 3840-bit raw-byte input that no prior IDP
system can carry. CNN-L's per-packet subnet compresses each arriving packet
into a 4-bit fuzzy index (Advanced Primitive Fusion + flow scalability), so
classifying a window of 8 packets needs only 44 bits of per-flow state.

Run:  python examples/traffic_classification.py [dataset]
"""

import sys

import numpy as np

from repro.eval.metrics import macro_precision_recall_f1
from repro.models.cnn import CNNL
from repro.net import make_dataset
from repro.net.features import dataset_views


def main(dataset_name: str = "iscxvpn"):
    print(f"=== CNN-L on {dataset_name} (raw bytes, 3840-bit input scale) ===")
    dataset = make_dataset(dataset_name, flows_per_class=100, seed=0)
    train_flows, _val, test_flows = dataset.split(rng=0)
    train_views = dataset_views(train_flows)
    test_views = dataset_views(test_flows)

    model = CNNL(n_classes=dataset.n_classes, seed=0, idx_bits=4, use_ipd=True)
    print(f"model size: {model.model_size_kbits():.0f} Kb, "
          f"input scale: {model.input_scale_bits()} bits")
    model.train(train_views)
    model.compile_dataplane(train_views)

    pred = model.predict_dataplane(test_views)
    pr, rc, f1 = macro_precision_recall_f1(test_views["y"], pred, dataset.n_classes)
    print(f"dataplane  PR={pr:.4f} RC={rc:.4f} F1={f1:.4f}")
    pred_f = model.predict_float(test_views)
    _, _, f1_float = macro_precision_recall_f1(test_views["y"], pred_f,
                                               dataset.n_classes)
    print(f"float      F1={f1_float:.4f} (switch loss {f1_float - f1:+.4f})")

    print("\nper-class F1 on the switch:")
    for label, name in enumerate(dataset.class_names):
        mask = test_views["y"] == label
        correct = (pred[mask] == label).mean() if mask.any() else float("nan")
        print(f"  {name:10s} recall={correct:.3f}")

    print("\n=== packet-level runtime (44 bits of flow state) ===")
    runtime = model.make_runtime()
    decisions = runtime.process_flows(test_flows)
    acc = np.mean([d.predicted == d.flow_label for d in decisions])
    print(f"{len(decisions)} decisions, accuracy {acc:.3f}, "
          f"{runtime.bits_per_flow} bits/flow, "
          f"{len(runtime.state)} concurrent flows tracked")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "iscxvpn")
