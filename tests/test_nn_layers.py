"""Gradient-check and behaviour tests for the NN substrate layers."""

import numpy as np
import pytest

from repro import nn
from repro.errors import ShapeError


def numeric_grad(fn, x, eps=1e-6):
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn()
        flat[i] = orig - eps
        minus = fn()
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_input_grad(layer, x, atol=1e-5):
    """Compare layer.backward against numeric input gradient of sum(output)."""
    y = layer.forward(x)
    analytic = layer.backward(np.ones_like(y))

    def total():
        return float(layer.forward(x).sum())

    numeric = numeric_grad(total, x)
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def check_param_grads(layer, x, atol=1e-5):
    y = layer.forward(x)
    layer.zero_grad()
    layer.forward(x)
    layer.backward(np.ones_like(y))
    for p in layer.parameters():
        analytic = p.grad.copy()

        def total(p=p):
            return float(layer.forward(x).sum())

        numeric = numeric_grad(total, p.data)
        np.testing.assert_allclose(analytic, numeric, atol=atol,
                                   err_msg=f"param {p.name}")


class TestLinear:
    def test_forward_shape(self):
        layer = nn.Linear(4, 3, rng=0)
        assert layer.forward(np.zeros((5, 4))).shape == (5, 3)

    def test_forward_value(self):
        layer = nn.Linear(2, 1, rng=0)
        layer.weight.data[:] = [[2.0], [3.0]]
        layer.bias.data[:] = [1.0]
        np.testing.assert_allclose(layer.forward(np.array([[1.0, 1.0]])), [[6.0]])

    def test_input_grad(self):
        rng = np.random.default_rng(1)
        check_input_grad(nn.Linear(4, 3, rng=0), rng.normal(size=(3, 4)))

    def test_param_grads(self):
        rng = np.random.default_rng(2)
        check_param_grads(nn.Linear(3, 2, rng=0), rng.normal(size=(4, 3)))

    def test_shape_error(self):
        with pytest.raises(ShapeError):
            nn.Linear(4, 3, rng=0).forward(np.zeros((2, 5)))


class TestConv1d:
    def test_output_length(self):
        conv = nn.Conv1d(1, 1, kernel_size=3, stride=2, padding=1, rng=0)
        assert conv.output_length(8) == 4

    def test_forward_known_value(self):
        conv = nn.Conv1d(1, 1, kernel_size=2, rng=0)
        conv.weight.data[:] = np.array([[[1.0, -1.0]]])
        conv.bias.data[:] = 0.0
        x = np.array([[[1.0, 3.0, 6.0]]])
        np.testing.assert_allclose(conv.forward(x), [[[-2.0, -3.0]]])

    def test_input_grad(self):
        rng = np.random.default_rng(3)
        conv = nn.Conv1d(2, 3, kernel_size=3, stride=1, padding=1, rng=0)
        check_input_grad(conv, rng.normal(size=(2, 2, 6)))

    def test_input_grad_strided(self):
        rng = np.random.default_rng(4)
        conv = nn.Conv1d(1, 2, kernel_size=2, stride=2, rng=0)
        check_input_grad(conv, rng.normal(size=(2, 1, 6)))

    def test_param_grads(self):
        rng = np.random.default_rng(5)
        conv = nn.Conv1d(2, 2, kernel_size=2, rng=0)
        check_param_grads(conv, rng.normal(size=(3, 2, 5)))

    def test_kernel_too_large(self):
        with pytest.raises(ShapeError):
            nn.Conv1d(1, 1, kernel_size=5, rng=0).forward(np.zeros((1, 1, 3)))


class TestBatchNorm:
    def test_normalizes_in_train_mode(self):
        bn = nn.BatchNorm1d(3)
        rng = np.random.default_rng(6)
        x = rng.normal(5.0, 2.0, size=(200, 3))
        y = bn.forward(x)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-3)

    def test_eval_uses_running_stats(self):
        bn = nn.BatchNorm1d(2)
        rng = np.random.default_rng(7)
        for _ in range(50):
            bn.forward(rng.normal(3.0, 1.5, size=(64, 2)))
        bn.eval_mode()
        y = bn.forward(np.full((4, 2), 3.0))
        np.testing.assert_allclose(y, 0.0, atol=0.2)

    def test_inference_scale_shift_matches_eval_forward(self):
        bn = nn.BatchNorm1d(3)
        rng = np.random.default_rng(8)
        for _ in range(10):
            bn.forward(rng.normal(size=(32, 3)))
        bn.gamma.data[:] = [1.0, 2.0, 0.5]
        bn.beta.data[:] = [0.1, -0.2, 0.3]
        bn.eval_mode()
        x = rng.normal(size=(5, 3))
        scale, shift = bn.inference_scale_shift()
        np.testing.assert_allclose(bn.forward(x), scale * x + shift, atol=1e-10)

    def test_3d_input(self):
        bn = nn.BatchNorm1d(2)
        x = np.random.default_rng(9).normal(size=(4, 2, 8))
        assert bn.forward(x).shape == (4, 2, 8)

    def test_train_input_grad(self):
        rng = np.random.default_rng(10)
        bn = nn.BatchNorm1d(3)
        check_input_grad(bn, rng.normal(size=(6, 3)), atol=1e-4)

    def test_bad_ndim(self):
        with pytest.raises(ShapeError):
            nn.BatchNorm1d(2).forward(np.zeros((2, 2, 2, 2)))


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [nn.ReLU, nn.Tanh, nn.Sigmoid, nn.Softmax])
    def test_input_grads(self, layer_cls):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(4, 5))
        layer = layer_cls()
        y = layer.forward(x)
        g_out = rng.normal(size=y.shape)
        analytic = layer.backward(g_out)

        def total():
            return float((layer.forward(x) * g_out).sum())

        numeric = numeric_grad(total, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_relu_clamps(self):
        y = nn.ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_array_equal(y, [0.0, 0.0, 2.0])

    def test_softmax_sums_to_one(self):
        y = nn.Softmax().forward(np.random.default_rng(12).normal(size=(3, 7)))
        np.testing.assert_allclose(y.sum(axis=-1), 1.0)


class TestPooling:
    def test_maxpool_value(self):
        pool = nn.MaxPool1d(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0]]])
        np.testing.assert_array_equal(pool.forward(x), [[[5.0, 3.0]]])

    def test_maxpool_grad_routes_to_argmax(self):
        pool = nn.MaxPool1d(2)
        x = np.array([[[1.0, 5.0, 2.0, 3.0]]])
        pool.forward(x)
        g = pool.backward(np.array([[[1.0, 1.0]]]))
        np.testing.assert_array_equal(g, [[[0.0, 1.0, 0.0, 1.0]]])

    def test_avgpool_value(self):
        pool = nn.AvgPool1d(2)
        x = np.array([[[2.0, 4.0, 6.0, 8.0]]])
        np.testing.assert_array_equal(pool.forward(x), [[[3.0, 7.0]]])

    def test_global_maxpool(self):
        pool = nn.GlobalMaxPool1d()
        x = np.array([[[1.0, 9.0, 2.0], [4.0, 0.0, 3.0]]])
        np.testing.assert_array_equal(pool.forward(x), [[9.0, 4.0]])

    def test_global_maxpool_grad(self):
        rng = np.random.default_rng(13)
        check_input_grad(nn.GlobalMaxPool1d(), rng.normal(size=(2, 3, 5)))


class TestEmbedding:
    def test_lookup(self):
        emb = nn.Embedding(10, 4, rng=0)
        out = emb.forward(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out[0, 0], emb.weight.data[1])

    def test_grad_accumulates_per_index(self):
        emb = nn.Embedding(5, 2, rng=0)
        emb.forward(np.array([[0, 0, 1]]))
        emb.backward(np.ones((1, 3, 2)))
        np.testing.assert_array_equal(emb.weight.grad[0], [2.0, 2.0])
        np.testing.assert_array_equal(emb.weight.grad[1], [1.0, 1.0])

    def test_out_of_range(self):
        with pytest.raises(ShapeError):
            nn.Embedding(4, 2, rng=0).forward(np.array([[4]]))


class TestRNN:
    def test_forward_shape(self):
        rnn = nn.WindowedRNN(3, 5, rng=0)
        assert rnn.forward(np.zeros((2, 7, 3))).shape == (2, 5)

    def test_input_grad_bptt(self):
        rng = np.random.default_rng(14)
        rnn = nn.WindowedRNN(2, 3, rng=0)
        check_input_grad(rnn, rng.normal(size=(2, 4, 2)), atol=1e-4)

    def test_param_grads_bptt(self):
        rng = np.random.default_rng(15)
        rnn = nn.WindowedRNN(2, 3, rng=0)
        check_param_grads(rnn, rng.normal(size=(2, 4, 2)), atol=1e-4)


class TestSequentialAndTraining:
    def test_sequential_composition(self):
        model = nn.Sequential(nn.Linear(4, 8, rng=0), nn.ReLU(), nn.Linear(8, 2, rng=1))
        assert model.forward(np.zeros((3, 4))).shape == (3, 2)
        assert model.param_count() == 4 * 8 + 8 + 8 * 2 + 2

    def test_fit_learns_linearly_separable(self):
        rng = np.random.default_rng(16)
        x = rng.normal(size=(400, 2))
        y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
        model = nn.Sequential(nn.Linear(2, 16, rng=0), nn.ReLU(), nn.Linear(16, 2, rng=1))
        nn.fit(model, x, y, nn.CrossEntropyLoss(), nn.Adam(model.parameters(), lr=0.01),
               epochs=20, batch_size=64, rng=0)
        acc = (nn.predict_classes(model, x) == y).mean()
        assert acc > 0.95

    def test_fit_learns_xor(self):
        rng = np.random.default_rng(17)
        x = rng.uniform(-1, 1, size=(600, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        model = nn.Sequential(nn.Linear(2, 32, rng=0), nn.Tanh(), nn.Linear(32, 2, rng=1))
        nn.fit(model, x, y, nn.CrossEntropyLoss(), nn.Adam(model.parameters(), lr=0.02),
               epochs=60, batch_size=64, rng=0)
        acc = (nn.predict_classes(model, x) == y).mean()
        assert acc > 0.9

    def test_binary_linear_ste_learns(self):
        rng = np.random.default_rng(18)
        x = np.sign(rng.normal(size=(500, 16)))
        true_w = np.sign(rng.normal(size=(16, 2)))
        y = np.argmax(x @ true_w, axis=1)
        model = nn.Sequential(nn.BinaryLinear(16, 2, rng=0))
        nn.fit(model, x, y, nn.CrossEntropyLoss(), nn.Adam(model.parameters(), lr=0.01),
               epochs=30, batch_size=64, rng=0)
        acc = (nn.predict_classes(model, x) == y).mean()
        assert acc > 0.9

    def test_train_eval_mode_propagates(self):
        model = nn.Sequential(nn.BatchNorm1d(2), nn.Linear(2, 2, rng=0))
        model.eval_mode()
        assert not model[0].training
