"""Scenario replay: time-varying workloads + the differential harness.

Walks the scenario subsystem end to end:

1. build a registered scenario family and inspect its phase timeline,
2. train + compile a classifier and serve the scenario through
   the unified `PegasusEngine.serve` — one per-phase report (watch the attack
   flood crater accuracy in its own phase and the heavy-hitter phase spike
   the cache hit rate),
3. register a *custom* scenario in one call and serve it,
4. run the differential harness: replay a scenario through the serving
   matrix (topology x cache x lookup backend x runtime kind) and check
   every decision stream is bit-identical to the scalar reference.

Run:  python examples/scenario_replay.py
(`SCENARIO_FLOWS_PER_CLASS` shrinks the training set for CI smoke runs.)
"""

import os

from repro import EngineConfig, PegasusEngine
from repro.eval.differential import quick_cases, run_differential
from repro.eval.reporting import render_scenario_table
from repro.eval.runner import train_and_eval_model
from repro.net import build_scenario, register_scenario, scenario_names
from repro.net.scenarios import PhaseDef, Scenario, TrafficBand
from repro.net.synth.profiles import dataset_profiles

FLOWS_PER_CLASS = int(os.environ.get("SCENARIO_FLOWS_PER_CLASS", "80"))


def main():
    print("=== 1. scenario families ===")
    print(f"registered: {', '.join(scenario_names())}")
    scenario = build_scenario("attack_flood")
    workload = scenario.generate(seed=0, flows_scale=0.5)
    print(f"\n'attack_flood' horizon {scenario.horizon:.0f}s, "
          f"{workload.n_packets} packets:")
    for span in workload.phases:
        print(f"  {span.name:<10s} [{span.t_start:5.0f}s..{span.t_end:5.0f}s) "
              f"{span.n_packets:5d} packets")

    print("\n=== 2. serve per phase ===")
    row = train_and_eval_model("MLP-B", "peerrush",
                               flows_per_class=FLOWS_PER_CLASS, seed=0)
    compiled = row["_model"].compiled
    config = EngineConfig(feature_mode="stats", batch_size=256,
                          decision_cache=True)
    for name in ("attack_flood", "heavy_hitters"):
        with PegasusEngine.from_compiled(compiled, config) as engine:
            report = engine.serve(build_scenario(name), seed=0,
                                  flows_scale=0.5)
        print(render_scenario_table(report.summary()))
        print()

    print("=== 3. a custom scenario is one registration call ===")
    profiles = dataset_profiles("peerrush")
    register_scenario("spiky-emule", lambda flows=12, **_: Scenario(
        name="spiky-emule",
        phases=(
            PhaseDef("quiet", 20.0, (TrafficBand(profiles[0], flows),)),
            PhaseDef("spike", 3.0, (TrafficBand(profiles[0], 8 * flows,
                                                ramp="up"),)),
            PhaseDef("drain", 20.0, (TrafficBand(profiles[0], flows,
                                                 ramp="down"),)),
        )), overwrite=True)
    with PegasusEngine.from_compiled(compiled, config) as engine:
        report = engine.serve(build_scenario("spiky-emule"), seed=1)
    print(render_scenario_table(report.summary()))

    print("\n=== 4. differential replay across the serving matrix ===")
    cases = quick_cases(runtimes=("windowed",))
    workload = build_scenario("microburst").generate(seed=3, flows_scale=0.3)
    diff = run_differential(workload, sources={"windowed": compiled},
                            cases=cases)
    for r in diff.rows:
        print(f"  {r['case']:<38s} "
              f"{'bit-identical' if r['match'] else 'DIVERGED'} "
              f"({r['n_decisions']} decisions)")
    print(f"matrix: {len(diff.rows)} cases, decisions_match="
          f"{diff.decisions_match}, stats_consistent={diff.stats_consistent}")
    assert diff.ok


if __name__ == "__main__":
    main()
