"""Recurrent layers.

The paper's RNN-B follows BoS's *windowed* design: a fixed window of tokens
is unrolled on the switch, so no hidden-state write-back is needed.
:class:`WindowedRNN` implements exactly that — it consumes ``(N, T, D)``
embedded sequences and returns the final hidden state ``(N, H)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.nn.module import Module, Parameter
from repro.utils.rng import new_rng


class RNNCell(Module):
    """Elman cell: ``h' = tanh(x @ W_x + h @ W_h + b)``."""

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | int | None = None):
        super().__init__()
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        s_x = np.sqrt(1.0 / max(input_dim, 1))
        s_h = np.sqrt(1.0 / max(hidden_dim, 1))
        self.w_x = Parameter(rng.uniform(-s_x, s_x, (input_dim, hidden_dim)), "rnn.w_x")
        self.w_h = Parameter(rng.uniform(-s_h, s_h, (hidden_dim, hidden_dim)), "rnn.w_h")
        self.bias = Parameter(np.zeros(hidden_dim), "rnn.bias")

    def step(self, x: np.ndarray, h: np.ndarray) -> np.ndarray:
        return np.tanh(x @ self.w_x.data + h @ self.w_h.data + self.bias.data)

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError("use WindowedRNN to unroll an RNNCell")

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError("use WindowedRNN to unroll an RNNCell")


class WindowedRNN(Module):
    """Unroll an :class:`RNNCell` over a fixed window; output the last hidden state.

    Backward is full backpropagation-through-time over the window.
    """

    def __init__(self, input_dim: int, hidden_dim: int,
                 rng: np.random.Generator | int | None = None):
        super().__init__()
        self.cell = RNNCell(input_dim, hidden_dim, rng=rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self._cache: list[tuple[np.ndarray, np.ndarray, np.ndarray]] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 3 or x.shape[2] != self.input_dim:
            raise ShapeError(f"WindowedRNN expected (N, T, {self.input_dim}), got {x.shape}")
        n, t, _ = x.shape
        h = np.zeros((n, self.hidden_dim))
        self._cache = []
        for step in range(t):
            x_t = x[:, step, :]
            h_new = self.cell.step(x_t, h)
            self._cache.append((x_t, h, h_new))
            h = h_new
        return h

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        cell = self.cell
        grad_h = grad_out
        grad_x = np.zeros((grad_out.shape[0], len(self._cache), self.input_dim))
        for step in range(len(self._cache) - 1, -1, -1):
            x_t, h_prev, h_new = self._cache[step]
            grad_pre = grad_h * (1.0 - h_new ** 2)
            cell.w_x.grad += x_t.T @ grad_pre
            cell.w_h.grad += h_prev.T @ grad_pre
            cell.bias.grad += grad_pre.sum(axis=0)
            grad_x[:, step, :] = grad_pre @ cell.w_x.data.T
            grad_h = grad_pre @ cell.w_h.data.T
        return grad_x
