"""`PegasusEngine`: one config, one build path, pluggable runtimes/topologies.

Before this facade every consumer hand-wired its own serving stack —
compiler output -> runtime -> :class:`BatchScheduler` -> cache -> one of the
dispatchers — with the cross-cutting knobs (``lookup_backend``,
``decision_cache``, ``batch_size``, ``n_workers``) validated in five
different places. The engine replaces that with a single declarative
deployment surface, the shape production dataplane-serving systems expose
over heterogeneous fast paths:

- :class:`EngineConfig` — one frozen dataclass naming the runtime kind,
  feature mode, lookup backend, scheduler/AIMD settings, cache settings, and
  topology (``local | sharded | parallel`` with ``n_workers``); validated
  once at construction with typed :class:`~repro.errors.ConfigError` s.
- :class:`PegasusEngine` — owns the full lifecycle: ``from_model(...)`` /
  ``from_compiled(...)`` builders, context-manager ``start()/close()``, and
  **one** polymorphic ``serve(workload, mode="closed"|"open")`` entry point
  that dispatches on workload shape (flows / trace / columns / scenario)
  and, in open mode, pumps the workload through a pluggable admission
  policy (``none | tail-drop | aimd`` built in) into a bounded ingress
  queue paced by the trace's own timestamps. The old named entry points
  (``serve_flows`` / ``serve_trace`` / ``serve_columns`` /
  ``serve_scenario``) remain as thin :class:`DeprecationWarning` shims.
- :class:`ServingReport` — one merged result per serve: decisions, wall
  clock, per-shard breakdown, flush stats, cache stats, derived pps and
  accuracy — replacing the old ad-hoc tuples and attribute-poking.

Internally three small registries back the facade, so a new runtime kind,
lookup backend, or dispatcher topology plugs in with **one registration**
instead of edits to both dispatchers and both runtimes::

    from repro.serving import engine

    engine.register_lookup_backend("index-v2", apply=my_apply_fn)
    engine.register_topology("ring", build=my_driver_factory)
    engine.register_runtime_kind("my-kind", build=my_replica_builder)

End-to-end usage::

    from repro.serving import EngineConfig, PegasusEngine

    config = EngineConfig(feature_mode="stats", batch_size=256,
                          decision_cache=True, lookup_backend="tcam",
                          topology="parallel", n_workers=4)
    with PegasusEngine.from_compiled(compiled, config) as eng:
        report = eng.serve(test_flows)
        print(report.pps, report.cache_stats.hit_rate)

Every supported configuration is **bit-identical** to the equivalent
hand-wired dispatcher/runtime stack (asserted across the full
topology x cache x backend x runtime-kind matrix by
``tests/test_serving_engine.py``).
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable

import numpy as np

from repro.dataplane.runtime import (TwoStageRuntime,
                                     WindowedClassifierRuntime,
                                     flows_to_trace)
from repro.errors import ConfigError
from repro.net.scenarios import PhaseSpan, ScenarioTrace
from repro.net.traces import (KEY_COLUMN_NAMES, Trace,
                              canonicalize_key_columns, keys_from_columns)
from repro.serving.cache import (CacheStats, FlowDecisionCache,
                                 TwoLevelDecisionCache)
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.openloop import (AimdAdmission, NoAdmission, OpenLoopPump,
                                    OpenLoopReport, TailDropAdmission,
                                    build_open_loop_report)
from repro.serving.parallel import ParallelDispatcher
from repro.serving.scheduler import BatchScheduler, FlushStats

DEFAULT_PAYLOAD_BYTES = 60     # TwoStageRuntime's raw_bytes default

# Decision-cache modes: no cache / exact per-worker L1 / L1 plus the shared
# quantized L2 (verify-on-hit, never decision-changing). The bools False /
# True are accepted and normalized to "off" / "l1".
CACHE_MODES = ("off", "l1", "l1+l2")


# ---------------------------------------------------------------------------
# Registries
# ---------------------------------------------------------------------------

class Registry:
    """Name -> entry map with typed lookup errors.

    ``config_field`` names the :class:`EngineConfig` field a failed lookup
    reports, so a typo'd ``topology="paralel"`` raises a
    :class:`~repro.errors.ConfigError` listing the registered choices.
    """

    def __init__(self, config_field: str):
        self.config_field = config_field
        self._entries: dict[str, Any] = {}

    def register(self, name: str, entry, *, overwrite: bool = False):
        if not overwrite and name in self._entries:
            raise ConfigError(self.config_field, name,
                              reason="already registered "
                                     "(pass overwrite=True to replace)")
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str):
        try:
            return self._entries[name]
        except KeyError:
            raise ConfigError(self.config_field, name,
                              allowed=self.names()) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries


@dataclass(frozen=True)
class RuntimeKind:
    """One pluggable runtime family: ``build(source, config) -> replica``."""

    name: str
    build: Callable[[Any, "EngineConfig"], Any]


@dataclass(frozen=True)
class LookupBackend:
    """One pluggable model-lookup backend.

    ``apply(replica)`` configures a freshly built replica to serve this
    backend — the built-ins call ``replica.set_lookup_backend(name)``; a
    custom backend can do anything that leaves decisions bit-identical.
    """

    name: str
    apply: Callable[[Any], None]


@dataclass(frozen=True)
class AdmissionPolicySpec:
    """One pluggable open-loop admission policy.

    ``build(config) -> policy`` constructs a fresh
    :class:`~repro.serving.openloop.AdmissionPolicy` for one open-loop
    serve from the engine's validated config (``queue_capacity``,
    ``p99_target_ms`` are the knobs the built-ins consume).
    """

    name: str
    build: Callable[["EngineConfig"], Any]


runtime_kinds = Registry("runtime")
lookup_backends = Registry("lookup_backend")
topologies = Registry("topology")
admission_policies = Registry("admission")


def register_runtime_kind(name: str, build, *, overwrite: bool = False):
    """Register a runtime family under ``EngineConfig(runtime=name)``."""
    return runtime_kinds.register(name, RuntimeKind(name, build),
                                  overwrite=overwrite)


def register_lookup_backend(name: str, apply=None, *, overwrite: bool = False):
    """Register a lookup backend under ``EngineConfig(lookup_backend=name)``.

    Without ``apply`` the replica's own ``set_lookup_backend(name)`` is used,
    which only accepts the core backends — so a genuinely new backend passes
    an ``apply`` that wires its execution path into the replica.
    """
    if apply is None:
        def apply(replica, _name=name):
            replica.set_lookup_backend(_name)
    return lookup_backends.register(name, LookupBackend(name, apply),
                                    overwrite=overwrite)


def register_topology(name: str, build, *, overwrite: bool = False):
    """Register a dispatch topology under ``EngineConfig(topology=name)``.

    ``build(replica_factory, config, payload_bytes)`` returns a driver with
    ``start() / close() / serve(trace, labels, keys) -> decisions`` and the
    telemetry attributes ``shard_seconds`` / ``flush_stats`` /
    ``cache_stats`` (see the built-in drivers below).
    """
    return topologies.register(name, build, overwrite=overwrite)


def register_admission_policy(name: str, build, *, overwrite: bool = False):
    """Register an open-loop admission policy under
    ``EngineConfig(admission=name)``.

    ``build(config) -> policy`` returns a fresh
    :class:`~repro.serving.openloop.AdmissionPolicy` per open-loop serve.
    Same ``overwrite=`` semantics as the other registries.
    """
    return admission_policies.register(name, AdmissionPolicySpec(name, build),
                                       overwrite=overwrite)


def _build_none_policy(config: "EngineConfig"):
    return NoAdmission()


def _build_tail_drop_policy(config: "EngineConfig"):
    return TailDropAdmission(config.queue_capacity)


def _build_aimd_policy(config: "EngineConfig"):
    if config.p99_target_ms is None:
        raise ConfigError(
            "p99_target_ms", None, allowed="> 0 (milliseconds)",
            reason="admission='aimd' throttles against a latency target")
    return AimdAdmission(config.queue_capacity,
                         config.p99_target_ms / 1e3)


register_admission_policy("none", _build_none_policy)
register_admission_policy("tail-drop", _build_tail_drop_policy)
register_admission_policy("aimd", _build_aimd_policy)


# ---------------------------------------------------------------------------
# Config
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EngineConfig:
    """Everything a :class:`PegasusEngine` deployment is, in one place.

    Grouped knobs (each previously validated somewhere different):

    - **runtime** — ``runtime`` kind (registry), ``feature_mode``,
      ``window``, per-replica register ``capacity``;
    - **lookup** — ``lookup_backend`` (registry; ``"index"`` | ``"tcam"``
      built in, bit-identical);
    - **scheduler** — ``batch_size``, trace-time ``timeout``, AIMD
      ``latency_target`` with ``min_batch_size`` / ``max_batch_size``;
    - **cache** — ``decision_cache`` mode (``"off" | "l1" | "l1+l2"``;
      the bools ``False`` / ``True`` normalize to ``"off"`` / ``"l1"``)
      + per-replica exact ``cache_capacity``, and for ``"l1+l2"`` the
      shared approximate store's ``l2_capacity`` (quantized buckets) and
      ``l2_quantize_shift`` (feature bits dropped by the bucket key);
    - **topology** — ``local`` (one replica, in-process), ``sharded``
      (N replicas replayed serially, modeled parallel wall clock) or
      ``parallel`` (N persistent worker processes fed through
      shared-memory rings, measured wall clock), with ``n_workers``
      replicas, worker ``start_method``, ``payload_bytes`` shipped per
      packet to two-stage replicas, and the ring geometry: ``ring_depth``
      in-flight chunks per worker and ``ring_chunk`` rows per ring slot
      (``None`` sizes a slot to the batch, min 256 rows);
    - **open loop** — ``admission`` policy (registry; ``"none"`` |
      ``"tail-drop"`` | ``"aimd"`` built in), ingress ``queue_capacity``,
      the ``p99_target_ms`` latency SLO the AIMD throttle (and the
      report's ``meets_target``) is judged against, and ``time_scale``
      (wall seconds per trace second when pacing ``serve(mode="open")``;
      0 replays as fast as possible, deterministically).

    Frozen and validated once here — every downstream constructor then
    receives values it can trust. All validation errors are
    :class:`~repro.errors.ConfigError` s naming the field and its allowed
    values.
    """

    runtime: str = "windowed"
    feature_mode: str = "stats"
    window: int = 8
    capacity: int = 1_000_000
    lookup_backend: str = "index"
    batch_size: int = 256
    timeout: float | None = None
    latency_target: float | None = None
    min_batch_size: int = 1
    max_batch_size: int | None = None
    decision_cache: bool | str = False
    cache_capacity: int = 65536
    l2_capacity: int = 4096
    l2_quantize_shift: int = 6
    topology: str = "local"
    n_workers: int = 1
    payload_bytes: int | None = None
    start_method: str | None = None
    ring_depth: int = 4
    ring_chunk: int | None = None
    admission: str = "none"
    queue_capacity: int = 1024
    p99_target_ms: float | None = None
    time_scale: float = 0.0

    def __post_init__(self):
        runtime_kinds.get(self.runtime)
        lookup_backends.get(self.lookup_backend)
        topologies.get(self.topology)
        admission_policies.get(self.admission)
        if self.feature_mode not in ("seq", "stats"):
            raise ConfigError("feature_mode", self.feature_mode,
                              allowed=("seq", "stats"))
        # Normalize the cache mode once: bools stay accepted for
        # back-compat, every downstream check then compares strings.
        mode = self.decision_cache
        if mode is False:
            mode = "off"
        elif mode is True:
            mode = "l1"
        if mode not in CACHE_MODES:
            raise ConfigError("decision_cache", self.decision_cache,
                              allowed=CACHE_MODES + (False, True))
        object.__setattr__(self, "decision_cache", mode)
        for name, lo in (("window", 2), ("capacity", 1), ("n_workers", 1),
                         ("cache_capacity", 1), ("l2_capacity", 1),
                         ("l2_quantize_shift", 0), ("queue_capacity", 1),
                         ("ring_depth", 1)):
            if getattr(self, name) < lo:
                raise ConfigError(name, getattr(self, name), allowed=f">= {lo}")
        if self.p99_target_ms is not None and self.p99_target_ms <= 0:
            raise ConfigError("p99_target_ms", self.p99_target_ms,
                              allowed="> 0 (milliseconds) or None")
        if self.time_scale < 0:
            raise ConfigError("time_scale", self.time_scale,
                              allowed=">= 0 (0 replays as fast as possible)")
        if self.topology == "local" and self.n_workers != 1:
            raise ConfigError("n_workers", self.n_workers, allowed="1",
                              reason="topology='local' runs exactly one "
                                     "replica; use 'sharded' or 'parallel' "
                                     "to scale out")
        if self.payload_bytes is not None and self.payload_bytes < 1:
            raise ConfigError("payload_bytes", self.payload_bytes,
                              allowed=">= 1 or None")
        if self.ring_chunk is not None and self.ring_chunk < 1:
            raise ConfigError("ring_chunk", self.ring_chunk,
                              allowed=">= 1 or None (auto: batch-sized "
                                      "slots, min 256 rows)")
        if self.start_method not in (None, "fork", "spawn", "forkserver"):
            raise ConfigError("start_method", self.start_method,
                              allowed=(None, "fork", "spawn", "forkserver"))
        self.scheduler()   # delegate batch/timeout/AIMD validation

    def scheduler(self) -> BatchScheduler:
        """The (immutable) batch scheduler this config describes."""
        return BatchScheduler(batch_size=self.batch_size,
                              timeout=self.timeout,
                              latency_target=self.latency_target,
                              min_batch_size=self.min_batch_size,
                              max_batch_size=self.max_batch_size)

    def make_cache(self) -> FlowDecisionCache | TwoLevelDecisionCache | None:
        """A fresh per-replica decision cache (None when disabled)."""
        if self.decision_cache == "off":
            return None
        if self.decision_cache == "l1":
            return FlowDecisionCache(self.cache_capacity)
        return TwoLevelDecisionCache(
            capacity=self.cache_capacity, l2_capacity=self.l2_capacity,
            l2_quantize_shift=self.l2_quantize_shift)


def _resolve_config(config: EngineConfig | None, overrides: dict
                    ) -> EngineConfig:
    """``(config, **overrides)`` -> one validated EngineConfig."""
    if config is None:
        return EngineConfig(**overrides)
    if not isinstance(config, EngineConfig):
        raise ConfigError("config", type(config).__name__,
                          allowed="an EngineConfig (or None + keyword "
                                  "overrides)")
    return replace(config, **overrides) if overrides else config


# ---------------------------------------------------------------------------
# Built-in runtime kinds
# ---------------------------------------------------------------------------

def _build_windowed(source, config: EngineConfig):
    return WindowedClassifierRuntime(
        source, feature_mode=config.feature_mode, window=config.window,
        capacity=config.capacity, batch_size=config.batch_size,
        decision_cache=config.make_cache())


# Replica knobs the engine owns: they come from EngineConfig, never from a
# two-stage source mapping (a duplicate would otherwise collide at build).
_ENGINE_OWNED_FIELDS = ("window", "capacity", "batch_size", "decision_cache")


def _two_stage_spec(source) -> dict:
    try:
        spec = dict(source)
    except TypeError:
        raise ConfigError(
            "runtime", "two_stage",
            reason=f"source must be a mapping of TwoStageRuntime fields "
                   f"(extractor_tree, slot_values, n_classes, ...), got "
                   f"{type(source).__name__}") from None
    overlap = sorted(set(spec) & set(_ENGINE_OWNED_FIELDS))
    if overlap:
        raise ConfigError(
            "runtime", "two_stage",
            reason=f"source field(s) {overlap} are EngineConfig knobs — "
                   "set them on the config instead")
    return spec


def _build_two_stage(source, config: EngineConfig):
    spec = _two_stage_spec(source)
    return TwoStageRuntime(
        window=config.window, capacity=config.capacity,
        batch_size=config.batch_size, decision_cache=config.make_cache(),
        **spec)


register_runtime_kind("windowed", _build_windowed)
register_runtime_kind("two_stage", _build_two_stage)
register_lookup_backend("index")
register_lookup_backend("tcam")
register_lookup_backend("tcam-pruned")


# ---------------------------------------------------------------------------
# Built-in topology drivers
# ---------------------------------------------------------------------------

class _LocalDriver:
    """One in-process replica — the no-dispatcher fast path."""

    def __init__(self, replica_factory, config: EngineConfig,
                 payload_bytes: int | None):
        self._factory = replica_factory
        self._scheduler = config.scheduler()
        self.runtime = None
        self.shard_seconds: list[float] = []
        self.flush_stats = FlushStats()

    def start(self) -> None:
        if self.runtime is None:
            self.runtime = self._factory()

    def close(self) -> None:
        self.runtime = None     # discard replica state, like worker shutdown

    def serve(self, trace: Trace, labels, keys) -> list:
        return self._run(lambda: self.runtime.process_trace(
            trace, labels=labels, scheduler=self._scheduler, keys=keys))

    def serve_columns(self, cols, keys, labels) -> list:
        return self._run(lambda: self.runtime.process_columns(
            cols, keys, labels=labels, scheduler=self._scheduler))

    def set_l2_admission(self, admit: bool) -> None:
        self.start()
        cache = getattr(self.runtime, "decision_cache", None)
        if getattr(cache, "two_level", False):
            cache.l2_admit = bool(admit)

    def _run(self, replay) -> list:
        # The replay cuts its own span stream from the timestamp column it
        # extracts anyway (no second per-packet pass) and records the
        # stream's stats as ``last_flush_stats``.
        self.start()
        started = time.perf_counter()
        decisions = replay()
        self.shard_seconds = [time.perf_counter() - started]
        self.flush_stats = getattr(self.runtime, "last_flush_stats", None) \
            or FlushStats()
        return decisions

    @property
    def cache_stats(self) -> CacheStats:
        # A snapshot, not the live counters: a ServingReport must not mutate
        # retroactively when the replica serves again.
        total = CacheStats()
        cache = getattr(self.runtime, "decision_cache", None)
        if cache is not None:
            total.merge(cache.stats)
        return total


class _ShardedDriver:
    """N replicas replayed serially (modeled parallel wall clock)."""

    def __init__(self, replica_factory, config: EngineConfig,
                 payload_bytes: int | None):
        self._factory = replica_factory
        self._config = config
        self._dispatcher: ShardedDispatcher | None = None

    def start(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = ShardedDispatcher(
                runtime_factory=self._factory,
                n_shards=self._config.n_workers,
                scheduler=self._config.scheduler())

    def close(self) -> None:
        self._dispatcher = None

    def serve(self, trace: Trace, labels, keys) -> list:
        self.start()
        return self._dispatcher.serve_trace(trace, labels=labels, keys=keys)

    def set_l2_admission(self, admit: bool) -> None:
        self.start()
        for rt in self._dispatcher.runtimes:
            cache = getattr(rt, "decision_cache", None)
            if getattr(cache, "two_level", False):
                cache.l2_admit = bool(admit)

    @property
    def shard_seconds(self) -> list[float]:
        return self._dispatcher.shard_seconds if self._dispatcher else []

    @property
    def flush_stats(self) -> FlushStats:
        return self._dispatcher.flush_stats if self._dispatcher else FlushStats()

    @property
    def cache_stats(self) -> CacheStats:
        return self._dispatcher.cache_stats if self._dispatcher else CacheStats()


class _ParallelDriver:
    """N persistent worker processes (measured concurrent wall clock)."""

    def __init__(self, replica_factory, config: EngineConfig,
                 payload_bytes: int | None):
        self._dispatcher = ParallelDispatcher(
            runtime_factory=replica_factory,
            n_workers=config.n_workers,
            scheduler=config.scheduler(),
            payload_bytes=payload_bytes,
            start_method=config.start_method,
            ring_depth=config.ring_depth,
            ring_chunk=config.ring_chunk)

    def start(self) -> None:
        self._dispatcher.start()

    def close(self) -> None:
        self._dispatcher.close()

    def serve(self, trace: Trace, labels, keys) -> list:
        return self._dispatcher.serve_trace(trace, labels=labels)

    def set_l2_admission(self, admit: bool) -> None:
        # Workers apply the flag from each shard payload; the dispatcher
        # just records the current setting.
        self._dispatcher.l2_admit = bool(admit)

    @property
    def shard_seconds(self) -> list[float]:
        return self._dispatcher.shard_seconds

    @property
    def flush_stats(self) -> FlushStats:
        return self._dispatcher.flush_stats

    @property
    def cache_stats(self) -> CacheStats:
        return self._dispatcher.cache_stats


register_topology("local", _LocalDriver)
register_topology("sharded", _ShardedDriver)
register_topology("parallel", _ParallelDriver)


# ---------------------------------------------------------------------------
# Replica factories (picklable, for spawn-started workers)
# ---------------------------------------------------------------------------

class _KindFactory:
    """Build one replica from (runtime kind, source, config), by kind name.

    A class rather than a closure so an engine-built factory can cross a
    ``spawn`` process boundary whenever its source pickles: the kind is
    re-resolved from the registry inside the worker.
    """

    def __init__(self, kind_name: str, source, config: "EngineConfig"):
        self.kind_name = kind_name
        self.source = source
        self.config = config

    def __call__(self):
        return runtime_kinds.get(self.kind_name).build(self.source,
                                                       self.config)


class _ModelRuntimeFactory:
    """Build a replica through ``model.make_runtime``, config applied on top.

    A class rather than a closure so ``from_model(runtime="two_stage")``
    engines stay spawn-compatible whenever the model itself pickles.
    """

    def __init__(self, model, config: "EngineConfig"):
        self.model = model
        self.config = config

    def __call__(self):
        rt = self.model.make_runtime(capacity=self.config.capacity)
        rt.batch_size = self.config.batch_size
        rt.decision_cache = self.config.make_cache()
        return rt


class _ReplicaFactory:
    """Apply the configured lookup backend to each freshly built replica.

    The backend is resolved by name at call time (worker-side for process
    topologies), so this wrapper pickles whenever ``base`` does — custom
    backends registered via :func:`register_lookup_backend` must then also
    be registered in the worker's interpreter (automatic under ``fork``).

    Two-level caches built in the *same process* share one L2 store: the
    first replica's ``cache.l2`` is captured and handed to every later
    replica, so ``sharded`` shards see each other's approximate entries the
    way ``parallel`` workers do through the dispatcher's export/merge. The
    captured store never crosses a process boundary (each spawn/fork worker
    pickles the factory before any replica exists).
    """

    def __init__(self, base: Callable[[], Any], backend_name: str):
        self.base = base
        self.backend_name = backend_name
        self.shared_l2 = None

    def __call__(self):
        rt = self.base()
        lookup_backends.get(self.backend_name).apply(rt)
        cache = getattr(rt, "decision_cache", None)
        if getattr(cache, "two_level", False):
            if self.shared_l2 is None:
                self.shared_l2 = cache.l2
            else:
                cache.l2 = self.shared_l2
        return rt

    def __getstate__(self):
        # Drop the captured store when crossing a process boundary: workers
        # must start with their own empty L2 (shared via export/merge), not
        # a pickled copy that silently diverges.
        return {"base": self.base, "backend_name": self.backend_name,
                "shared_l2": None}


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

@dataclass
class ServingReport:
    """Everything one serve produced, merged into a single result.

    ``wall_seconds`` is the measured wall clock of the serve call (workers
    are started beforehand, so it measures serving, not setup);
    ``shard_seconds`` is the per-replica replay breakdown (one entry for
    ``local``, one per shard/worker otherwise — replay only, excluding IPC).
    ``flush_stats`` merges every replica's span-stream counters for this
    serve; ``cache_stats`` aggregates the replicas' *lifetime* decision-cache
    counters.
    """

    decisions: list
    n_packets: int
    wall_seconds: float
    topology: str
    n_workers: int
    runtime: str
    lookup_backend: str
    shard_seconds: list = field(default_factory=list)
    flush_stats: FlushStats = field(default_factory=FlushStats)
    cache_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def n_decisions(self) -> int:
        return len(self.decisions)

    @property
    def pps(self) -> float:
        """Measured packets/sec of this serve."""
        return self.n_packets / max(self.wall_seconds, 1e-9)

    @property
    def critical_seconds(self) -> float:
        """Slowest replica's replay time — the modeled concurrent wall clock
        (equals the measured wall for single-replica topologies)."""
        return max(self.shard_seconds) if self.shard_seconds \
            else self.wall_seconds

    @property
    def pps_parallel(self) -> float:
        """Packets/sec if replicas ran concurrently (pps at the critical
        path) — what ``sharded`` models and ``parallel`` measures."""
        return self.n_packets / max(self.critical_seconds, 1e-9)

    @property
    def accuracy(self) -> float | None:
        """Fraction of labelled decisions that were correct (None when the
        serve carried no ground-truth labels)."""
        labelled = [d for d in self.decisions if d.flow_label >= 0]
        if not labelled:
            return None
        return float(np.mean([d.predicted == d.flow_label for d in labelled]))

    def summary(self) -> dict:
        """Scalar view for logs / bench JSON (decisions elided)."""
        return {
            "topology": self.topology, "n_workers": self.n_workers,
            "runtime": self.runtime, "lookup_backend": self.lookup_backend,
            "n_packets": self.n_packets, "n_decisions": self.n_decisions,
            "wall_seconds": self.wall_seconds, "pps": self.pps,
            "pps_parallel": self.pps_parallel,
            "accuracy": self.accuracy,
            "cache_hit_rate": self.cache_stats.hit_rate,
            "cache_exact_hits": self.cache_stats.exact_hits,
            "cache_approx_hits": self.cache_stats.approx_hits,
            "cache_l2_skipped": self.cache_stats.l2_skipped,
            "flushes": self.flush_stats.total,
        }


@dataclass
class ScenarioServingReport:
    """One scenario serve, broken down by ground-truth phase.

    ``overall`` merges the whole replay (decisions in global trace order);
    ``phases`` pairs each :class:`~repro.net.scenarios.PhaseSpan` with that
    phase's own :class:`ServingReport` — accuracy, pps, flush stats, and the
    *per-phase delta* of the replicas' decision-cache counters (so an
    attack-flood phase shows its own hit rate, not the run's lifetime
    average).
    """

    scenario: str
    seed: int | None
    overall: ServingReport
    phases: list = field(default_factory=list)   # [(PhaseSpan, ServingReport)]

    def phase(self, name: str) -> ServingReport:
        """The report of one phase, by phase name."""
        for span, report in self.phases:
            if span.name == name:
                return report
        raise KeyError(f"scenario {self.scenario!r} has no phase {name!r}; "
                       f"phases: {[s.name for s, _ in self.phases]}")

    def summary(self) -> dict:
        """Scalar view for logs / bench JSON, one row per phase."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "overall": self.overall.summary(),
            "phases": {
                span.name: {
                    "t_start": span.t_start, "t_end": span.t_end,
                    **report.summary(),
                } for span, report in self.phases
            },
        }


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

def _cache_snapshot(driver) -> CacheStats:
    """A detached copy of the driver's aggregate cache counters right now."""
    live = driver.cache_stats
    return CacheStats(hits=live.hits, misses=live.misses,
                      evictions=live.evictions,
                      approx_hits=getattr(live, "approx_hits", 0),
                      l2_skipped=getattr(live, "l2_skipped", 0))


def _cache_delta(after: CacheStats, before: CacheStats) -> CacheStats:
    """Counter growth between two snapshots (one phase's own activity)."""
    return CacheStats(hits=after.hits - before.hits,
                      misses=after.misses - before.misses,
                      evictions=after.evictions - before.evictions,
                      approx_hits=after.approx_hits - before.approx_hits,
                      l2_skipped=after.l2_skipped - before.l2_skipped)


def _warn_deprecated(old: str, new: str) -> None:
    """One DeprecationWarning per old named serve entry point.

    ``stacklevel=3`` points at the *caller* of the deprecated method
    (helper -> shim -> caller), mirroring ``repro.serving.compat``.
    """
    warnings.warn(
        f"PegasusEngine.{old}() is deprecated; use PegasusEngine.{new}",
        DeprecationWarning, stacklevel=3)


class PegasusEngine:
    """The serving facade: one validated config, one build path.

    Construct from a compiled artifact (:meth:`from_compiled`), a trained
    :class:`~repro.models.base.TrafficModel` (:meth:`from_model`), a
    two-stage spec mapping (``PegasusEngine(source={...},
    runtime="two_stage")``), or an arbitrary replica factory
    (:meth:`from_factory`). The engine resolves the configured runtime kind,
    lookup backend, admission policy, and topology through the module
    registries, owns the driver's lifecycle (``start()``/``close()``/context
    manager — safe to call unconditionally), and serves through **one**
    polymorphic entry point:

    - :meth:`serve` — dispatches on workload shape (a list of labelled
      :class:`~repro.net.flow.Flow` s, a time-ordered
      :class:`~repro.net.traces.Trace`, ``Trace.to_columns()``-style
      per-packet arrays, or a scenario) and on ``mode``: ``"closed"``
      replays as fast as the stack drains; ``"open"`` paces packets by
      their own timestamps through the configured admission policy and
      reports decision latency / queue depth / shed packets.

    ``close()`` discards replica state (registers, caches); the next serve
    starts cold, exactly like the dispatchers it wraps.
    """

    def __init__(self, source=None, config: EngineConfig | None = None, *,
                 runtime_factory: Callable[[], Any] | None = None,
                 **overrides):
        if (source is None) == (runtime_factory is None):
            raise ConfigError(
                "source", source,
                reason="exactly one of source / runtime_factory is required")
        # _resolve_config runs EngineConfig.__post_init__, which already
        # validates runtime/lookup_backend/topology against the registries.
        self.config = _resolve_config(config, overrides)
        base = runtime_factory if runtime_factory is not None \
            else _KindFactory(self.config.runtime, source, self.config)
        self._replica_factory = _ReplicaFactory(
            base, self.config.lookup_backend)
        payload = self.config.payload_bytes
        if payload is None and self.config.runtime == "two_stage":
            payload = (_two_stage_spec(source).get("raw_bytes",
                                                   DEFAULT_PAYLOAD_BYTES)
                       if source is not None else DEFAULT_PAYLOAD_BYTES)
        self.payload_bytes = payload
        self._driver = topologies.get(self.config.topology)(
            self._replica_factory, self.config, payload)

    # -- builders ------------------------------------------------------------

    @classmethod
    def from_compiled(cls, compiled, config: EngineConfig | None = None,
                      **overrides) -> "PegasusEngine":
        """Serve a compiled artifact (a
        :class:`~repro.core.mapping.CompiledModel` or placed
        :class:`~repro.dataplane.Pipeline`) through the configured runtime
        kind."""
        return cls(source=compiled, config=config, **overrides)

    @classmethod
    def from_model(cls, model, config: EngineConfig | None = None,
                   **overrides) -> "PegasusEngine":
        """Serve a trained-and-compiled :class:`TrafficModel`.

        ``runtime="windowed"`` (default) serves ``model.compiled``;
        ``runtime="two_stage"`` builds each replica through the model's own
        ``make_runtime`` (the CNN-L flow-scalability deployment), with the
        config's batch/cache/backend settings applied on top.
        """
        config = _resolve_config(config, overrides)
        compiled = getattr(model, "compiled", None)
        if compiled is None:
            raise ConfigError(
                "source", type(model).__name__,
                reason="model must be trained and compiled "
                       "(compile_dataplane) before serving")
        if config.runtime == "two_stage":
            if not hasattr(model, "make_runtime"):
                raise ConfigError(
                    "runtime", "two_stage",
                    reason=f"{type(model).__name__} does not expose "
                           "make_runtime; use runtime='windowed'")
            # A tiny probe replica validates eagerly what the model's own
            # make_runtime fixes (the config must agree, not silently lose)
            # and supplies the payload width the parallel topology ships.
            probe = model.make_runtime(capacity=1)
            window = getattr(probe, "window", config.window)
            if window != config.window:
                raise ConfigError(
                    "window", config.window,
                    allowed=str(window),
                    reason=f"{type(model).__name__}.make_runtime builds "
                           f"window-{window} replicas")
            if config.payload_bytes is None:
                config = replace(config, payload_bytes=getattr(
                    probe, "raw_bytes", DEFAULT_PAYLOAD_BYTES))
            return cls(runtime_factory=_ModelRuntimeFactory(model, config),
                       config=config)
        return cls(source=compiled, config=config)

    @classmethod
    def from_factory(cls, runtime_factory: Callable[[], Any],
                     config: EngineConfig | None = None,
                     **overrides) -> "PegasusEngine":
        """Serve replicas from an arbitrary zero-arg factory (escape hatch;
        the config's lookup backend is still applied to each replica)."""
        return cls(runtime_factory=runtime_factory, config=config, **overrides)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Build replicas (forking workers for ``parallel``); idempotent."""
        self._driver.start()

    def close(self) -> None:
        """Tear replicas down, discarding their state; always safe."""
        self._driver.close()

    def __enter__(self) -> "PegasusEngine":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -------------------------------------------------------------

    def serve(self, workload, *, mode: str = "closed",
              labels: np.ndarray | None = None, seed: int | None = None,
              flows_scale: float = 1.0, max_gap: float | None = None):
        """Serve any workload through one polymorphic entry point.

        ``workload`` dispatches on shape:

        - a :class:`~repro.net.scenarios.Scenario` (materialized here with
          ``seed`` / ``flows_scale``) or already materialized
          :class:`~repro.net.scenarios.ScenarioTrace` — closed mode returns
          a per-phase :class:`ScenarioServingReport`;
        - a list/tuple of labelled :class:`~repro.net.flow.Flow` s;
        - a time-ordered :class:`~repro.net.traces.Trace` (``labels``
          optional);
        - a ``Trace.to_columns()``-style dict of per-packet arrays.

        ``mode="closed"`` (default) replays as fast as the stack drains —
        the throughput benchmark. ``mode="open"`` pushes packets through the
        configured admission policy into a bounded ingress queue, paced by
        the workload's own timestamps at ``config.time_scale`` (0 = as fast
        as possible, deterministically), and returns an
        :class:`~repro.serving.openloop.OpenLoopReport` recording decision
        latency percentiles, the queue-depth timeline, and exactly which
        packets were shed. With ``admission="none"`` and ``time_scale=0``
        the open-loop decision stream is bit-identical to closed mode.
        ``max_gap`` (open mode) clips any single paced inter-arrival gap to
        that many wall seconds, bounding idle time on sparse traces.
        """
        if mode not in ("closed", "open"):
            raise ConfigError("mode", mode, allowed=("closed", "open"))
        kind = self._classify_workload(workload)
        if kind == "scenario":
            workload = workload.generate(seed=seed, flows_scale=flows_scale)
            kind = "scenario_trace"
        if mode == "open":
            if kind != "scenario_trace":
                workload = self._as_scenario_trace(workload, labels, kind)
            return self._serve_open(workload, max_gap=max_gap)
        if kind == "scenario_trace":
            return self._serve_scenario(workload, seed=seed)
        if kind == "flows":
            return self._serve_flows(workload)
        if kind == "columns":
            return self._serve_columns(workload, labels=labels)
        return self._serve_trace(workload, labels=labels)

    @staticmethod
    def _classify_workload(workload) -> str:
        """Map a workload object to its serve path, by shape."""
        if hasattr(workload, "generate") and hasattr(workload, "phases"):
            return "scenario"
        if hasattr(workload, "trace") and hasattr(workload, "phases"):
            return "scenario_trace"
        if isinstance(workload, Trace) or hasattr(workload, "packets"):
            return "trace"
        if isinstance(workload, dict):
            return "columns"
        if isinstance(workload, (list, tuple)):
            return "flows"
        raise ConfigError(
            "workload", type(workload).__name__,
            allowed="Scenario | ScenarioTrace | Trace | list[Flow] | "
                    "columns dict")

    def _as_scenario_trace(self, workload, labels, kind) -> ScenarioTrace:
        """Wrap a non-scenario workload as a single-phase ScenarioTrace so
        the open-loop pump has timestamps and a phase span to pace/report."""
        if kind == "flows":
            trace, _keys, labels = flows_to_trace(workload)
        elif kind == "columns":
            trace = Trace.from_columns(workload)
        else:
            trace = workload
        n = len(trace.packets)
        if labels is None:
            labels = np.full(n, -1, dtype=np.int64)
        ts0 = trace.packets[0].ts if n else 0.0
        ts1 = trace.packets[-1].ts if n else 0.0
        span = PhaseSpan("trace", float(ts0), float(ts1), 0, n)
        return ScenarioTrace(scenario="<trace>", seed=None, trace=trace,
                             labels=np.asarray(labels), phases=(span,))

    # -- deprecated named entry points (use serve()) -------------------------

    def serve_flows(self, flows: list) -> ServingReport:
        """Deprecated — use ``serve(flows)``."""
        _warn_deprecated("serve_flows", "serve(flows)")
        return self._serve_flows(flows)

    def serve_trace(self, trace: Trace, labels: np.ndarray | None = None
                    ) -> ServingReport:
        """Deprecated — use ``serve(trace, labels=...)``."""
        _warn_deprecated("serve_trace", "serve(trace, labels=...)")
        return self._serve_trace(trace, labels=labels)

    def serve_columns(self, cols: dict[str, np.ndarray],
                      labels: np.ndarray | None = None) -> ServingReport:
        """Deprecated — use ``serve(cols, labels=...)``."""
        _warn_deprecated("serve_columns", "serve(cols, labels=...)")
        return self._serve_columns(cols, labels=labels)

    def serve_scenario(self, scenario, seed: int | None = None,
                       flows_scale: float = 1.0) -> ScenarioServingReport:
        """Deprecated — use ``serve(scenario, seed=..., flows_scale=...)``."""
        _warn_deprecated("serve_scenario",
                         "serve(scenario, seed=..., flows_scale=...)")
        if hasattr(scenario, "generate"):
            scenario = scenario.generate(seed=seed, flows_scale=flows_scale)
        return self._serve_scenario(scenario, seed=seed)

    # -- serve internals -----------------------------------------------------

    def _serve_flows(self, flows: list) -> ServingReport:
        """Replay the interleaved trace of many labelled flows."""
        trace, keys, labels = flows_to_trace(flows)
        return self._serve(len(trace.packets),
                           lambda: self._driver.serve(trace, labels, keys))

    def _serve_trace(self, trace: Trace, labels: np.ndarray | None = None
                     ) -> ServingReport:
        """Replay one time-ordered trace (per-packet ``labels`` optional)."""
        return self._serve(len(trace.packets),
                           lambda: self._driver.serve(trace, labels, None))

    def _serve_columns(self, cols: dict[str, np.ndarray],
                       labels: np.ndarray | None = None) -> ServingReport:
        """Replay ``Trace.to_columns()``-style per-packet arrays.

        ``cols`` must hold ``ts`` plus the 5-tuple key columns (and whatever
        per-packet columns the runtime kind consumes — ``length`` for
        windowed, ``payload`` for two-stage). The ``local`` topology replays
        the columns directly; dispatch topologies rebuild the trace once and
        shard it columnar again.
        """
        missing = [c for c in ("ts", *KEY_COLUMN_NAMES) if c not in cols]
        if missing:
            raise ValueError(f"missing serve columns: {missing}")
        if hasattr(self._driver, "serve_columns"):
            keys = keys_from_columns(canonicalize_key_columns(
                {name: cols[name] for name in KEY_COLUMN_NAMES}))
            return self._serve(
                len(cols["ts"]),
                lambda: self._driver.serve_columns(cols, keys, labels))
        trace = Trace.from_columns(cols)
        return self._serve_trace(trace, labels=labels)

    def _serve_scenario(self, workload: ScenarioTrace,
                        seed: int | None = None) -> ScenarioServingReport:
        """Replay a time-varying scenario, reported per ground-truth phase.

        Each phase is served as its own call against the *same* replicas —
        flow registers and caches carry across phase boundaries exactly as
        they would in one continuous replay, and batch boundaries never
        change decisions — so the concatenated decision stream is
        bit-identical to a single trace serve of the whole workload
        (asserted by the differential harness) while every phase still gets
        its own accuracy/pps/cache breakdown. Phases declaring
        ``l2_insert=False`` close the two-level cache's L2 admission gate
        for their span (cold phases skip the box-certificate insert work).
        """
        self.start()
        phases: list = []
        decisions: list = []
        n_packets, wall = 0, 0.0
        shard_seconds: list[float] | None = None
        flush_total = FlushStats()
        first = _cache_snapshot(self._driver)
        before = first
        try:
            for span in workload.phases:
                self._set_l2_admission(getattr(span, "l2_insert", True))
                sub = Trace(workload.trace.packets[span.start:span.stop])
                labels = workload.labels[span.start:span.stop]
                report = self._serve(
                    len(sub.packets),
                    lambda sub=sub, labels=labels:
                        self._driver.serve(sub, labels, None))
                for d in report.decisions:
                    d.seq += span.start        # sub-trace -> global position
                after = _cache_snapshot(self._driver)
                report.cache_stats = _cache_delta(after, before)
                before = after
                phases.append((span, report))
                decisions.extend(report.decisions)
                n_packets += report.n_packets
                wall += report.wall_seconds
                flush_total.merge(report.flush_stats)
                shard_seconds = (list(report.shard_seconds)
                                 if shard_seconds is None else
                                 [a + b for a, b in zip(shard_seconds,
                                                        report.shard_seconds)])
        finally:
            self._set_l2_admission(True)
        overall = ServingReport(
            decisions=decisions, n_packets=n_packets, wall_seconds=wall,
            topology=self.config.topology, n_workers=self.config.n_workers,
            runtime=self.config.runtime,
            lookup_backend=self.config.lookup_backend,
            shard_seconds=shard_seconds or [], flush_stats=flush_total,
            cache_stats=_cache_delta(before, first))
        return ScenarioServingReport(
            scenario=getattr(workload, "scenario", "<trace>"),
            seed=getattr(workload, "seed", seed),
            overall=overall, phases=phases)

    def _set_l2_admission(self, admit: bool) -> None:
        """Open/close the two-level cache's L2 gate on every replica
        (no-op for drivers or caches without the knob)."""
        setter = getattr(self._driver, "set_l2_admission", None)
        if setter is not None:
            setter(bool(admit))

    def _serve_open(self, workload: ScenarioTrace,
                    max_gap: float | None = None) -> OpenLoopReport:
        """Pump a materialized workload open-loop through the admission
        policy and the configured driver.

        The pump feeds admitted packets in arrival order, the consumer
        drains chunks of at most ``config.batch_size`` through the normal
        driver serve path — and because batch boundaries never change
        decisions, the concatenated decision stream over the admitted
        subsequence is bit-identical to a closed-loop replay of exactly
        those packets (``verify_open_loop`` in the differential harness
        asserts this against the scalar reference).
        """
        self.start()
        config = self.config
        policy = admission_policies.get(config.admission).build(config)
        trace = workload.trace
        labels = np.asarray(workload.labels)
        n = len(trace.packets)
        flush_total = FlushStats()
        shard_seconds: list[float] | None = None

        def serve_chunk(indices: list[int]) -> list:
            nonlocal shard_seconds
            idx = np.asarray(indices, dtype=np.int64)
            sub = Trace([trace.packets[int(i)] for i in idx])
            decisions = self._driver.serve(sub, labels[idx], None)
            for d in decisions:
                d.seq = int(idx[d.seq])        # chunk -> global position
            flush_total.merge(self._driver.flush_stats)
            shard_seconds = (list(self._driver.shard_seconds)
                             if shard_seconds is None else
                             [a + b for a, b in
                              zip(shard_seconds,
                                  self._driver.shard_seconds)])
            return decisions

        offsets = None
        if config.time_scale > 0:
            offsets = workload.arrival_offsets(config.time_scale,
                                               max_gap=max_gap)
        before = _cache_snapshot(self._driver)
        pump = OpenLoopPump(n, offsets, serve_chunk, policy,
                            drain_max=max(1, config.batch_size))
        result = pump.run()
        after = _cache_snapshot(self._driver)
        serving = ServingReport(
            decisions=result.decisions, n_packets=int(result.served),
            wall_seconds=result.wall_seconds,
            topology=config.topology, n_workers=config.n_workers,
            runtime=config.runtime, lookup_backend=config.lookup_backend,
            shard_seconds=shard_seconds or [], flush_stats=flush_total,
            cache_stats=_cache_delta(after, before))
        return build_open_loop_report(
            result, serving=serving, config=config,
            ts=workload.ts_column(), phases=workload.phases,
            scenario=getattr(workload, "scenario", "<trace>"),
            seed=getattr(workload, "seed", None),
            admission=config.admission, time_scale=config.time_scale,
            p99_target_ms=config.p99_target_ms)

    def _serve(self, n_packets: int, run: Callable[[], list]) -> ServingReport:
        self.start()    # replica build / worker fork lands outside the clock
        started = time.perf_counter()
        decisions = run()
        wall = time.perf_counter() - started
        d = self._driver
        return ServingReport(
            decisions=decisions, n_packets=n_packets, wall_seconds=wall,
            topology=self.config.topology, n_workers=self.config.n_workers,
            runtime=self.config.runtime,
            lookup_backend=self.config.lookup_backend,
            shard_seconds=list(d.shard_seconds),
            flush_stats=d.flush_stats, cache_stats=d.cache_stats)


__all__ = [
    "CACHE_MODES",
    "AdmissionPolicySpec",
    "EngineConfig",
    "LookupBackend",
    "OpenLoopReport",
    "PegasusEngine",
    "Registry",
    "RuntimeKind",
    "ScenarioServingReport",
    "ServingReport",
    "admission_policies",
    "lookup_backends",
    "register_admission_policy",
    "register_lookup_backend",
    "register_runtime_kind",
    "register_topology",
    "runtime_kinds",
    "topologies",
]
