"""LRU flow-decision cache: skip model invocation when a flow's window repeats.

Per-flow serving spends most of its model invocations on a few elephant flows,
and an elephant's feature window quickly becomes repetitive (constant-rate
flows produce the *same* length/IPD bucket window packet after packet). A
:class:`FlowDecisionCache` memoizes the model's decision per
``(canonical 5-tuple, window index)`` pair, where the *window index* is the
packed byte content of the flow's current feature window — so a cache hit
returns exactly what the model would have computed and decisions stay
bit-identical to an uncached replay (asserted by the serving tests). This is
the cache-optimization lever 5GC^2ache identifies as dominant for per-flow
dataplane serving.

The cache is wired into both dataplane runtimes behind the ``decision_cache``
flag::

    from repro.dataplane.runtime import WindowedClassifierRuntime
    from repro.serving import FlowDecisionCache

    runtime = WindowedClassifierRuntime(
        compiled, feature_mode="stats", decision_cache=FlowDecisionCache(capacity=65536)
    )

Eviction is LRU (a hit refreshes the entry); ``stats`` counts hits, misses,
and evictions. Keys include the flow's canonical 5-tuple, so register
eviction churn in the runtime never invalidates the cache: a re-arriving
evicted elephant hits again as soon as its window re-forms.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ConfigError

# Placeholder a batched replay inserts at the cache position where the scalar
# path would have inserted the real decision, before the batch's single model
# invocation has produced it. Reserving the slot in row order keeps the LRU
# recency/eviction sequence — and therefore every subsequent hit/miss count —
# bit-identical to per-packet replay; ``fill`` swaps in the real decision
# afterwards without touching recency. Identity-compared, never equal to a
# real (integer) decision.
PENDING = object()


@dataclass
class CacheStats:
    """Hit/miss/evict counters for one :class:`FlowDecisionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another cache's counters (e.g. across worker replicas)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions


class FlowDecisionCache:
    """Bounded LRU map of ``(canonical 5-tuple, window index) -> decision``.

    ``get`` refreshes recency and counts a hit or miss; ``put`` inserts,
    evicting the least recently used entry at ``capacity``. Values are the
    model's integer class decisions, so a hit can short-circuit the model
    invocation entirely.
    """

    def __init__(self, capacity: int = 65536):
        if capacity < 1:
            raise ConfigError("capacity", capacity, allowed=">= 1",
                              reason="cache capacity")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key):
        """The cached decision for ``key`` (or :data:`PENDING`), None on miss."""
        decision = self._entries.get(key)
        if decision is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return decision

    def put(self, key, decision: int) -> None:
        """Insert (or refresh) one decision, evicting LRU at capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = decision
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = decision

    def discard_pending(self, key) -> None:
        """Drop a :data:`PENDING` placeholder, leaving real entries alone.

        Exception-path cleanup: if the model invocation that was meant to
        :meth:`fill` a reserved slot fails, the placeholder must not outlive
        the flush (a later lookup would hand the sentinel out as a
        decision). No stat counting.
        """
        if self._entries.get(key) is PENDING:
            del self._entries[key]

    def fill(self, key, decision: int) -> None:
        """Resolve a :data:`PENDING` placeholder in place, if still cached.

        No stat counting, no recency refresh: the lookup/insert already
        happened (in row order) when the placeholder went in; this only
        supplies the decision value. A placeholder evicted in the meantime
        stays evicted — exactly what the scalar path's entry would have done.
        """
        if key in self._entries:
            self._entries[key] = decision

    def clear(self) -> None:
        """Drop all entries; counters keep accumulating."""
        self._entries.clear()
