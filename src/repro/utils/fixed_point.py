"""Fixed-point number formats for dataplane activations.

Pegasus stores full-precision weights inside precomputed mapping tables but
represents *activations* as fixed-point integers, because PISA pipelines only
add and compare integers. A :class:`QFormat` describes one such signed
two's-complement format: ``total_bits`` wide with ``frac_bits`` fractional
bits, i.e. real value = stored integer / 2**frac_bits.

The paper's "Adaptive Fixed-Point Quantization" (§4.4) pre-computes the
fractional position per layer from the observed numerical range so that the
register width is fully used; :func:`choose_qformat` implements that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


@dataclass(frozen=True)
class QFormat:
    """A fixed-point format: ``total_bits`` wide, ``frac_bits`` fractional.

    Signed two's complement by default; ``signed=False`` models the unsigned
    8-bit raw features (packet-length buckets, payload bytes) the dataplane
    extracts from headers.
    """

    total_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self):
        if self.total_bits < 2 or self.total_bits > 64:
            raise QuantizationError(f"total_bits must be in [2, 64], got {self.total_bits}")

    @property
    def scale(self) -> float:
        """Multiplier converting real values to stored integers."""
        return float(2.0 ** self.frac_bits)

    @property
    def int_min(self) -> int:
        return -(1 << (self.total_bits - 1)) if self.signed else 0

    @property
    def int_max(self) -> int:
        if self.signed:
            return (1 << (self.total_bits - 1)) - 1
        return (1 << self.total_bits) - 1

    @property
    def real_min(self) -> float:
        return self.int_min / self.scale

    @property
    def real_max(self) -> float:
        return self.int_max / self.scale

    @property
    def resolution(self) -> float:
        """Smallest representable real increment."""
        return 1.0 / self.scale

    def quantize(self, values: np.ndarray | float) -> np.ndarray:
        """Convert real values to stored integers, rounding and saturating."""
        q = np.round(np.asarray(values, dtype=np.float64) * self.scale)
        q = np.clip(q, self.int_min, self.int_max)
        return q.astype(np.int64)

    def dequantize(self, stored: np.ndarray | int) -> np.ndarray:
        """Convert stored integers back to real values."""
        return np.asarray(stored, dtype=np.float64) / self.scale

    def roundtrip(self, values: np.ndarray | float) -> np.ndarray:
        """Quantize then dequantize — the representable approximation."""
        return self.dequantize(self.quantize(values))

    def rescale_to(self, stored: np.ndarray, other: "QFormat") -> np.ndarray:
        """Re-express stored integers in another format using only shifts.

        A right shift loses precision exactly like the hardware would; a left
        shift may saturate. This mirrors what a PISA action can do between
        layers whose fixed-point positions differ.
        """
        shift = other.frac_bits - self.frac_bits
        stored = np.asarray(stored, dtype=np.int64)
        if shift >= 0:
            out = stored << shift
        else:
            out = stored >> (-shift)
        return np.clip(out, other.int_min, other.int_max)

    def __str__(self) -> str:  # e.g. Q8.3 = 8 bits total, 3 fractional
        prefix = "Q" if self.signed else "UQ"
        return f"{prefix}{self.total_bits}.{self.frac_bits}"


def choose_qformat(values: np.ndarray, total_bits: int, margin: float = 1.0) -> QFormat:
    """Pick the fractional position that maximizes precision without overflow.

    Implements the paper's adaptive post-training quantization: given the
    calibration ``values`` a layer produces, choose ``frac_bits`` so the
    largest magnitude (times ``margin`` headroom) still fits in
    ``total_bits`` signed bits.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise QuantizationError("cannot calibrate a QFormat from an empty array")
    peak = float(np.max(np.abs(values))) * margin
    if not np.isfinite(peak):
        raise QuantizationError("calibration values contain NaN or infinity")
    if peak == 0.0:
        return QFormat(total_bits, total_bits - 1)
    # Need 2**(total_bits-1) > peak * 2**frac_bits.
    int_bits = int(np.ceil(np.log2(peak + 1e-12))) + 1  # sign + magnitude
    frac_bits = total_bits - 1 - max(int_bits - 1, 0)
    return QFormat(total_bits, frac_bits)
