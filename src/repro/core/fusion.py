"""Primitive Fusion (paper §4.3).

Basic fusion rewrites a primitive program without changing its semantics:

- **Linear Reordering**: ``SumReduce`` followed by an affine Map commutes
  (``f(a+b) = f(a) + f(b)`` up to the bias, which is split across segments),
  so the Map slides before the SumReduce where it can merge into the
  preceding per-segment Maps.
- **Merging Consecutive Maps**: adjacent Maps compose whenever one of them
  is elementwise (slice and compose per segment) or both operate on the
  whole vector.

Advanced fusion changes the model architecture:

- **Removal of Nonlinear Mappings** strips elementwise nonlinearities so the
  whole program collapses into a single Map (+ SumReduce) — cheap but lossy.
- **Reduction of SumReduce** keeps only the final SumReduce: the model is a
  Neural Additive Model whose per-segment subnetworks each become a single
  fuzzy-matched table (used by CNN-M/L and the AutoEncoder). Built with
  :func:`additive_program` because it is a property of how the model was
  trained, not a semantics-preserving rewrite.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import CompilationError
from repro.core.primitives import (
    Affine,
    ElementwiseAffine,
    FuncSpec,
    General,
    MapStep,
    PrimitiveProgram,
    SumReduceStep,
    Step,
    compose,
)


def _output_slices(step: MapStep) -> list[tuple[int, int]]:
    """Slice of the step's output produced by each segment."""
    slices = []
    cursor = 0
    for d in step.out_dims:
        slices.append((cursor, cursor + d))
        cursor += d
    return slices


def _try_merge_maps(a: MapStep, b: MapStep) -> MapStep | None:
    """Merge ``b`` after ``a`` into one MapStep, or return None."""
    # Case 1: b elementwise -> slice b to a's output ranges, compose per segment.
    if b.is_elementwise:
        b_fn = b.fns[0] if b.is_whole else None
        fns = []
        for (start, stop), fn in zip(_output_slices(a), a.fns):
            if b_fn is not None:
                tail = b_fn.slice(start, stop)
            else:
                # b partitioned: only mergeable when b's cuts align with a's.
                return _try_merge_aligned(a, b)
            fns.append(compose(fn, tail))
        return MapStep(partition=a.partition, fns=fns)
    # Case 2: b's cuts align with a's output slices -> compose per segment
    # (this is how a reordered affine Map folds back into the MatMul maps).
    aligned = _try_merge_aligned(a, b)
    if aligned is not None:
        return aligned
    # Case 3: a elementwise -> slice a to b's partition, compose per segment.
    if a.is_elementwise and a.is_whole:
        a_fn = a.fns[0]
        fns = [compose(a_fn.slice(start, stop), fn)
               for (start, stop), fn in zip(b.partition, b.fns)]
        return MapStep(partition=b.partition, fns=fns)
    # Case 4: both whole-vector -> straight composition.
    if a.is_whole and b.is_whole:
        return MapStep(partition=a.partition, fns=[compose(a.fns[0], b.fns[0])])
    return None


def _try_merge_aligned(a: MapStep, b: MapStep) -> MapStep | None:
    """Merge partitioned elementwise ``b`` whose cuts align with ``a``'s outputs."""
    a_slices = _output_slices(a)
    if [s for s in b.partition] != a_slices:
        return None
    fns = [compose(fa, fb) for fa, fb in zip(a.fns, b.fns)]
    return MapStep(partition=a.partition, fns=fns)


def _try_reorder(sr: SumReduceStep, m: MapStep) -> list[Step] | None:
    """Linear Reordering: [SumReduce, affine Map] -> [per-segment Map, SumReduce]."""
    if not (m.is_whole and m.fns[0].is_affine):
        return None
    fn = m.fns[0]
    k, d = sr.n_segments, sr.seg_dim
    if isinstance(fn, ElementwiseAffine):
        seg_fns: list[FuncSpec] = [ElementwiseAffine(fn.scale, fn.shift / k)
                                   for _ in range(k)]
        out_dim = d
    elif isinstance(fn, Affine):
        seg_fns = [Affine(fn.matrix, fn.bias / k) for _ in range(k)]
        out_dim = fn.out_dim
    else:
        return None
    partition = [(i * d, (i + 1) * d) for i in range(k)]
    return [MapStep(partition=partition, fns=seg_fns),
            SumReduceStep(n_segments=k, seg_dim=out_dim)]


def fuse_basic(program: PrimitiveProgram) -> PrimitiveProgram:
    """Apply basic fusion rules to a fixpoint. Semantics-preserving."""
    steps = list(program.steps)
    changed = True
    while changed:
        changed = False
        # Drop trivial single-segment SumReduces.
        for i, step in enumerate(steps):
            if isinstance(step, SumReduceStep) and step.n_segments == 1:
                del steps[i]
                changed = True
                break
        if changed:
            continue
        for i in range(len(steps) - 1):
            a, b = steps[i], steps[i + 1]
            if isinstance(a, MapStep) and isinstance(b, MapStep):
                merged = _try_merge_maps(a, b)
                if merged is not None:
                    steps[i:i + 2] = [merged]
                    changed = True
                    break
            if isinstance(a, SumReduceStep) and isinstance(b, MapStep):
                reordered = _try_reorder(a, b)
                if reordered is not None:
                    steps[i:i + 2] = reordered
                    changed = True
                    break
    fused = PrimitiveProgram(input_dim=program.input_dim, steps=steps)
    fused.validate()
    return fused


def remove_nonlinear(program: PrimitiveProgram) -> PrimitiveProgram:
    """Advanced fusion ❷: strip elementwise nonlinearities (lossy).

    Returns a program whose nonlinear elementwise Maps became identities;
    running :func:`fuse_basic` afterwards collapses it to a single
    Map (+ SumReduce). Accuracy consequences are the model designer's
    problem — this is the paper's "purely linear models may drop accuracy".
    """
    from repro.core.primitives import ElementwiseFunc

    steps: list[Step] = []
    for step in program.steps:
        if isinstance(step, MapStep):
            fns = [ElementwiseAffine(np.ones(f.in_dim), np.zeros(f.in_dim))
                   if isinstance(f, ElementwiseFunc) else f
                   for f in step.fns]
            steps.append(MapStep(partition=step.partition, fns=fns))
        else:
            steps.append(step)
    out = PrimitiveProgram(input_dim=program.input_dim, steps=steps)
    out.validate()
    return out


def additive_program(input_dim: int, partition: list[tuple[int, int]],
                     segment_fns: list[Callable[[np.ndarray], np.ndarray]],
                     out_dim: int) -> PrimitiveProgram:
    """Advanced fusion ❸: a Neural-Additive-Model program.

    ``segment_fns[i]`` maps its raw input segment directly to a contribution
    to the final output; a single SumReduce aggregates. One fuzzy-matched
    table lookup per segment — the paper's CNN-M/L structure.
    """
    if len(partition) != len(segment_fns):
        raise CompilationError("one segment function per partition segment")
    fns = [General(fn=f, in_dim=stop - start, out_dim=out_dim, name=f"additive{i}")
           for i, ((start, stop), f) in enumerate(zip(partition, segment_fns))]
    program = PrimitiveProgram(
        input_dim=input_dim,
        steps=[MapStep(partition=partition, fns=fns),
               SumReduceStep(n_segments=len(partition), seg_dim=out_dim)])
    program.validate()
    return program
