"""Range-to-ternary conversion, including Consecutive Range Coding (CRC).

PISA TCAMs match (value, mask) ternary patterns, not numeric ranges. The
classic prefix expansion turns an arbitrary range ``[lo, hi]`` into at most
``2w - 2`` prefixes for width ``w``. Pegasus adopts NetBeacon's Consecutive
Range Coding: when a set of ranges *partitions* the space (exactly what a
clustering-tree feature's thresholds induce), priority-ordered entries that
each cover ``[0, hi_i]`` need only one prefix set per boundary and first-match
priority resolves the overlap, which is substantially cheaper than encoding
each range independently.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TernaryMatch:
    """A (value, mask) pattern over ``width`` bits; mask bit 1 = exact bit."""

    value: int
    mask: int
    width: int

    def matches(self, key: int) -> bool:
        return (key & self.mask) == (self.value & self.mask)

    def __str__(self) -> str:
        bits = []
        for i in range(self.width - 1, -1, -1):
            if (self.mask >> i) & 1:
                bits.append(str((self.value >> i) & 1))
            else:
                bits.append("*")
        return "".join(bits)


def range_to_prefixes(lo: int, hi: int, width: int) -> list[TernaryMatch]:
    """Minimal prefix cover of the inclusive integer range ``[lo, hi]``.

    Standard greedy algorithm: repeatedly take the largest aligned prefix
    block that starts at ``lo`` and does not overshoot ``hi``.
    """
    if not 0 <= lo <= hi < (1 << width):
        raise ValueError(f"invalid range [{lo}, {hi}] for width {width}")
    prefixes: list[TernaryMatch] = []
    cur = lo
    while cur <= hi:
        # Largest block size aligned at cur...
        size = cur & -cur if cur > 0 else 1 << width
        # ...that still fits in the remaining range.
        while size > hi - cur + 1:
            size //= 2
        span_bits = size.bit_length() - 1
        mask = ((1 << width) - 1) ^ ((1 << span_bits) - 1)
        prefixes.append(TernaryMatch(value=cur, mask=mask, width=width))
        cur += size
    return prefixes


@dataclass(frozen=True)
class PrioritizedEntry:
    """A ternary entry with a priority and the index it reports on match."""

    match: TernaryMatch
    priority: int  # lower number = matched first
    result: int


def consecutive_range_coding(boundaries: list[int], width: int) -> list[PrioritizedEntry]:
    """Encode the partition induced by sorted ``boundaries`` into ternary entries.

    ``boundaries = [b0 < b1 < ...]`` partitions ``[0, 2^width)`` into ranges
    ``[0, b0], (b0, b1], ..., (b_last, 2^width - 1]`` — exactly the regions a
    "x <= threshold" clustering-tree feature produces. Entry ``i`` covers
    ``[0, b_i]`` with priority ``i``; a final catch-all reports the last
    region. First-match-wins lookup then returns the index of the first
    boundary >= key.
    """
    space_max = (1 << width) - 1
    entries: list[PrioritizedEntry] = []
    previous = -1
    for i, boundary in enumerate(boundaries):
        if boundary <= previous:
            raise ValueError(f"boundaries must be strictly increasing, got {boundaries}")
        if boundary > space_max:
            raise ValueError(f"boundary {boundary} exceeds {width}-bit space")
        for prefix in range_to_prefixes(0, boundary, width):
            entries.append(PrioritizedEntry(match=prefix, priority=i, result=i))
        previous = boundary
    catch_all = TernaryMatch(value=0, mask=0, width=width)
    entries.append(PrioritizedEntry(match=catch_all, priority=len(boundaries),
                                    result=len(boundaries)))
    return entries


def lookup_prioritized(entries: list[PrioritizedEntry], key: int) -> int:
    """First-match-wins lookup (reference model of a TCAM)."""
    best = None
    for entry in entries:
        if entry.match.matches(key):
            if best is None or entry.priority < best.priority:
                best = entry
    if best is None:
        raise LookupError(f"no entry matches key {key}")
    return best.result


def naive_partition_entries(boundaries: list[int], width: int) -> int:
    """Entry count if each region were prefix-expanded independently.

    Used to quantify CRC's saving in the ablation benchmarks.
    """
    edges = [0] + [b + 1 for b in boundaries] + [1 << width]
    total = 0
    for lo, hi_excl in zip(edges, edges[1:]):
        if lo <= hi_excl - 1:
            total += len(range_to_prefixes(lo, hi_excl - 1, width))
    return total
