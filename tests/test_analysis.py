"""Tests for ``repro.analysis`` — the static invariant wall.

Three layers, mirroring how the linter earns trust:

1. **Fixture tests** — every rule has at least one true-positive fixture
   AND one clean negative, so rules neither under- nor over-fire.
2. **Suppression mechanics** — ``# reprolint: disable=`` silences exactly
   the matched finding, multi-line spans work, and a suppression that
   silences nothing is itself reported.
3. **Mutation tests** — a synthetic violation per rule is injected into a
   temp copy of a *real* module and the CLI must exit nonzero naming the
   rule and the line; plus the repo-wide gate: the shipped tree is clean.
"""

from __future__ import annotations

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_source, default_rules
from repro.analysis.cli import main as cli_main
from repro.analysis.core import (UNUSED_SUPPRESSION, Finding, ImportTable,
                                 module_name_for)
from repro.analysis.drift import RegistryConfigDriftRule
from repro.analysis.style import check_style

import ast

REPO = Path(__file__).resolve().parent.parent

#: Default fixture identity: a decision-path module, not a test file.
DATAPLANE_PATH = Path("src/repro/dataplane/fake_module.py")
SERVING_PATH = Path("src/repro/serving/fake_module.py")


def lint(source: str, path: Path = DATAPLANE_PATH) -> list[Finding]:
    findings, _ = analyze_source(textwrap.dedent(source), path)
    return findings


def rule_names(findings: list[Finding]) -> list[str]:
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# Framework
# ---------------------------------------------------------------------------

class TestFramework:
    def test_finding_str_is_clickable(self):
        f = Finding("rng-discipline", "src/repro/x.py", 7, "boom")
        assert str(f) == "src/repro/x.py:7: [rng-discipline] boom"
        assert f.to_json() == {"rule": "rng-discipline",
                               "path": "src/repro/x.py", "line": 7,
                               "msg": "boom"}

    def test_module_name_resolves_from_last_repro_segment(self):
        assert module_name_for(Path("src/repro/dataplane/foo.py")) \
            == "repro.dataplane.foo"
        assert module_name_for(
            Path("/tmp/copy/src/repro/dataplane/foo.py")) \
            == "repro.dataplane.foo"
        assert module_name_for(Path("src/repro/serving/__init__.py")) \
            == "repro.serving"
        assert module_name_for(Path("scripts/run_bench.py")) is None

    def test_import_table_resolves_aliases(self):
        tree = ast.parse(textwrap.dedent("""
            import numpy as np
            import numpy.random as npr
            from time import perf_counter
        """))
        table = ImportTable(tree)
        assert table.resolve("np.random.shuffle") == "numpy.random.shuffle"
        assert table.resolve("npr.shuffle") == "numpy.random.shuffle"
        assert table.resolve("perf_counter") == "time.perf_counter"
        assert table.resolve("unrelated.name") == "unrelated.name"

    def test_syntax_error_is_a_finding_not_a_crash(self):
        findings = lint("def broken(:\n    pass\n")
        assert rule_names(findings) == ["syntax-error"]


# ---------------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------------

class TestRngDiscipline:
    def test_stdlib_random_flagged(self):
        findings = lint("""
            import random

            def sample(xs):
                random.shuffle(xs)
        """)
        assert rule_names(findings) == ["rng-discipline"]
        assert "random.shuffle" in findings[0].msg

    def test_numpy_global_state_flagged_through_alias(self):
        findings = lint("""
            import numpy as np

            def sample(xs):
                return np.random.permutation(xs)
        """)
        assert rule_names(findings) == ["rng-discipline"]

    def test_unseeded_default_rng_flagged_outside_tests(self):
        findings = lint("""
            import numpy as np

            def make():
                return np.random.default_rng()
        """)
        assert rule_names(findings) == ["rng-discipline"]
        assert "seed" in findings[0].msg

    def test_seeded_generators_and_test_files_clean(self):
        clean = """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)

            def draw(rng, xs):
                return rng.permutation(xs)
        """
        assert lint(clean) == []
        # Unseeded default_rng is allowed in test files.
        unseeded = """
            import numpy as np

            def anything():
                return np.random.default_rng()
        """
        assert lint(unseeded, path=Path("tests/test_fake.py")) == []


# ---------------------------------------------------------------------------
# no-wallclock-in-dataplane
# ---------------------------------------------------------------------------

class TestWallclock:
    def test_time_reads_flagged_in_dataplane(self):
        source = """
            import time
            from time import perf_counter

            def f():
                return time.time(), perf_counter()
        """
        findings = lint(source, path=DATAPLANE_PATH)
        assert rule_names(findings) == ["no-wallclock-in-dataplane"] * 2

    def test_datetime_now_flagged_in_core(self):
        findings = lint("""
            import datetime

            def stamp():
                return datetime.datetime.now()
        """, path=Path("src/repro/core/fake.py"))
        assert rule_names(findings) == ["no-wallclock-in-dataplane"]

    def test_serving_telemetry_and_sleep_clean(self):
        source = """
            import time

            def f():
                return time.perf_counter()
        """
        assert lint(source, path=SERVING_PATH) == []
        # Non-clock time functions are not wall-clock reads.
        assert lint("""
            import time

            def f():
                time.sleep(0.1)
        """, path=DATAPLANE_PATH) == []


# ---------------------------------------------------------------------------
# pickle-safe-registrations
# ---------------------------------------------------------------------------

class TestPickleSafeRegistrations:
    def test_lambda_entry_flagged(self):
        findings = lint("""
            from repro.serving.engine import register_topology

            register_topology("ring", lambda config: None)
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["pickle-safe-registrations"]
        assert "lambda" in findings[0].msg

    def test_nested_def_entry_flagged(self):
        findings = lint("""
            from repro.serving.engine import register_runtime_kind

            def install():
                def build(src, cfg):
                    return object()
                register_runtime_kind("sketch", build=build)
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["pickle-safe-registrations"]
        assert "build" in findings[0].msg

    def test_dispatcher_factory_kwarg_flagged(self):
        findings = lint("""
            from repro.serving.parallel import ParallelDispatcher

            def make(n):
                return ParallelDispatcher(
                    n, replica_factory=lambda i: object())
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["pickle-safe-registrations"]

    def test_module_level_callables_clean(self):
        assert lint("""
            from repro.serving.engine import register_topology

            class RingDriver:
                pass

            def build_ring(config):
                return RingDriver()

            register_topology("ring", build_ring)
        """, path=SERVING_PATH) == []

    def test_overwrite_and_name_kwargs_not_flagged(self):
        assert lint("""
            from repro.serving.engine import register_topology

            def build_ring(config):
                return object()

            register_topology(name="ring", overwrite=True)
        """, path=SERVING_PATH) == []


# ---------------------------------------------------------------------------
# thread-shared-state
# ---------------------------------------------------------------------------

class TestThreadSharedState:
    def test_unguarded_closure_pump_flagged_both_sides(self):
        findings = lint("""
            import threading

            def pump(items):
                out = []

                def worker():
                    for item in items:
                        out.append(item)

                t = threading.Thread(target=worker)
                t.start()
                snapshot = len(out)
                t.join()
                return snapshot
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["thread-shared-state"] * 2
        msgs = " | ".join(f.msg for f in findings)
        assert "'out'" in msgs

    def test_lock_guarded_closure_pump_clean(self):
        assert lint("""
            import threading

            def pump(items):
                out = []
                lock = threading.Lock()

                def worker():
                    for item in items:
                        with lock:
                            out.append(item)

                t = threading.Thread(target=worker)
                t.start()
                with lock:
                    snapshot = len(out)
                t.join()
                return snapshot
        """, path=SERVING_PATH) == []

    def test_sequential_windows_are_exempt(self):
        # Reads before the Thread exists / after join() cannot race; only
        # the unguarded *thread-side* write is a finding here.
        findings = lint("""
            import threading

            def pump(items):
                out = []
                before = len(out)

                def worker():
                    for item in items:
                        out.append(item)

                t = threading.Thread(target=worker)
                t.start()
                t.join()
                return before + len(out)
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["thread-shared-state"]
        assert "written by thread target" in findings[0].msg

    def test_queue_mediated_pump_clean(self):
        assert lint("""
            import queue
            import threading

            def pump(items):
                q = queue.Queue()

                def worker():
                    for item in items:
                        q.put(item)

                t = threading.Thread(target=worker)
                t.start()
                got = [q.get() for _ in items]
                t.join()
                return got
        """, path=SERVING_PATH) == []

    def test_lambda_thread_target_flagged(self):
        findings = lint("""
            import threading

            def pump(out):
                t = threading.Thread(target=lambda: out.append(1))
                t.start()
                return t
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["thread-shared-state"]
        assert "lambda thread target" in findings[0].msg

    def test_unguarded_method_pump_flagged(self):
        findings = lint("""
            import threading

            class Pump:
                def __init__(self):
                    self.done = []
                    self.thread = threading.Thread(target=self._run)

                def _run(self):
                    self.done.append(1)

                def results(self):
                    return list(self.done)
        """, path=SERVING_PATH)
        assert rule_names(findings) == ["thread-shared-state"] * 2
        msgs = " | ".join(f.msg for f in findings)
        assert "self.done" in msgs

    def test_lock_guarded_method_pump_clean(self):
        assert lint("""
            import threading

            class Pump:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.done = []
                    self.thread = threading.Thread(target=self._run)

                def _run(self):
                    with self.lock:
                        self.done.append(1)

                def results(self):
                    with self.lock:
                        return list(self.done)
        """, path=SERVING_PATH) == []


# ---------------------------------------------------------------------------
# no-deprecated-internal-callers
# ---------------------------------------------------------------------------

class TestNoDeprecatedInternalCallers:
    def test_package_level_shim_import_flagged(self):
        findings = lint("""
            from repro.serving import ShardedDispatcher
        """, path=Path("src/repro/eval/fake.py"))
        assert rule_names(findings) == ["no-deprecated-internal-callers"]

    def test_compat_module_import_flagged(self):
        findings = lint("""
            from repro.serving.compat import ParallelDispatcher
        """, path=Path("src/repro/eval/fake.py"))
        assert rule_names(findings) == ["no-deprecated-internal-callers"]
        assert "shim" in findings[0].msg

    def test_deprecated_serve_method_flagged(self):
        findings = lint("""
            from repro.serving.engine import PegasusEngine

            def replay(source, config, trace):
                with PegasusEngine(source=source, config=config) as eng:
                    return eng.serve_trace(trace)
        """, path=Path("src/repro/eval/fake.py"))
        assert rule_names(findings) == ["no-deprecated-internal-callers"]
        assert "serve_trace" in findings[0].msg

    def test_real_internals_and_init_reexports_clean(self):
        assert lint("""
            from repro.serving.dispatcher import ShardedDispatcher
            from repro.serving.engine import PegasusEngine

            def replay(source, config, trace, labels):
                with PegasusEngine(source=source, config=config) as eng:
                    return eng.serve(trace, labels=labels)
        """, path=Path("src/repro/eval/fake.py")) == []
        # Package __init__ re-exports the deprecated names on purpose.
        assert lint("""
            from repro.serving import ShardedDispatcher
        """, path=Path("src/repro/__init__.py")) == []


# ---------------------------------------------------------------------------
# mutable-default-args / bare-except
# ---------------------------------------------------------------------------

class TestGenericDefectRules:
    def test_mutable_defaults_flagged(self):
        findings = lint("""
            def f(xs, acc=[]):
                return acc

            def g(xs, *, acc=dict()):
                return acc
        """)
        assert rule_names(findings) == ["mutable-default-args"] * 2

    def test_immutable_defaults_clean(self):
        assert lint("""
            def f(xs, acc=None, n=3, mode="stats", shape=(2, 2)):
                if acc is None:
                    acc = []
                return acc
        """) == []

    def test_bare_except_flagged(self):
        findings = lint("""
            def f(fn):
                try:
                    return fn()
                except:
                    return None
        """)
        assert rule_names(findings) == ["bare-except"]

    def test_named_except_clean(self):
        assert lint("""
            def f(fn):
                try:
                    return fn()
                except (ValueError, KeyError):
                    return None
        """) == []


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------

class TestSuppressions:
    def test_suppression_silences_the_matched_rule(self):
        assert lint("""
            import random

            def sample(xs):
                random.shuffle(xs)   # reprolint: disable=rng-discipline
        """) == []

    def test_suppression_on_closing_line_of_multiline_statement(self):
        assert lint("""
            import random

            def sample(xs, ys):
                random.sample(
                    xs,
                    len(ys),
                )   # reprolint: disable=rng-discipline
        """) == []

    def test_suppressing_the_wrong_rule_keeps_finding_and_reports_unused(self):
        findings = lint("""
            import random

            def sample(xs):
                random.shuffle(xs)   # reprolint: disable=bare-except
        """)
        assert sorted(rule_names(findings)) == ["rng-discipline",
                                                UNUSED_SUPPRESSION]

    def test_unused_suppression_reported_at_its_line(self):
        findings = lint("""
            def fine():
                return 1   # reprolint: disable=rng-discipline
        """)
        assert rule_names(findings) == [UNUSED_SUPPRESSION]
        assert findings[0].line == 3

    def test_disable_all_wildcard(self):
        assert lint("""
            import random

            def sample(xs):
                random.shuffle(xs)   # reprolint: disable=all
        """) == []


# ---------------------------------------------------------------------------
# registry-config-drift (project rule; needs a tree with mirrors)
# ---------------------------------------------------------------------------

def _copy_drift_tree(tmp_path: Path) -> Path:
    """A minimal temp repo: engine.py + both drift mirrors."""
    engine_dir = tmp_path / "src" / "repro" / "serving"
    engine_dir.mkdir(parents=True)
    shutil.copy(REPO / "src/repro/serving/engine.py", engine_dir)
    (tmp_path / "tests").mkdir()
    shutil.copy(REPO / "tests/test_serving_engine.py", tmp_path / "tests")
    (tmp_path / "docs").mkdir()
    shutil.copy(REPO / "docs/ARCHITECTURE.md", tmp_path / "docs")
    return tmp_path


class TestRegistryConfigDrift:
    def test_shipped_engine_is_drift_free(self, tmp_path):
        root = _copy_drift_tree(tmp_path)
        findings = analyze_paths([root / "src"],
                                 rules=[RegistryConfigDriftRule()])
        assert findings == []

    def test_new_field_without_mirrors_flagged_twice(self, tmp_path):
        root = _copy_drift_tree(tmp_path)
        engine = root / "src/repro/serving/engine.py"
        text = engine.read_text(encoding="utf-8")
        anchor = "    time_scale: float = 0.0\n"
        assert anchor in text
        engine.write_text(text.replace(
            anchor, anchor + "    extra_knob: int = 0\n"),
            encoding="utf-8")
        findings = analyze_paths([root / "src"],
                                 rules=[RegistryConfigDriftRule()])
        assert rule_names(findings) == ["registry-config-drift"] * 2
        msgs = " | ".join(f.msg for f in findings)
        assert "typed-validation table" in msgs
        assert "ARCHITECTURE.md" in msgs
        expected_line = engine.read_text(encoding="utf-8").splitlines() \
            .index("    extra_knob: int = 0") + 1
        assert {f.line for f in findings} == {expected_line}

    def test_missing_validation_table_is_itself_a_finding(self, tmp_path):
        root = _copy_drift_tree(tmp_path)
        (root / "tests/test_serving_engine.py").unlink()
        findings = analyze_paths([root / "src"],
                                 rules=[RegistryConfigDriftRule()])
        assert rule_names(findings) == ["registry-config-drift"]
        assert "missing or unparsable" in findings[0].msg


# ---------------------------------------------------------------------------
# Style gate
# ---------------------------------------------------------------------------

class TestStyleGate:
    def test_long_line_flagged_and_suppressible(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n" + "y = " + "'a' + " * 30 + "'a'\n",
                        encoding="utf-8")
        findings = check_style([path])
        assert rule_names(findings) == ["line-too-long"]
        assert findings[0].line == 2
        path.write_text(
            "x = 1\n" + "y = " + "'a' + " * 30
            + "'a'  # reprolint: disable=line-too-long\n", encoding="utf-8")
        assert check_style([path]) == []

    def test_clean_file_passes(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = 1\n", encoding="utf-8")
        assert check_style([path]) == []


# ---------------------------------------------------------------------------
# The repo-wide gate + CLI mutation tests
# ---------------------------------------------------------------------------

class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        findings = analyze_paths([REPO / "src", REPO / "scripts",
                                  REPO / "benchmarks"])
        assert findings == [], "\n".join(str(f) for f in findings)


#: (rule, real module to copy, violation snippet, the violating line's
#: exact text). Each mutation is injected at the end of a temp copy of the
#: module and the CLI must exit 1 naming rule + line.
MUTATIONS = [
    ("rng-discipline", "src/repro/utils/rng.py", """

import random


def _mutant(xs):
    random.shuffle(xs)
""", "    random.shuffle(xs)"),
    ("no-wallclock-in-dataplane", "src/repro/dataplane/throughput.py", """

def _mutant():
    return time.time()
""", "    return time.time()"),
    ("pickle-safe-registrations", "src/repro/serving/engine.py", """

register_topology("mutant", lambda config: None, overwrite=True)
""", 'register_topology("mutant", lambda config: None, overwrite=True)'),
    ("thread-shared-state", "src/repro/serving/openloop.py", """

def _mutant(items):
    out = []

    def _worker():
        for item in items:
            out.append(item)

    t = threading.Thread(target=_worker)
    t.start()
    n = len(out)
    t.join()
    return n
""", "            out.append(item)"),
    ("no-deprecated-internal-callers", "src/repro/eval/differential.py", """

from repro.serving.compat import ShardedDispatcher as _MutantShim
""", "from repro.serving.compat import ShardedDispatcher as _MutantShim"),
    ("mutable-default-args", "src/repro/utils/rng.py", """

def _mutant(xs, acc=[]):
    acc.extend(xs)
    return acc
""", "def _mutant(xs, acc=[]):"),
    ("bare-except", "src/repro/utils/rng.py", """

def _mutant(fn):
    try:
        return fn()
    except:
        return None
""", "    except:"),
]


class TestCliMutations:
    @pytest.mark.parametrize("rule,module,snippet,needle", MUTATIONS,
                             ids=[m[0] for m in MUTATIONS])
    def test_injected_violation_fails_the_gate(self, tmp_path, capsys,
                                               rule, module, snippet, needle):
        src = REPO / module
        dest = tmp_path / module
        dest.parent.mkdir(parents=True)
        mutated = src.read_text(encoding="utf-8") + snippet
        dest.write_text(mutated, encoding="utf-8")
        expected_line = mutated.splitlines().index(needle) + 1

        rc = cli_main(["--select", rule, str(dest)])
        out = capsys.readouterr().out
        assert rc == 1
        assert f"[{rule}]" in out
        assert f":{expected_line}:" in out

    @pytest.mark.parametrize("rule,module,snippet,needle", MUTATIONS,
                             ids=[m[0] for m in MUTATIONS])
    def test_unmutated_copy_passes_the_gate(self, tmp_path, capsys,
                                            rule, module, snippet, needle):
        src = REPO / module
        dest = tmp_path / module
        dest.parent.mkdir(parents=True)
        shutil.copy(src, dest)
        rc = cli_main(["--select", rule, str(dest)])
        assert rc == 0

    def test_drift_mutation_fails_the_gate(self, tmp_path, capsys):
        root = _copy_drift_tree(tmp_path)
        engine = root / "src/repro/serving/engine.py"
        text = engine.read_text(encoding="utf-8")
        anchor = "    time_scale: float = 0.0\n"
        engine.write_text(text.replace(
            anchor, anchor + "    extra_knob: int = 0\n"),
            encoding="utf-8")
        rc = cli_main(["--select", "registry-config-drift",
                       str(root / "src")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[registry-config-drift]" in out
        assert "extra_knob" in out


class TestCli:
    def test_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.name in out
        assert UNUSED_SUPPRESSION in out

    def test_unknown_select_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            cli_main(["--select", "no-such-rule", "src"])

    def test_json_report_and_artifact(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.shuffle([1])\n",
                       encoding="utf-8")
        artifact = tmp_path / "findings.json"
        rc = cli_main(["--json", "--json-out", str(artifact), str(bad)])
        assert rc == 1
        report = json.loads(capsys.readouterr().out)
        assert report["n_findings"] == 1
        assert report["findings"][0]["rule"] == "rng-discipline"
        assert json.loads(artifact.read_text(encoding="utf-8")) == report

    def test_style_flag_folds_in_the_style_gate(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("z = " + "1 + " * 40 + "1\n", encoding="utf-8")
        rc = cli_main(["--style", str(path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "[line-too-long]" in out
