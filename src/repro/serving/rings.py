"""Shared-memory ring buffers: the zero-copy IPC lane of the dataplane.

The parallel dispatcher used to pickle every shard payload and decision
stream through its worker pipes — a full serialize/copy/deserialize per
serve that made four workers *slower* than one. This module replaces the
payload lane with ``multiprocessing.shared_memory`` ring buffers of
preallocated columnar chunks, laid out per ``repro.dataplane.schema``:

- one **ingress ring** per worker: ``depth`` slots, each slot the wire
  columns of up to ``chunk_rows`` packets (``INGRESS_RING_ORDER`` order,
  one contiguous region per column, payload matrix last when configured);
- one **egress ring** per worker: ``depth`` slots of decision columns
  (``EGRESS_RING_ORDER``), slot *i* always answering ingress slot *i*.

The driver gathers shard rows straight into an ingress slot with
``np.take(..., out=view)``, the worker replays the slot **in place** and
writes its decisions into the matching egress slot, and only fixed-size
chunk descriptors — ``(slot, rows)`` and the matching acks — ever cross
the pipe. Nothing on the payload path is pickled, and the
``hidden-copy-on-hot-path`` lint zone below keeps it that way.

Segment lifetime is strictly driver-owned: :class:`RingSegments` creates
(and alone unlinks) every segment, ``close()`` is idempotent and crash-safe,
and a ``weakref.finalize`` backstop unlinks on garbage collection so no
``/dev/shm`` entry outlives the dispatcher even on unclean exits. Workers
attach by name and immediately deregister from ``resource_tracker`` —
Python < 3.13 registers attached segments too, and a worker exiting would
otherwise unlink (or double-count) a segment the driver still owns.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.dataplane.schema import (
    EGRESS_RING_ORDER,
    INGRESS_RING_ORDER,
    decision_dtype,
    wire_dtype,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class RingSpec:
    """Geometry of one worker's ring pair (picklable, shared with workers).

    ``depth`` slots of ``chunk_rows`` packets each; ``payload_cols`` > 0
    appends a ``(chunk_rows, payload_cols)`` float64 payload matrix to
    every ingress slot. All byte offsets derive from the schema dtypes and
    the literal ``*_RING_ORDER`` layouts — driver and workers compute the
    same addresses from the same frozen spec, nothing is negotiated.
    """

    depth: int = 4
    chunk_rows: int = 256
    payload_cols: int = 0

    def __post_init__(self):
        if self.depth < 1:
            raise ConfigError("ring_depth", self.depth, allowed=">= 1")
        if self.chunk_rows < 1:
            raise ConfigError("ring_chunk", self.chunk_rows, allowed=">= 1")
        if self.payload_cols < 0:
            raise ConfigError("payload_cols", self.payload_cols,
                              allowed=">= 0")

    def _ingress_layout(self) -> list[tuple[str, np.dtype, int]]:
        """(column, dtype, per-row item count) — payload last, if present."""
        layout = [(name, wire_dtype(name), 1) for name in INGRESS_RING_ORDER]
        if self.payload_cols:
            layout.append(("payload", wire_dtype("payload"),
                           self.payload_cols))
        return layout

    def _egress_layout(self) -> list[tuple[str, np.dtype, int]]:
        return [(name, decision_dtype(name), 1) for name in EGRESS_RING_ORDER]

    @staticmethod
    def _region_bytes(layout, depth: int, chunk_rows: int) -> int:
        return sum(depth * chunk_rows * items * dt.itemsize
                   for _name, dt, items in layout)

    @property
    def ingress_bytes(self) -> int:
        """Total byte size of one worker's ingress segment."""
        return self._region_bytes(self._ingress_layout(), self.depth,
                                  self.chunk_rows)

    @property
    def egress_bytes(self) -> int:
        """Total byte size of one worker's egress segment."""
        return self._region_bytes(self._egress_layout(), self.depth,
                                  self.chunk_rows)

    def _check_slot(self, slot: int, rows: int) -> None:
        if not 0 <= slot < self.depth:
            raise IndexError(f"ring slot {slot} out of range "
                             f"(depth {self.depth})")
        if not 0 < rows <= self.chunk_rows:
            raise IndexError(f"chunk of {rows} rows does not fit a "
                             f"{self.chunk_rows}-row ring slot")

    # reprolint: zone=zero-copy
    def _slot_views(self, layout, buf, slot: int, rows: int) -> dict:
        """Column name -> ndarray view over one slot, straight on ``buf``."""
        views = {}
        offset = 0
        for name, dt, items in layout:
            slot_bytes = self.chunk_rows * items * dt.itemsize
            shape = (rows,) if items == 1 else (rows, items)
            views[name] = np.ndarray(shape, dtype=dt, buffer=buf,
                                     offset=offset + slot * slot_bytes)
            offset += self.depth * slot_bytes
        return views

    def ingress_views(self, buf, slot: int, rows: int) -> dict:
        """Wire-column views over ingress slot ``slot`` (first ``rows``)."""
        self._check_slot(slot, rows)
        return self._slot_views(self._ingress_layout(), buf, slot, rows)

    def egress_views(self, buf, slot: int, rows: int) -> dict:
        """Decision-column views over egress slot ``slot``."""
        self._check_slot(slot, rows)
        return self._slot_views(self._egress_layout(), buf, slot, rows)


def _unlink_segments(segments: list) -> None:
    """Close + unlink every segment, tolerating any prior cleanup."""
    for shm in segments:
        try:
            shm.close()
        except (BufferError, OSError):  # pragma: no cover - exported view
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass                         # already unlinked (idempotent)
        except OSError:  # pragma: no cover - platform without unlink
            pass


class RingSegments:
    """The driver-owned shared-memory segments of one worker fleet.

    Creates ``2 * n_workers`` segments up front (ingress + egress per
    worker) and guarantees they are unlinked exactly once: on ``close()``,
    on a failed constructor, or — as a last resort — when the object is
    garbage collected (``weakref.finalize``). Workers receive segment
    *names* (picklable, spawn-safe) and attach read/write views; they never
    own lifetime.
    """

    def __init__(self, n_workers: int, spec: RingSpec):
        self.spec = spec
        self.ingress: list[shared_memory.SharedMemory] = []
        self.egress: list[shared_memory.SharedMemory] = []
        try:
            for _ in range(n_workers):
                self.ingress.append(shared_memory.SharedMemory(
                    create=True, size=spec.ingress_bytes))
                self.egress.append(shared_memory.SharedMemory(
                    create=True, size=spec.egress_bytes))
        except BaseException:
            # Never leak a partially created fleet of segments.
            _unlink_segments(self.ingress + self.egress)
            raise
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self.ingress + self.egress)

    def names(self, worker: int) -> tuple[str, str]:
        """(ingress name, egress name) to hand to one worker."""
        return self.ingress[worker].name, self.egress[worker].name

    @property
    def segment_names(self) -> list[str]:
        """Every segment name this fleet owns (leak-check hook)."""
        return [shm.name for shm in self.ingress + self.egress]

    def close(self) -> None:
        """Unlink every segment. Idempotent; safe after worker crashes."""
        self._finalizer()


def attach_ring(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach to a driver-owned segment, without ownership.

    ``SharedMemory(name=...)`` on Python < 3.13 registers the attachment
    with ``resource_tracker`` as if this process created it, so a spawned
    worker exiting would have its own tracker warn about "leaked" segments
    and unlink them out from under the driver. Deregister immediately —
    but only when this process owns a *fresh* tracker (spawn). A forked
    worker inherits the driver's tracker fd, where the name is the
    driver's own create-time registration: the attach's re-register is a
    set no-op there, and unregistering would strip the driver's entry so
    its later unlink raises ``KeyError`` noise inside the tracker process.
    Lifetime stays with :class:`RingSegments` either way.
    """
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    inherited = (tracker is not None
                 and getattr(tracker, "_fd", None) is not None)
    shm = shared_memory.SharedMemory(name=name)
    if not inherited:
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except (AttributeError, KeyError, ValueError):  # pragma: no cover
            pass             # tracker variants without the registration
    return shm


# reprolint: zone=zero-copy
def write_ingress_chunk(views: dict, sources: dict,
                        rows_idx: np.ndarray) -> None:
    """Gather ``rows_idx`` of every source column straight into one slot.

    ``views`` comes from :meth:`RingSpec.ingress_views`; ``sources`` maps
    the same column names to the full-trace arrays. One ``np.take`` per
    column writes the shard rows directly into the mapped segment — no
    intermediate shard arrays, no pickling.
    """
    for name, view in views.items():
        np.take(sources[name], rows_idx, axis=0, out=view)


# reprolint: zone=zero-copy
def write_egress_chunk(views: dict, decisions: list) -> int:
    """Write a chunk's decision stream into one egress slot; returns count.

    Decisions are per-packet objects with chunk-local ``seq``; the plain
    loop stores each field straight into the mapped column views (an
    object at a time is the natural grain here — the decisions were
    produced as Python objects by the replica).
    """
    seq = views["seq"]
    flow_label = views["flow_label"]
    predicted = views["predicted"]
    ts = views["ts"]
    for i, d in enumerate(decisions):
        seq[i] = d.seq
        flow_label[i] = d.flow_label
        predicted[i] = d.predicted
        ts[i] = d.ts
    return len(decisions)


# reprolint: zone=zero-copy
def scatter_decision_chunk(merged: dict, valid: np.ndarray,
                           gseq: np.ndarray, views: dict, rows: int) -> None:
    """Scatter one egress slot into the position-aligned decision columns.

    ``gseq`` holds the global trace positions of the chunk's decisions
    (precomputed by the driver); every column is stored once at its final
    position — the same preallocated-scatter merge PR 9 landed, with the
    mapped egress slot as the source.
    """
    valid[gseq] = True
    merged["seq"][gseq] = gseq
    for name in ("flow_label", "predicted", "ts"):
        merged[name][gseq] = views[name][:rows]
