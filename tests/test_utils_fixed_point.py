"""Tests for fixed-point formats and adaptive calibration."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import QuantizationError
from repro.utils.fixed_point import QFormat, choose_qformat


class TestQFormat:
    def test_scale(self):
        assert QFormat(8, 3).scale == 8.0

    def test_int_range(self):
        q = QFormat(8, 0)
        assert q.int_min == -128
        assert q.int_max == 127

    def test_quantize_rounds(self):
        q = QFormat(8, 2)
        assert q.quantize(1.26) == 5  # 1.26 * 4 = 5.04 -> 5

    def test_quantize_saturates(self):
        q = QFormat(8, 0)
        assert q.quantize(1000.0) == 127
        assert q.quantize(-1000.0) == -128

    def test_dequantize_inverts_scale(self):
        q = QFormat(16, 8)
        np.testing.assert_allclose(q.dequantize(q.quantize(3.14159)), 3.14159, atol=q.resolution)

    def test_negative_frac_bits_allowed(self):
        # Coarse formats (resolution > 1) are legal for very large ranges.
        q = QFormat(8, -2)
        assert q.quantize(20.0) == 5
        assert q.dequantize(5) == 20.0

    def test_invalid_total_bits(self):
        with pytest.raises(QuantizationError):
            QFormat(1, 0)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_roundtrip_error_bounded(self, v):
        q = QFormat(16, 7)
        assert abs(q.roundtrip(v) - v) <= q.resolution / 2 + 1e-12

    def test_rescale_right_shift(self):
        src = QFormat(16, 8)
        dst = QFormat(16, 4)
        stored = src.quantize(2.5)
        assert dst.dequantize(src.rescale_to(stored, dst)) == 2.5

    def test_rescale_saturates(self):
        src = QFormat(16, 0)
        dst = QFormat(8, 0)
        assert src.rescale_to(np.array([100000]), dst)[0] == dst.int_max


class TestChooseQFormat:
    def test_small_range_gets_many_frac_bits(self):
        q = choose_qformat(np.array([0.1, -0.2, 0.05]), 8)
        assert q.quantize(0.2) != q.quantize(0.1)
        assert abs(q.roundtrip(0.2) - 0.2) < 0.02

    def test_large_range_fits(self):
        values = np.array([-100.0, 100.0])
        q = choose_qformat(values, 8)
        assert q.real_max >= 100.0
        assert q.real_min <= -100.0

    def test_empty_raises(self):
        with pytest.raises(QuantizationError):
            choose_qformat(np.array([]), 8)

    def test_nan_raises(self):
        with pytest.raises(QuantizationError):
            choose_qformat(np.array([np.nan]), 8)

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                    min_size=1, max_size=20),
           st.sampled_from([8, 12, 16]))
    def test_never_overflows(self, values, bits):
        values = np.asarray(values)
        q = choose_qformat(values, bits)
        stored = q.quantize(values)
        # With margin=1.0 the extreme value must not saturate past one step.
        assert stored.max() <= q.int_max
        assert stored.min() >= q.int_min
