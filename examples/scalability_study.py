"""Scalability study: the knobs Pegasus trades accuracy against resources.

Sweeps, on one dataset:
1. fuzzy clustering depth (accuracy vs TCAM) — design ❹;
2. fusion level (lookup rounds / pipeline stages) — design ❺;
3. CNN-L per-flow storage variants (28 / 44 / 72 bits) — §7.3;
4. software-serving throughput of the batched runtime (batch size x shards);
5. parallel multi-process serving (measured concurrent wall clock) with the
   flow-decision cache on and off.

Run:  PYTHONPATH=src python examples/scalability_study.py
Expected runtime: ~2 minutes (documented in README.md).
"""

import time

import numpy as np

from repro.core import PegasusCompiler, CompilerConfig
from repro.dataplane import place_model, TOFINO2
from repro.dataplane.runtime import WindowedClassifierRuntime
from repro.eval.metrics import macro_f1
from repro.models import build_model
from repro.models.cnn import CNNL
from repro.net import make_dataset
from repro.net.features import dataset_views
from repro.serving import (BatchScheduler, FlowDecisionCache,
                           ParallelDispatcher, ShardedDispatcher)


def main():
    dataset = make_dataset("peerrush", flows_per_class=100, seed=0)
    train_flows, _val, test_flows = dataset.split(rng=0)
    train_views = dataset_views(train_flows)
    test_views = dataset_views(test_flows)
    model = build_model("MLP-B", dataset.n_classes, seed=0)
    model.train(train_views)
    calib = train_views["stats"].astype(np.int64)
    test = test_views["stats"].astype(np.int64)

    print("=== 1. fuzzy depth: accuracy vs TCAM (design ❹) ===")
    print(f"{'leaves':>7s} {'F1':>7s} {'TCAM bits':>10s}")
    for leaves in (4, 16, 64, 256):
        compiled = PegasusCompiler(CompilerConfig(fuzzy_leaves=leaves)) \
            .compile_sequential(model.net, calib).compiled
        f1 = macro_f1(test_views["y"], compiled.predict(test))
        print(f"{leaves:7d} {f1:7.4f} {compiled.tcam_bits():10d}")

    print("\n=== 2. fusion level: lookup rounds and pipeline stages (design ❺) ===")
    print(f"{'fusion':>11s} {'rounds':>7s} {'stages':>7s} {'F1':>7s}")
    for level in ("none", "basic", "linearized"):
        result = PegasusCompiler(CompilerConfig(fusion=level, fuzzy_leaves=256)) \
            .compile_sequential(model.net, calib)
        pipeline = place_model(result.compiled, TOFINO2)
        f1 = macro_f1(test_views["y"], result.compiled.predict(test))
        print(f"{level:>11s} {result.fused_lookup_rounds:7d} "
              f"{pipeline.n_stages_used:7d} {f1:7.4f}")

    print("\n=== 3. CNN-L per-flow storage variants (§7.3) ===")
    print(f"{'variant':>8s} {'bits/flow':>10s} {'SRAM@1M':>8s} {'F1':>7s}")
    for idx_bits, use_ipd in ((4, False), (4, True), (8, True)):
        cnn = CNNL(dataset.n_classes, seed=0, idx_bits=idx_bits, use_ipd=use_ipd)
        cnn.train(train_views)
        cnn.compile_dataplane(train_views)
        f1 = macro_f1(test_views["y"], cnn.predict_dataplane(test_views))
        layout = cnn.flow_layout()
        sram = layout.sram_fraction(1_000_000, TOFINO2.total_sram_bits)
        print(f"{layout.bits_per_flow:7d}b {layout.bits_per_flow:10d} "
              f"{sram:8.1%} {f1:7.4f}")

    print("\n=== 4. batched serving throughput (batch size x shards) ===")
    mlp = PegasusCompiler(CompilerConfig(fuzzy_leaves=256)) \
        .compile_sequential(model.net, calib).compiled
    n_packets = sum(len(f) for f in test_flows)
    print(f"{'config':>12s} {'pps':>12s} {'decisions':>10s}")
    for batch_size in (1, 32, 256, 1024):
        runtime = WindowedClassifierRuntime(mlp, feature_mode="stats",
                                            batch_size=batch_size)
        start = time.perf_counter()
        decisions = runtime.process_flows(test_flows)
        pps = n_packets / max(time.perf_counter() - start, 1e-9)
        print(f"{'batch=' + str(batch_size):>12s} {pps:12.0f} {len(decisions):10d}")
    # Throughput sweep: flush on batch-full only. A trace-time `timeout`
    # would trade decision latency for batch amortization (the synthetic
    # traces are slow enough that 50 ms holds only a handful of packets).
    for shards in (1, 4):
        dispatcher = ShardedDispatcher(
            runtime_factory=lambda: WindowedClassifierRuntime(
                mlp, feature_mode="stats", batch_size=256),
            n_shards=shards,
            scheduler=BatchScheduler(batch_size=256))
        decisions = dispatcher.serve_flows(test_flows)
        # Replicas replay serially here: model the parallel wall clock as
        # the slowest shard's replay time (section 5 measures the real one).
        pps = n_packets / max(max(dispatcher.shard_seconds), 1e-9)
        print(f"{'shards=' + str(shards):>12s} {pps:12.0f} {len(decisions):10d}")

    print("\n=== 5. parallel serving: measured wall clock + decision cache ===")
    print(f"{'config':>22s} {'pps':>12s} {'hit rate':>9s} {'decisions':>10s}")
    for workers in (1, 2, 4):
        for cached in (False, True):
            def factory(cached=cached):
                cache = FlowDecisionCache(65536) if cached else None
                return WindowedClassifierRuntime(
                    mlp, feature_mode="stats", batch_size=256,
                    decision_cache=cache)
            with ParallelDispatcher(
                    runtime_factory=factory, n_workers=workers,
                    scheduler=BatchScheduler(batch_size=256)) as dispatcher:
                decisions = dispatcher.serve_flows(test_flows)
                pps = n_packets / max(dispatcher.wall_seconds, 1e-9)
                hit = (f"{dispatcher.cache_stats.hit_rate:9.2%}"
                       if cached else f"{'-':>9s}")
                label = f"workers={workers}{'+cache' if cached else ''}"
                print(f"{label:>22s} {pps:12.0f} {hit} {len(decisions):10d}")


if __name__ == "__main__":
    main()
