"""N3IC: binary MLP inference via XNOR + popcount (NSDI'22).

The entire model is binarized: the 128-bit statistical feature vector is the
±1 input, every weight is ±1, and each MatMul executes as XNOR + popcount on
packed words. Trained with straight-through estimators. This reproduces the
paper's accuracy comparison (binarization loses the numerical range that
Pegasus's full-precision-weights / fixed-point-activations keep) and its
scalability critique (each popcount burns ~14 PISA stages).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.dataplane.registers import FlowStateLayout, RegisterField
from repro.models.base import TrafficModel
from repro.net.features import N_STAT_FEATURES, SEQ_WINDOW
from repro.utils.bits import pack_signs, xnor_popcount

N_INPUT_BITS = N_STAT_FEATURES * 8  # 128-bit binarized input

# The paper (via BoS's measurement) reports one popcount costs ~14 stages.
POPCNT_STAGES = 14


def bits_from_stats(stats: np.ndarray) -> np.ndarray:
    """Unpack the 16 uint8 features into a ±1 vector of 128 bits."""
    stats = np.asarray(stats, dtype=np.uint8)
    bits = np.unpackbits(stats, axis=-1)
    return bits.astype(np.float64) * 2.0 - 1.0


class N3ICModel(TrafficModel):
    name = "N3IC"
    feature_view = "stats"

    def __init__(self, n_classes: int, seed: int = 0,
                 hidden: tuple[int, int] = (128, 64), epochs: int = 80):
        super().__init__(n_classes, seed)
        rngs = np.random.default_rng(seed).integers(0, 2**31, size=3)
        h1, h2 = hidden
        self.net = nn.Sequential(
            nn.BinaryLinear(N_INPUT_BITS, h1, rng=int(rngs[0])),
            nn.BinarizeSTE(),
            nn.BinaryLinear(h1, h2, rng=int(rngs[1])),
            nn.BinarizeSTE(),
            nn.BinaryLinear(h2, n_classes, rng=int(rngs[2])),
        )
        self.hidden = hidden
        self.epochs = epochs
        self._packed_weights: list[np.ndarray] | None = None

    def train(self, views: dict[str, np.ndarray]) -> None:
        x = bits_from_stats(self.view(views, "stats"))
        y = self.view(views, "y")
        nn.fit(self.net, x, y, nn.CrossEntropyLoss(),
               nn.Adam(self.net.parameters(), lr=0.01),
               epochs=self.epochs, batch_size=64, rng=self.seed)
        self.trained = True

    def predict_float(self, views: dict[str, np.ndarray]) -> np.ndarray:
        self._require_trained()
        return nn.predict_classes(self.net, bits_from_stats(self.view(views, "stats")))

    def compile_dataplane(self, views: dict[str, np.ndarray]) -> None:
        """Pack the binarized weights into uint64 words for XNOR/popcount."""
        self._require_trained()
        self._packed_weights = [
            pack_signs(layer.binary_weights().T)  # (out, words)
            for layer in self.net if isinstance(layer, nn.BinaryLinear)
        ]
        self.compiled = self._packed_weights

    def predict_dataplane(self, views: dict[str, np.ndarray]) -> np.ndarray:
        """Inference exactly as the NIC executes it: XNOR + popcount."""
        self._require_compiled()
        x = bits_from_stats(self.view(views, "stats"))
        dims = [N_INPUT_BITS, *self.hidden]
        act = x
        for layer_i, packed_w in enumerate(self._packed_weights):
            n_bits = dims[layer_i]
            packed_x = pack_signs(act)                      # (N, words)
            out = np.stack([
                xnor_popcount(packed_x, packed_w[j][None, :], n_bits)
                for j in range(packed_w.shape[0])
            ], axis=1)
            act = np.where(out >= 0, 1.0, -1.0)             # binarize activations
            final = out
        return np.argmax(final, axis=1)

    def model_size_kbits(self) -> float:
        # Binary weights: 1 bit each.
        h1, h2 = self.hidden
        bits = N_INPUT_BITS * h1 + h1 * h2 + h2 * self.n_classes
        return bits / 1000

    def input_scale_bits(self) -> int:
        return N_INPUT_BITS

    def flow_layout(self) -> FlowStateLayout:
        return FlowStateLayout(fields=[
            RegisterField("prev_ts", 16),
            RegisterField("max_len", 8), RegisterField("min_len", 8),
            RegisterField("max_ipd", 8), RegisterField("min_ipd", 8),
            RegisterField("count", 8),
            RegisterField("len_hist", 8, count=max(SEQ_WINDOW - 6, 0)),
            RegisterField("ipd_hist", 8, count=1),
        ])  # 80 bits/flow

    def pipeline_stages_needed(self) -> int:
        """Why N3IC cannot scale on PISA: stages for all popcounts (§2)."""
        # Popcounts within a layer can share stages only per output neuron
        # group; the dominant cost is sequential popcount depth per layer.
        return 3 * POPCNT_STAGES
