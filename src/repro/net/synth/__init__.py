"""Synthetic traffic generators.

The original pcap datasets (PeerRush, CICIOT2022, ISCXVPN2016, USTC-TFC2016
malware, Kitsune SSDP flood) are not redistributable offline, so these
seeded generators produce class-conditional traffic with the same structure
the paper's models exploit:

- class-dependent packet-length mixtures and inter-packet-delay scales
  (statistical features),
- class-dependent periodic length modulation (sequence features),
- class-dependent payload header templates and motifs (raw-byte features).

Dataset difficulty is calibrated so the *relative ordering* of methods in
the paper's Table 5 is reproduced: PeerRush is well separated, CICIOT has
oblique (non-axis-aligned) class boundaries that disadvantage trees, and
ISCXVPN has 7 heavily overlapping classes whose payloads remain separable.
"""

from repro.net.synth.base import ClassProfile, TrafficDataset, generate_flow
from repro.net.synth.profiles import (
    make_dataset,
    make_attack_flows,
    dataset_profiles,
    attack_profile,
    DATASET_NAMES,
    ATTACK_NAMES,
)

__all__ = [
    "ClassProfile",
    "TrafficDataset",
    "generate_flow",
    "make_dataset",
    "make_attack_flows",
    "dataset_profiles",
    "attack_profile",
    "DATASET_NAMES",
    "ATTACK_NAMES",
]
