"""Fuzzy matching: the greedy min-SSE clustering tree of Pegasus §4.2.

Instead of enumerating every possible input of a segment, Pegasus groups the
training distribution of that segment into clusters. A binary tree of
(feature, threshold) comparisons maps an input vector to a leaf — its *fuzzy
index* — whose centroid stands in for the exact input when results are
precomputed. The tree is grown greedily: at each step the leaf whose best
axis-aligned split yields the largest reduction in total within-cluster SSE
is split, exactly the procedure of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.core.crc import range_to_prefixes


def _best_split(x: np.ndarray) -> tuple[float, int, float] | None:
    """Best (sse_reduction, feature, threshold) for one cluster, or None.

    Vectorized over every feature: sort the values, use prefix sums of the
    vectors and their squared norms to evaluate the SSE of every candidate
    split in O(n d) per feature.
    """
    n, d = x.shape
    if n < 2:
        return None
    sq = (x ** 2).sum(axis=1)
    total_sse = float(sq.sum() - (x.sum(axis=0) ** 2).sum() / n)
    best: tuple[float, int, float] | None = None
    for f in range(d):
        order = np.argsort(x[:, f], kind="stable")
        xs = x[order]
        vs = xs[:, f]
        # Candidate split after position i requires vs[i] < vs[i+1].
        valid = vs[:-1] < vs[1:]
        if not valid.any():
            continue
        csum = np.cumsum(xs, axis=0)
        csq = np.cumsum(sq[order])
        idx = np.nonzero(valid)[0]
        n_left = idx + 1
        n_right = n - n_left
        left_sq = csq[idx]
        left_sum = csum[idx]
        right_sq = csq[-1] - left_sq
        right_sum = csum[-1] - left_sum
        sse_left = left_sq - (left_sum ** 2).sum(axis=1) / n_left
        sse_right = right_sq - (right_sum ** 2).sum(axis=1) / n_right
        reduction = total_sse - (sse_left + sse_right)
        k = int(np.argmax(reduction))
        red = float(reduction[k])
        if red <= 1e-12:
            continue
        # Integer-friendly threshold: midpoint floored, satisfied as "<= t".
        threshold = float(np.floor((vs[idx[k]] + vs[idx[k] + 1]) / 2.0))
        if threshold < vs[idx[k]]:
            threshold = float(vs[idx[k]])
        if best is None or red > best[0]:
            best = (red, f, threshold)
    return best


@dataclass
class FuzzyNode:
    """Internal node: go left iff ``x[feature] <= threshold``."""

    feature: int
    threshold: float
    left: "FuzzyNode | int"
    right: "FuzzyNode | int"


@dataclass
class FuzzyTree:
    """A fitted clustering tree with per-leaf centroids.

    ``predict_index`` returns the fuzzy index; ``centroids[idx]`` is the
    cluster centre used to precompute Map results.
    """

    dim: int
    root: FuzzyNode | int = 0
    centroids: np.ndarray = field(default_factory=lambda: np.zeros((1, 1)))

    @property
    def n_leaves(self) -> int:
        return self.centroids.shape[0]

    @classmethod
    def fit(cls, x: np.ndarray, n_leaves: int,
            min_cluster: int = 1) -> "FuzzyTree":
        """Grow the tree greedily until ``n_leaves`` leaves (or no split helps)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ShapeError(f"FuzzyTree.fit expects (N, d) data, got shape {x.shape}")
        if len(x) == 0:
            raise ShapeError("cannot fit a FuzzyTree on empty data")
        if n_leaves < 1:
            raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")

        # Leaves are integer slots; grafting replaces a slot with a FuzzyNode.
        # Parent links let us re-point the tree when a leaf splits later.
        members: list[np.ndarray] = [np.arange(len(x))]
        splits: list[tuple[float, int, float] | None] = [_best_split(x)]
        root: FuzzyNode | int = 0
        parent_of: dict[int, tuple[FuzzyNode, str]] = {}  # leaf slot -> (node, side)

        while len(members) < n_leaves:
            candidates = [(s[0], i) for i, s in enumerate(splits)
                          if s is not None and len(members[i]) >= 2 * min_cluster]
            if not candidates:
                break
            _, leaf = max(candidates)
            _, feature, threshold = splits[leaf]
            rows = members[leaf]
            mask = x[rows, feature] <= threshold
            left_rows, right_rows = rows[mask], rows[~mask]
            if len(left_rows) == 0 or len(right_rows) == 0:
                splits[leaf] = None
                continue
            # Left child reuses the slot; right child gets a fresh slot.
            right_slot = len(members)
            members[leaf] = left_rows
            members.append(right_rows)
            splits[leaf] = _best_split(x[left_rows])
            splits.append(_best_split(x[right_rows]))
            node = FuzzyNode(feature=feature, threshold=threshold,
                             left=leaf, right=right_slot)
            if leaf in parent_of:
                parent, side = parent_of[leaf]
                setattr(parent, side, node)
            else:
                root = node
            parent_of[leaf] = (node, "left")
            parent_of[right_slot] = (node, "right")

        centroids = np.stack([x[m].mean(axis=0) for m in members])
        return cls(dim=x.shape[1], root=root, centroids=centroids)

    def predict_index(self, x: np.ndarray) -> np.ndarray:
        """Fuzzy indices for a batch ``(N, d)`` (or a single vector)."""
        x = np.asarray(x, dtype=np.float64)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        if x.shape[1] != self.dim:
            raise ShapeError(f"expected dim {self.dim}, got {x.shape[1]}")
        out = np.empty(len(x), dtype=np.int64)
        self._assign(self.root, np.arange(len(x)), x, out)
        return out[0] if single else out

    def _assign(self, node: FuzzyNode | int, rows: np.ndarray,
                x: np.ndarray, out: np.ndarray) -> None:
        if isinstance(node, int):
            out[rows] = node
            return
        mask = x[rows, node.feature] <= node.threshold
        self._assign(node.left, rows[mask], x, out)
        self._assign(node.right, rows[~mask], x, out)

    def lookup_centroid(self, x: np.ndarray) -> np.ndarray:
        """The centroid standing in for each input — the fuzzy approximation."""
        return self.centroids[self.predict_index(x)]

    def sse(self, x: np.ndarray) -> float:
        """Total within-cluster SSE of the tree on data ``x``."""
        approx = self.lookup_centroid(x)
        return float(((np.asarray(x, dtype=np.float64) - approx) ** 2).sum())

    def leaf_boxes(self, lo: float = 0.0, hi: float = 255.0) -> list[list[tuple[float, float]]]:
        """Per-leaf axis-aligned boxes [ (lo, hi) per dim ], inclusive bounds.

        Box of leaf i is the region of *integer* input space routed to fuzzy
        index i, needed to encode the tree as TCAM range rules: an integer
        key fails ``x <= t`` exactly when ``x >= floor(t) + 1``, so the right
        child's lower bound is ``floor(t) + 1`` (for the integer thresholds
        ``fit`` produces this equals ``t + 1``; for non-integer thresholds —
        trees fitted on float data — ``t + 1`` would leave the integers in
        ``(t, t + 1)`` covered by no box).
        """
        boxes: list[list[tuple[float, float]] | None] = [None] * self.n_leaves
        start = [(lo, hi)] * self.dim

        def walk(node, bounds):
            if isinstance(node, int):
                boxes[node] = list(bounds)
                return
            f, t = node.feature, node.threshold
            left_bounds = list(bounds)
            left_bounds[f] = (bounds[f][0], min(bounds[f][1], t))
            right_bounds = list(bounds)
            right_bounds[f] = (max(bounds[f][0], float(np.floor(t)) + 1),
                               bounds[f][1])
            walk(node.left, left_bounds)
            walk(node.right, right_bounds)

        walk(self.root, start)
        return boxes  # type: ignore[return-value]

    def tcam_entries(self, key_bits: int = 8, signed: bool = False) -> int:
        """TCAM entry count to implement this tree as range rules.

        Two encodings are possible on PISA and the compiler picks the
        cheaper (paper §6.1):

        - *flat*: each leaf box expands to the cross product of its
          per-dimension prefix covers — one lookup, but the product blows up
          for deep trees over wide vectors;
        - *level-wise*: the multi-level comparator runs one single-field
          range match per tree level (Consecutive Range Coding per node),
          costing one prefix cover per internal node.

        Signed keys use excess-K (offset) encoding, the usual trick for
        order-preserving ternary matching of two's-complement values.
        """
        return min(self._tcam_entries_flat(key_bits, signed),
                   self._tcam_entries_levelwise(key_bits, signed))

    def _tcam_entries_flat(self, key_bits: int, signed: bool) -> int:
        lo = -(1 << (key_bits - 1)) if signed else 0
        hi = lo + (1 << key_bits) - 1
        total = 0
        for box in self.leaf_boxes(lo=lo, hi=hi):
            product = 1
            for (b_lo, b_hi) in box:
                b_lo_i = int(np.clip(np.ceil(b_lo), lo, hi))
                b_hi_i = int(np.clip(np.floor(b_hi), lo, hi))
                if b_lo_i > b_hi_i:
                    product = 0
                    break
                product *= len(range_to_prefixes(b_lo_i - lo, b_hi_i - lo, key_bits))
            total += product
        return total

    def _tcam_entries_levelwise(self, key_bits: int, signed: bool) -> int:
        lo = -(1 << (key_bits - 1)) if signed else 0
        hi = lo + (1 << key_bits) - 1

        def walk(node) -> int:
            if isinstance(node, int):
                return 0
            t = int(np.clip(np.floor(node.threshold), lo, hi))
            # One CRC-coded "x <= t" rule set plus a catch-all per node.
            return (len(range_to_prefixes(0, t - lo, key_bits)) + 1
                    + walk(node.left) + walk(node.right))

        return walk(self.root)

    def depth(self) -> int:
        def walk(node):
            if isinstance(node, int):
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self.root)
