"""The built-in scenario families.

Six registered workload shapes, each targeting a different stress axis of
the serving stack (the differential harness replays every family through
the whole engine matrix):

==================  =========================================================
``diurnal``         day/night load ramp over the benign classes — exercises
                    batch-scheduler span cutting at slowly varying rates
``microburst``      calm baseline punctured by short line-rate bursts —
                    exercises flush-on-full vs timeout boundaries
``attack_flood``    SSDP-flood + Cridex beacons ramping over a benign
                    baseline, then receding — exercises label mixtures and
                    the anomaly path's traffic shapes
``heavy_hitters``   Zipf-skewed flowlet reuse of a tiny key pool with
                    near-constant elephants — exercises the flow-decision
                    cache (repeating windows) and per-flow state reuse
``flow_churn``      storms of short-lived mice (below the decision window)
                    over a steady baseline — exercises slot-table FIFO
                    eviction and window-incomplete state
``concept_drift``   class parameters interpolating toward a different class
                    mid-trace — exercises accuracy tracking per phase
==================  =========================================================

Every factory takes ``flows`` (base flow count per phase band, scaled
further by ``Scenario.generate(flows_scale=...)``) and ``dataset`` (which
benign profile set to compose).
"""

from __future__ import annotations

from dataclasses import replace

from repro.net.scenarios.base import (PhaseDef, Scenario, TrafficBand,
                                      lerp_profile, register_scenario)
from repro.net.synth.profiles import attack_profile, dataset_profiles


def _benign(dataset: str):
    return dataset_profiles(dataset)


def _elephant(profile, name_suffix="-elephant"):
    """A constant-rate heavy-hitter variant of a benign profile.

    Fixed packet length and a constant IPD make the flow's feature window
    repeat packet after packet — the case the decision cache
    short-circuits (length buckets are ~6 bytes wide, so even small length
    jitter would break the repetition).
    """
    return replace(profile,
                   name=profile.name + name_suffix,
                   len_modes=[(640.0, 0.0, 1.0)],
                   ipd_mu=-7.0, ipd_sigma=0.0,
                   len_period=0.0, len_amp=0.0, corr=0.0,
                   extra_len_jitter=0.0,
                   min_packets=24, max_packets=48)


def _mouse(profile, name_suffix="-mouse"):
    """A short-lived variant (below the decision window) of a profile."""
    return replace(profile, name=profile.name + name_suffix,
                   min_packets=2, max_packets=5)


def _keepalive(profile, name_suffix="-keepalive"):
    """A near-constant-rate service flow (heartbeats, telemetry, NTP).

    Like :func:`_elephant` but with a whisker of jitter on length and IPD:
    consecutive windows repeat only *approximately* (feature buckets move
    by at most one or two), so the exact-window L1 usually misses while
    the quantized L2's verified near-repeat path sees real traffic. This
    is the steady service component every long-running mix carries.
    """
    return replace(profile,
                   name=profile.name + name_suffix,
                   len_modes=[(640.0, 4.0, 1.0)],
                   ipd_mu=-5.0, ipd_sigma=0.05,
                   len_period=0.0, len_amp=0.0, corr=0.0,
                   extra_len_jitter=0.0,
                   min_packets=24, max_packets=48)


@register_scenario("diurnal")
def diurnal(flows: int = 10, dataset: str = "peerrush") -> Scenario:
    profiles = _benign(dataset)

    def mix(scale, ramp="flat"):
        return tuple(TrafficBand(p, max(1, round(flows * scale)), ramp=ramp)
                     for p in profiles)

    # Benign iid windows genuinely never near-repeat (measured hit rate is
    # 0.0 in every phase), so every phase closes the L2 admission gate: the
    # exact L1 stays on, but misses stop paying the box-certificate insert.
    return Scenario(
        name="diurnal",
        description="night trough -> morning ramp -> daytime peak -> "
                    "evening decay over the benign classes",
        phases=(
            PhaseDef("night", 40.0, mix(0.4), l2_insert=False),
            PhaseDef("morning-ramp", 30.0, mix(1.0, ramp="up"),
                     l2_insert=False),
            PhaseDef("peak", 30.0, mix(2.0), l2_insert=False),
            PhaseDef("evening-decay", 40.0, mix(1.0, ramp="down"),
                     l2_insert=False),
        ),
    )


@register_scenario("microburst")
def microburst(flows: int = 8, dataset: str = "peerrush") -> Scenario:
    profiles = _benign(dataset)
    calm = tuple(TrafficBand(p, flows) for p in profiles)
    burst = tuple(TrafficBand(p, 6 * flows, ramp="up") for p in profiles[:2])
    # Like diurnal, all-benign iid traffic: cold at both cache levels by
    # construction, so no phase admits L2 inserts.
    return Scenario(
        name="microburst",
        description="calm baseline punctured by two short high-rate bursts",
        phases=(
            PhaseDef("calm-1", 40.0, calm, l2_insert=False),
            PhaseDef("burst-1", 2.0, burst, l2_insert=False),
            PhaseDef("calm-2", 40.0, calm, l2_insert=False),
            PhaseDef("burst-2", 2.0, burst, l2_insert=False),
            PhaseDef("calm-3", 40.0, calm, l2_insert=False),
        ),
    )


@register_scenario("attack_flood")
def attack_flood(flows: int = 8, dataset: str = "peerrush") -> Scenario:
    profiles = _benign(dataset)
    baseline = tuple(TrafficBand(p, flows) for p in profiles)
    flood = attack_profile("Flood")
    cridex = attack_profile("Cridex")
    return Scenario(
        name="attack_flood",
        description="SSDP reflection flood + Cridex beacons ramp over a "
                    "benign baseline, then recede",
        phases=(
            PhaseDef("baseline", 40.0, baseline),
            PhaseDef("onset", 20.0, baseline + (
                TrafficBand(flood, 2 * flows, ramp="up"),
                TrafficBand(cridex, flows, ramp="up"),
            )),
            PhaseDef("flood", 20.0, baseline + (
                TrafficBand(flood, 6 * flows),
                TrafficBand(cridex, 2 * flows),
            )),
            PhaseDef("recovery", 40.0, baseline),
        ),
    )


@register_scenario("heavy_hitters")
def heavy_hitters(flows: int = 10, dataset: str = "peerrush") -> Scenario:
    profiles = _benign(dataset)
    background = tuple(TrafficBand(p, flows) for p in profiles)
    hitters = TrafficBand(_elephant(profiles[0]), 4 * flows,
                          key_pool=max(2, flows // 2), zipf_a=1.5)
    return Scenario(
        name="heavy_hitters",
        description="Zipf-skewed flowlet reuse of a tiny key pool: a few "
                    "elephant keys carry most packets with repeating windows",
        phases=(
            PhaseDef("warmup", 30.0, background),
            PhaseDef("skewed", 60.0, background + (hitters,)),
            PhaseDef("cooldown", 30.0, background),
        ),
    )


@register_scenario("flow_churn")
def flow_churn(flows: int = 8, dataset: str = "peerrush") -> Scenario:
    profiles = _benign(dataset)
    service = TrafficBand(_keepalive(profiles[0]), max(2, flows // 2))
    baseline = tuple(TrafficBand(p, flows) for p in profiles) + (service,)
    mice = tuple(TrafficBand(_mouse(p), 8 * flows) for p in profiles)
    return Scenario(
        name="flow_churn",
        description="storms of short-lived mice (below the decision window) "
                    "churning the flow-slot table over a steady baseline "
                    "with a near-constant keepalive service",
        phases=(
            PhaseDef("steady-1", 30.0, baseline),
            PhaseDef("mice-storm-1", 10.0, mice),
            PhaseDef("steady-2", 30.0, baseline),
            PhaseDef("mice-storm-2", 10.0, mice),
        ),
    )


@register_scenario("concept_drift")
def concept_drift(flows: int = 12, dataset: str = "peerrush") -> Scenario:
    profiles = _benign(dataset)
    a, b = profiles[0], profiles[1]
    beacon = TrafficBand(_keepalive(profiles[-1], "-beacon"),
                         max(2, flows // 3))
    rest = tuple(TrafficBand(p, flows) for p in profiles[1:]) + (beacon,)
    return Scenario(
        name="concept_drift",
        description=f"{a.name} traffic drifts toward {b.name}'s statistics "
                    "mid-trace while keeping its ground-truth label; a "
                    "near-constant beacon service rides along unchanged",
        phases=(
            PhaseDef("stable-a", 40.0, (TrafficBand(a, flows),) + rest),
            PhaseDef("drift", 60.0,
                     (TrafficBand(a, 2 * flows, drift_to=b),) + rest),
            PhaseDef("stable-b", 40.0,
                     (TrafficBand(lerp_profile(a, b, 1.0), flows),) + rest),
        ),
    )
