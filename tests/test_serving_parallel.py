"""Serial/parallel serving equivalence and the columnar IPC surfaces.

The contract: :class:`ParallelDispatcher` decisions are bit-identical to
:class:`ShardedDispatcher` with the same shard count — and, when register
capacity does not bind, to unsharded per-packet replay — for any worker
count, with or without the flow-decision cache, including under
register-eviction churn.
"""

import numpy as np
import pytest

from repro.dataplane.runtime import (TwoStageRuntime,
                                     WindowedClassifierRuntime, flows_to_trace)
from repro.net.traces import Trace, canonicalize_key_columns, keys_from_columns
from repro.serving import (BatchScheduler, FlowDecisionCache, shard_hash,
                           shard_hash_columns)
# The un-deprecated internals: these tests exercise the dispatchers
# themselves, not the deprecated package-level construction path.
from repro.serving.dispatcher import ShardedDispatcher
from repro.serving.parallel import (ParallelDispatcher, serve_shard,
                                    worker_main)

WORKER_COUNTS = (1, 2, 4)


def _factory(compiled16, cached, capacity=1_000_000):
    def build():
        cache = FlowDecisionCache(capacity=4096) if cached else None
        return WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=32,
            capacity=capacity, decision_cache=cache)
    return build


class TestColumnarViews:
    def test_to_from_columns_round_trip(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        rebuilt = Trace.from_columns(trace.to_columns())
        assert len(rebuilt) == len(trace)
        for orig, back in zip(trace.packets, rebuilt.packets):
            assert (back.ts, back.length, back.key) == \
                (orig.ts, orig.length, orig.key)

    def test_payload_column_round_trip(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        cols = trace.to_columns(payload_bytes=60)
        assert cols["payload"].shape == (len(trace), 60)
        rebuilt = Trace.from_columns(cols)
        np.testing.assert_array_equal(rebuilt.payload_matrix(60),
                                      trace.payload_matrix(60))

    def test_canonical_key_columns_match_scalar(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        assert keys_from_columns(trace.canonical_key_columns()) == \
            trace.canonical_keys()

    def test_canonicalize_swaps_consistently(self):
        cols = {"src_ip": np.array([9, 1, 5]), "dst_ip": np.array([2, 8, 5]),
                "src_port": np.array([7, 7, 9]), "dst_port": np.array([3, 3, 4]),
                "proto": np.array([6, 6, 17])}
        canon = canonicalize_key_columns(cols)
        assert canon["src_ip"].tolist() == [2, 1, 5]
        assert canon["src_port"].tolist() == [3, 7, 4]
        assert canon["proto"].tolist() == [6, 6, 17]

    def test_shard_hash_columns_bit_identical(self, replay_flows):
        trace = Trace.from_flows(replay_flows)
        vec = shard_hash_columns(trace.canonical_key_columns())
        assert [int(h) for h in vec] == \
            [shard_hash(k) for k in trace.canonical_keys()]


class TestProcessColumns:
    def test_windowed_columns_match_trace(self, compiled16, replay_flows):
        trace, keys, labels = flows_to_trace(replay_flows)
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=32).process_trace(trace, labels=labels, keys=keys)
        cols = trace.to_columns()
        got = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=32).process_columns(
                {"ts": cols["ts"], "length": cols["length"]}, keys,
                labels=labels)
        assert got == ref

    def test_two_stage_columns_match_trace(self, replay_flows):
        from repro.core.fuzzy import FuzzyTree
        rng = np.random.default_rng(2)
        tree = FuzzyTree.fit(rng.uniform(0, 255, size=(300, 60)), n_leaves=16)
        slot_values = [rng.integers(-50, 50, size=(16, 3)) for _ in range(8)]
        trace, keys, labels = flows_to_trace(replay_flows)
        ref = TwoStageRuntime(
            tree, slot_values, n_classes=3, idx_bits=4,
            batch_size=32).process_trace(trace, labels=labels, keys=keys)
        assert ref
        cols = trace.to_columns(payload_bytes=60)
        got = TwoStageRuntime(
            tree, slot_values, n_classes=3, idx_bits=4,
            batch_size=32).process_columns(
                {"ts": cols["ts"], "payload": cols["payload"]}, keys,
                labels=labels)
        assert got == ref

    def test_missing_columns_rejected(self, compiled16, replay_flows):
        trace, keys, _labels = flows_to_trace(replay_flows)
        runtime = WindowedClassifierRuntime(compiled16, feature_mode="stats")
        with pytest.raises(ValueError, match="missing replay columns"):
            runtime.process_columns({"ts": trace.packet_columns()["ts"]}, keys)
        with pytest.raises(ValueError, match="keys for"):
            runtime.process_columns(trace.to_columns(), keys[:-1])


class TestParallelEquivalence:
    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    @pytest.mark.parametrize("cached", [False, True])
    def test_bit_identical_to_serial_and_unsharded(self, compiled16,
                                                   replay_flows, n_workers,
                                                   cached):
        scalar_ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats").process_flows_scalar(replay_flows)
        assert scalar_ref
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, cached),
            n_shards=n_workers, scheduler=BatchScheduler(batch_size=32))
        serial_ref = serial.serve_flows(replay_flows)
        assert serial_ref == scalar_ref      # ample capacity: sharding exact
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, cached),
                n_workers=n_workers,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            got = dispatcher.serve_flows(replay_flows)
        assert got == serial_ref
        if cached:
            assert dispatcher.cache_stats.lookups == len(scalar_ref)
            assert dispatcher.cache_stats.lookups == \
                serial.cache_stats.lookups

    @pytest.mark.parametrize("n_workers", (2, 4))
    @pytest.mark.parametrize("cached", [False, True])
    def test_bit_identical_under_eviction_churn(self, compiled16,
                                                replay_flows, n_workers,
                                                cached):
        """Tiny per-replica register capacity: FIFO eviction churns, the
        parallel decisions still match the serial dispatcher exactly."""
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, cached, capacity=4),
            n_shards=n_workers, scheduler=BatchScheduler(batch_size=32))
        serial_ref = serial.serve_flows(replay_flows)
        assert sum(rt.state.evictions for rt in serial.runtimes) > 0
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, cached, capacity=4),
                n_workers=n_workers,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            assert dispatcher.serve_flows(replay_flows) == serial_ref

    @pytest.mark.parametrize("capacity", (4, 1_000_000))
    def test_cache_never_changes_parallel_decisions(self, compiled16,
                                                    replay_flows, capacity):
        def serve(cached):
            with ParallelDispatcher(
                    runtime_factory=_factory(compiled16, cached,
                                             capacity=capacity),
                    n_workers=2,
                    scheduler=BatchScheduler(batch_size=32)) as dispatcher:
                return dispatcher.serve_flows(replay_flows)
        assert serve(True) == serve(False)

    def test_replica_state_persists_across_serves(self, compiled16,
                                                  replay_flows):
        """Workers keep register state between serve calls, exactly like the
        serial dispatcher's long-lived replicas."""
        serial = ShardedDispatcher(
            runtime_factory=_factory(compiled16, False), n_shards=2,
            scheduler=BatchScheduler(batch_size=32))
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, False), n_workers=2,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            first = dispatcher.serve_flows(replay_flows)
            second = dispatcher.serve_flows(replay_flows)
        assert first == serial.serve_flows(replay_flows)
        assert second == serial.serve_flows(replay_flows)
        # Warm windows decide from the first packet: more decisions.
        assert len(second) > len(first)


class TestParallelDispatcherMechanics:
    def test_telemetry_populated(self, compiled16, replay_flows):
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, True), n_workers=3,
                scheduler=BatchScheduler(batch_size=32)) as dispatcher:
            decisions = dispatcher.serve_flows(replay_flows)
            assert decisions
            assert dispatcher.wall_seconds > 0
            assert len(dispatcher.shard_seconds) == 3
            assert dispatcher.flush_stats.total >= 3
            assert dispatcher.cache_stats.lookups == len(decisions)

    def test_serve_trace_without_labels(self, compiled16, replay_flows):
        with ParallelDispatcher(
                runtime_factory=_factory(compiled16, False),
                n_workers=2) as dispatcher:
            decisions = dispatcher.serve_trace(Trace.from_flows(replay_flows))
        assert decisions
        assert all(d.flow_label == -1 for d in decisions)
        seqs = [d.seq for d in decisions]
        assert seqs == sorted(seqs)

    def test_close_then_serve_restarts_cold(self, compiled16, replay_flows):
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        first = dispatcher.serve_flows(replay_flows)
        dispatcher.close()
        assert not dispatcher.started
        assert dispatcher.serve_flows(replay_flows) == first   # cold again
        dispatcher.close()
        dispatcher.close()                                     # idempotent

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ParallelDispatcher(runtime_factory=lambda: None, n_workers=0)

    def test_serve_shard_in_process(self, compiled16, replay_flows):
        """The worker-side shard replay, driven without a process."""
        trace, keys, labels = flows_to_trace(replay_flows)
        ref = WindowedClassifierRuntime(
            compiled16, feature_mode="stats",
            batch_size=32).process_trace(trace, labels=labels, keys=keys)
        cols = trace.to_columns()
        shard = {
            "cols": {"ts": cols["ts"], "length": cols["length"]},
            "keys": trace.canonical_key_columns(),
            "labels": labels,
        }
        runtime = WindowedClassifierRuntime(
            compiled16, feature_mode="stats", batch_size=32,
            decision_cache=FlowDecisionCache(1024))
        reply = serve_shard(runtime, shard, BatchScheduler(batch_size=32))
        assert reply["seq"].tolist() == [d.seq for d in ref]
        assert reply["predicted"].tolist() == [d.predicted for d in ref]
        assert reply["seconds"] > 0
        assert reply["flush_stats"].total > 0
        assert reply["cache_stats"].lookups == len(ref)

    def test_worker_main_in_process(self, compiled16, replay_flows):
        """The worker loop against a scripted in-process connection."""
        trace, keys, labels = flows_to_trace(replay_flows)
        cols = trace.to_columns()
        good = {
            "cols": {"ts": cols["ts"], "length": cols["length"]},
            "keys": trace.canonical_key_columns(),
            "labels": labels,
        }
        bad = {"cols": {"ts": cols["ts"]},    # missing the length column
               "keys": trace.canonical_key_columns(), "labels": labels}

        class FakeConn:
            def __init__(self, inbox):
                self.inbox = list(inbox)
                self.sent = []
                self.closed = False

            def recv(self):
                return self.inbox.pop(0)

            def send(self, msg):
                self.sent.append(msg)

            def close(self):
                self.closed = True

        conn = FakeConn([good, bad, None])
        worker_main(conn, _factory(compiled16, False), None)
        assert conn.closed
        (ok, reply), (err, detail) = conn.sent
        assert ok == "ok" and len(reply["seq"]) > 0
        assert err == "error" and "missing replay columns" in detail

    def test_worker_failure_surfaces_in_parent(self, compiled16, replay_flows):
        def broken_factory():
            raise RuntimeError("replica build exploded")
        dispatcher = ParallelDispatcher(runtime_factory=broken_factory,
                                        n_workers=2)
        try:
            with pytest.raises(RuntimeError, match="replica build exploded"):
                dispatcher.serve_flows(replay_flows)
        finally:
            dispatcher.close()


class TestCloseLifecycle:
    """close() must be callable unconditionally — the engine relies on it."""

    def test_double_close_without_start(self, compiled16):
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        dispatcher.close()
        dispatcher.close()
        assert not dispatcher.started

    def test_close_after_failed_start(self):
        def broken_factory():
            raise RuntimeError("replica build exploded")
        dispatcher = ParallelDispatcher(runtime_factory=broken_factory,
                                        n_workers=2)
        with pytest.raises(RuntimeError, match="replica build exploded"):
            dispatcher.start()
        # start() already tore the fleet down; close stays a safe no-op.
        assert not dispatcher.started
        dispatcher.close()
        dispatcher.close()

    def test_exit_during_in_flight_error(self, replay_flows):
        """__exit__'s close runs while a serve error is propagating.

        ``object()`` builds fine (so the warm ping — and therefore
        ``__enter__`` — succeeds; the match below excludes the warm-ping
        wording to prove it) but cannot replay a shard, so the failure
        happens inside the ``with`` body and close() runs from ``__exit__``
        with the RuntimeError in flight.
        """
        dispatcher = ParallelDispatcher(runtime_factory=lambda: object(),
                                        n_workers=2)
        with pytest.raises(RuntimeError, match=r"worker 0 failed:(?!.*build)"):
            with dispatcher:
                assert dispatcher.started             # __enter__ succeeded
                dispatcher.serve_flows(replay_flows)  # replica can't serve
        assert not dispatcher.started
        dispatcher.close()

    def test_close_with_dead_worker(self, compiled16, replay_flows):
        """A worker killed out from under us must not break close()."""
        dispatcher = ParallelDispatcher(
            runtime_factory=_factory(compiled16, False), n_workers=2)
        dispatcher.start()
        dispatcher._workers[0].terminate()
        dispatcher._workers[0].join()
        dispatcher.close()
        assert not dispatcher.started
        # And the dispatcher is still restartable with a cold fleet.
        assert dispatcher.serve_flows(replay_flows)
        dispatcher.close()
